"""Unit tests for the Graph value object."""

from __future__ import annotations

import pytest

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)


class TestConstruction:
    def test_nodes_and_edges_are_deduplicated(self):
        graph = Graph(nodes=[1, 2, 2], edges=[(1, 2), (2, 1), (1, 2)])
        assert graph.number_of_nodes == 2
        assert graph.number_of_edges == 1

    def test_nodes_only_in_edges_are_added(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        assert set(graph.nodes) == {1, 2, 3}

    def test_self_loops_are_rejected(self):
        with pytest.raises(ValueError):
            Graph(edges=[(1, 1)])

    def test_isolated_nodes_are_kept(self):
        graph = Graph(nodes=[1, 2, 3], edges=[(1, 2)])
        assert graph.degree(3) == 0
        assert 3 in graph

    def test_empty_graph(self):
        graph = Graph()
        assert graph.number_of_nodes == 0
        assert graph.max_degree() == 0
        assert graph.is_connected()


class TestQueries:
    def test_degree_and_neighbors(self):
        graph = star_graph(4)
        assert graph.degree(0) == 4
        assert graph.degree(1) == 1
        assert set(graph.neighbors(0)) == {1, 2, 3, 4}

    def test_neighbors_of_unknown_node_raises(self):
        with pytest.raises(KeyError):
            path_graph(3).neighbors(99)

    def test_max_degree(self):
        assert star_graph(5).max_degree() == 5
        assert cycle_graph(6).max_degree() == 2
        assert path_graph(1).max_degree() == 0

    def test_degrees_mapping(self):
        degrees = path_graph(3).degrees()
        assert degrees == {0: 1, 1: 2, 2: 1}

    def test_has_edge_is_symmetric(self):
        graph = path_graph(3)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)

    def test_distance(self):
        graph = cycle_graph(6)
        assert graph.distance(0, 0) == 0
        assert graph.distance(0, 3) == 3
        assert graph.distance(0, 5) == 1

    def test_distance_disconnected(self):
        graph = Graph(nodes=[1, 2], edges=[])
        assert graph.distance(1, 2) is None


class TestPredicates:
    def test_regularity(self):
        assert cycle_graph(5).is_regular()
        assert cycle_graph(5).is_regular(2)
        assert not cycle_graph(5).is_regular(3)
        assert not star_graph(3).is_regular()
        assert complete_graph(4).is_regular(3)

    def test_connectivity(self):
        assert path_graph(5).is_connected()
        two_components = Graph(edges=[(0, 1), (2, 3)])
        assert not two_components.is_connected()
        assert len(two_components.connected_components()) == 2

    def test_eulerian(self):
        assert cycle_graph(5).is_eulerian()
        assert not path_graph(3).is_eulerian()
        # Two disjoint cycles are not Eulerian (not connected).
        disjoint = Graph(edges=[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert not disjoint.is_eulerian()

    def test_eulerian_ignores_isolated_nodes(self):
        graph = Graph(nodes=[0, 1, 2, 99], edges=[(0, 1), (1, 2), (2, 0)])
        assert graph.is_eulerian()

    def test_bipartite(self):
        assert path_graph(4).is_bipartite()
        assert cycle_graph(4).is_bipartite()
        assert not cycle_graph(5).is_bipartite()
        left, right = grid_graph(2, 3).bipartition()
        assert len(left) + len(right) == 6

    def test_bipartition_is_proper(self):
        graph = hypercube_graph(3)
        left, right = graph.bipartition()
        for u, v in graph.edges:
            assert (u in left) != (v in left)


class TestDerivedGraphs:
    def test_subgraph(self):
        graph = complete_graph(4)
        sub = graph.subgraph([0, 1, 2])
        assert sub.number_of_nodes == 3
        assert sub.number_of_edges == 3

    def test_subgraph_unknown_node(self):
        with pytest.raises(KeyError):
            path_graph(3).subgraph([0, 7])

    def test_remove_edges(self):
        graph = cycle_graph(4).remove_edges([(0, 1)])
        assert graph.number_of_edges == 3
        assert not graph.has_edge(0, 1)

    def test_relabel(self):
        graph = path_graph(3).relabel({0: "a", 1: "b", 2: "c"})
        assert set(graph.nodes) == {"a", "b", "c"}
        assert graph.has_edge("a", "b")

    def test_relabel_must_be_injective(self):
        with pytest.raises(ValueError):
            path_graph(3).relabel({0: "x", 1: "x"})

    def test_disjoint_union(self):
        union = path_graph(2).disjoint_union(cycle_graph(3))
        assert union.number_of_nodes == 5
        assert union.number_of_edges == 4
        assert not union.is_connected()


class TestValueSemantics:
    def test_equality_ignores_construction_order(self):
        first = Graph(nodes=[1, 2, 3], edges=[(1, 2), (2, 3)])
        second = Graph(nodes=[3, 2, 1], edges=[(3, 2), (2, 1)])
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality(self):
        assert path_graph(3) != cycle_graph(3)

    def test_len_and_iter(self):
        graph = star_graph(3)
        assert len(graph) == 4
        assert set(iter(graph)) == set(graph.nodes)

    def test_networkx_round_trip(self):
        graph = grid_graph(2, 2)
        assert Graph.from_networkx(graph.to_networkx()) == graph

    def test_repr(self):
        assert "Graph" in repr(path_graph(2))
