"""Tests for the unified telemetry layer (``repro.obs``).

The load-bearing properties:

* **exact merge accounting** -- workers accumulating into their own process
  registries and returning snapshot deltas must, after the parent merges
  them, equal a serial run of the same work exactly (no double counting, no
  drops);
* **disabled means near-free** -- with the registry disabled every mutator
  is a single module-global boolean check, cheap enough that instrumented
  hot paths cost well under 5% of a small sweep's wall time;
* **trace/metrics/manifest agreement** -- the span trace a sharded campaign
  writes and the counters it accumulates must reproduce the campaign's own
  manifest and store accounting (scenario counts, records written);
* **live introspection** -- the service's ``status``/``metrics`` protocol
  verbs expose a self-consistent snapshot over TCP
  (``executed + store_hits + inflight_hits == submitted``).
"""

from __future__ import annotations

import io
import json
import logging
import multiprocessing
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.campaign import (
    CampaignService,
    CampaignServiceServer,
    CampaignSpec,
    GraphGrid,
    ResultStore,
    ServiceClient,
    run_campaign,
)
from repro.campaign.backends.base import record_digest
from repro.execution.engine import compile_instance
from repro.execution.sweep import SweepStats, run_sweep
from repro.graphs.generators import cycle_graph
from repro.graphs.ports import all_port_numberings
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with telemetry off and the registry empty."""
    obs.disable()
    obs.REGISTRY.clear()
    obs.stop_tracing()
    obs.clear_ring()
    yield
    obs.disable()
    obs.REGISTRY.clear()
    obs.stop_tracing()
    obs.clear_ring()


def exec_spec(name: str = "obs-survey", sizes: list[int] | None = None) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="execution",
        graphs=[GraphGrid.of("cycle", {"n": sizes or [4, 5, 6]})],
        port_strategies=["consistent"],
        model_classes=["SB", "MB"],
        engines=["sweep"],
        seeds=[0],
    )


# --------------------------------------------------------------------------- #
# Metrics registry basics
# --------------------------------------------------------------------------- #


class TestMetricsBasics:
    def test_disabled_mutations_are_noops(self):
        obs.counter("c").inc(5)
        obs.gauge("g").set(3)
        obs.histogram("h").observe(0.5)
        snap = obs.snapshot()
        assert snap["counters"]["c"] == 0
        assert snap["gauges"]["g"] == 0
        assert snap["histograms"]["h"]["count"] == 0

    def test_enabled_accumulation(self):
        obs.enable()
        obs.counter("c").inc()
        obs.counter("c").inc(2.5)
        obs.gauge("g").set(7)
        obs.gauge("g").add(-2)
        obs.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        obs.histogram("h").observe(50)
        snap = obs.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == 50.5
        # 0.5 lands in the <=1 cell, 50 overflows into the last cell.
        assert hist["counts"][0] == 1
        assert hist["counts"][-1] == 1

    def test_counter_accepts_negative_increments(self):
        # The service demotes a store hit to an in-flight hit after the fact;
        # the mirror decrement must be representable.
        obs.enable()
        obs.counter("c").inc(3)
        obs.counter("c").inc(-1)
        assert obs.snapshot()["counters"]["c"] == 2

    def test_kind_conflict_raises(self):
        obs.counter("same")
        with pytest.raises(ValueError, match="same"):
            obs.gauge("same")

    def test_thread_safety_exact_total(self):
        obs.enable()
        per_thread, threads = 2000, 8

        def work():
            for _ in range(per_thread):
                obs.counter("threaded").inc()
                obs.histogram("threaded.h", buckets=(1.0,)).observe(1)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        snap = obs.snapshot()
        assert snap["counters"]["threaded"] == per_thread * threads
        assert snap["histograms"]["threaded.h"]["count"] == per_thread * threads


# --------------------------------------------------------------------------- #
# Snapshot / delta / merge
# --------------------------------------------------------------------------- #


def _delta_work(values: list[int]) -> dict:
    """What a pool worker does: accumulate locally, return only the delta."""
    obs.set_enabled(True)
    before = obs.snapshot()
    for value in values:
        obs.counter("merge.items").inc()
        obs.histogram("merge.values", buckets=(2.0, 5.0, 10.0)).observe(value)
    return obs.snapshot_delta(before, obs.snapshot())


class TestSnapshotMerge:
    def test_delta_subtracts_preexisting_state(self):
        obs.enable()
        obs.counter("merge.items").inc(100)  # pre-existing noise
        delta = _delta_work([1, 3, 7])
        assert delta["counters"]["merge.items"] == 3
        assert delta["histograms"]["merge.values"]["count"] == 3

    def test_merge_applies_even_while_disabled(self):
        # The parent may keep its own registry disabled and still fold
        # worker deltas (the workers did the measuring).
        delta = _delta_work([1, 2])
        obs.reset()
        obs.disable()
        obs.merge_snapshot(delta)
        assert obs.snapshot()["counters"]["merge.items"] == 2

    def test_merged_shards_equal_serial_exactly(self):
        values = list(range(40))
        serial = _delta_work(values)
        # Simulate per-process worker registries: each shard measures from a
        # reset registry and only its *delta* travels back to the parent.
        deltas = []
        for shard in [values[i::4] for i in range(4)]:
            obs.reset()
            deltas.append(_delta_work(shard))
        obs.reset()
        obs.set_enabled(False)
        for delta in deltas:
            obs.merge_snapshot(delta)
        merged = obs.snapshot()
        assert merged["counters"] == serial["counters"]
        assert merged["histograms"]["merge.values"] == serial["histograms"]["merge.values"]

    def test_multiprocessing_merge_equals_serial(self):
        values = list(range(60))
        serial = _delta_work(values)
        obs.reset()
        obs.enable()
        shards = [values[i::3] for i in range(3)]
        with multiprocessing.Pool(
            3, initializer=obs.init_worker, initargs=(obs.worker_config(),)
        ) as pool:
            for delta in pool.map(_delta_work, shards):
                obs.merge_snapshot(delta)
        merged = obs.snapshot()
        assert merged["counters"]["merge.items"] == serial["counters"]["merge.items"]
        assert merged["histograms"]["merge.values"] == serial["histograms"]["merge.values"]


# --------------------------------------------------------------------------- #
# Span tracing
# --------------------------------------------------------------------------- #


class TestTracing:
    def test_spans_are_noops_when_inactive(self):
        with obs.span("quiet", x=1) as sp:
            sp.set(y=2)
        assert obs.ring_events() == []

    def test_nesting_and_attrs(self):
        obs.configure_tracing()
        with obs.span("outer", a=1):
            with obs.span("inner") as sp:
                sp.set(b=2)
        events = {event["name"]: event for event in obs.ring_events()}
        assert events["inner"]["parent"] == events["outer"]["span"]
        assert events["outer"]["parent"] is None
        assert events["inner"]["attrs"] == {"b": 2}
        assert events["inner"]["dur_s"] >= 0
        # Children close before parents, so the ring orders inner first.
        assert [event["name"] for event in obs.ring_events()] == ["inner", "outer"]

    def test_ring_is_bounded(self):
        obs.configure_tracing(ring=8)
        for index in range(20):
            with obs.span("tick", i=index):
                pass
        events = obs.ring_events()
        assert len(events) == 8
        assert events[-1]["attrs"] == {"i": 19}

    def test_file_sink_jsonl(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        obs.configure_tracing(path=str(path))
        with obs.span("a", n=1):
            pass
        with obs.span("b"):
            pass
        obs.stop_tracing()
        events = obs.load_trace(str(path))
        assert [event["name"] for event in events] == ["a", "b"]
        assert events[0]["attrs"] == {"n": 1}

    def test_load_trace_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "ok", "dur_s": 0.1}\nnot-json\n[1,2]\n')
        events = obs.load_trace(str(path))
        assert [event["name"] for event in events] == ["ok"]

    def test_aggregate_spans_sums_numeric_attrs(self):
        events = [
            {"name": "s", "dur_s": 0.25, "attrs": {"n": 2, "flag": True}},
            {"name": "s", "dur_s": 0.75, "attrs": {"n": 3, "flag": False, "skip": "x"}},
        ]
        agg = obs.aggregate_spans(events)
        assert agg["s"]["count"] == 2
        assert agg["s"]["total_s"] == 1.0
        assert agg["s"]["attrs"] == {"n": 5, "flag": 1}
        table = obs.format_span_table(agg)
        assert "n = 5" in table


# --------------------------------------------------------------------------- #
# Exporters and the report CLI
# --------------------------------------------------------------------------- #


class TestExport:
    def test_prometheus_text(self):
        obs.enable()
        obs.counter("store.corrupt_objects").inc(2)
        obs.gauge("engines.numpy_available").set(1)
        obs.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        obs.histogram("lat").observe(5.0)
        text = obs.prometheus_text(obs.snapshot())
        lines = text.splitlines()
        assert "# TYPE store_corrupt_objects counter" in lines
        assert "store_corrupt_objects 2" in lines
        assert "engines_numpy_available 1" in lines
        # Cumulative buckets: the +Inf bucket equals the observation count.
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 1' in lines
        assert 'lat_bucket{le="+Inf"} 2' in lines
        assert "lat_count 2" in lines
        assert "lat_sum 5.05" in lines

    def test_report_cli_renders_span_table(self, tmp_path):
        obs.configure_tracing(path=str(tmp_path / "t.jsonl"))
        with obs.span("engine.sweep.run", instances=6):
            pass
        obs.stop_tracing()
        env = dict(os.environ)
        repo = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(repo / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "report", str(tmp_path / "t.jsonl")],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "engine.sweep.run" in proc.stdout
        assert "instances = 6" in proc.stdout
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.obs",
                "report",
                str(tmp_path / "t.jsonl"),
                "--json",
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["events"] == 1
        assert payload["spans"]["engine.sweep.run"]["count"] == 1


# --------------------------------------------------------------------------- #
# Engine instrumentation
# --------------------------------------------------------------------------- #


class TestSweepInstrumentation:
    def test_counters_match_sweep_stats(self):
        graph = cycle_graph(4)
        instances = [
            compile_instance((graph, numbering))
            for numbering in list(all_port_numberings(graph))[:24]
        ]
        from repro.algorithms.parity import SomeOddNeighbourAlgorithm

        stats = SweepStats()
        run_sweep(SomeOddNeighbourAlgorithm(), instances, require_halt=False, stats=stats)

        obs.enable()
        run_sweep(SomeOddNeighbourAlgorithm(), instances, require_halt=False)
        counters = obs.snapshot()["counters"]
        assert counters["sweep.instances"] == stats.instances == len(instances)
        assert counters["sweep.evaluations"] == stats.evaluations
        assert (
            counters["sweep.occurrences"] + counters["sweep.replicated_occurrences"]
            == stats.naive_occurrences
        )

    def test_disabled_overhead_guard(self):
        """The no-op telemetry path must be negligible on a small sweep.

        With the registry disabled the sweep engine touches telemetry O(1)
        times per ``run_sweep`` call (an ``enabled()`` guard, a tracing
        check, one no-op span) -- never per instance or per round.  Budget
        a generous 50 touchpoints per run at the measured per-call no-op
        cost and require that to stay under 5% of the sweep's own wall
        time, so the assertion only fires if the disabled path stops being
        a cheap boolean check or the hot loops grow per-item telemetry.
        """
        graph = cycle_graph(6)
        instances = [
            compile_instance((graph, numbering))
            for numbering in list(all_port_numberings(graph))[:64]
        ]
        from repro.algorithms.parity import SomeOddNeighbourAlgorithm

        algorithm = SomeOddNeighbourAlgorithm()
        run_sweep(algorithm, instances, require_halt=False)  # warm-up
        sweep_wall = min(
            _timed(lambda: run_sweep(algorithm, instances, require_halt=False))
            for _ in range(3)
        )

        assert not obs.enabled()
        calls = 100_000
        noop_counter = obs.counter("overhead.guard")
        started = time.perf_counter()
        for _ in range(calls):
            noop_counter.inc()
        per_call = (time.perf_counter() - started) / calls

        budget = 50 * per_call
        assert budget < 0.05 * sweep_wall, (
            f"disabled telemetry path too slow: {per_call * 1e9:.0f}ns/call, "
            f"budget {budget * 1e6:.1f}us vs sweep {sweep_wall * 1e6:.1f}us"
        )


def _timed(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started


# --------------------------------------------------------------------------- #
# Campaign acceptance: trace + metrics vs manifest and store accounting
# --------------------------------------------------------------------------- #


class TestCampaignTelemetry:
    def test_sharded_run_trace_and_metrics_match_manifest(self, tmp_path):
        spec = exec_spec()
        store = ResultStore(tmp_path / "store")
        trace_file = tmp_path / "trace.jsonl"
        obs.enable()
        obs.configure_tracing(path=str(trace_file))
        summary = run_campaign(spec, store, workers=2)
        obs.stop_tracing()

        manifest = store.read_manifest(spec.name)
        snap = obs.snapshot()
        agg = obs.aggregate_spans(obs.load_trace(str(trace_file)))

        total = len(manifest["scenarios"])
        # Counters vs manifest: every scenario executed exactly once.
        assert snap["counters"]["campaign.scenarios.execution"] == total
        assert snap["counters"]["store.json.records_written"] == total
        assert store.count_records() == total
        # Trace vs manifest: the run span and the shard spans account for
        # every scenario; store spans account for every record written.
        assert agg["campaign.run"]["attrs"]["total"] == total
        assert agg["campaign.run"]["attrs"]["executed"] == summary.executed == total
        assert agg["campaign.shard.evaluate"]["attrs"]["scenarios"] == total
        assert agg["store.put_many"]["attrs"]["written"] == total
        # Trace vs counters: the sweep spans carry the same dedup accounting
        # the counters accumulated (naive occurrences and evaluations), so
        # the dedup ratio derived from either source is identical.
        # Zero-valued counters are dropped from worker deltas, so absent
        # means zero: consistent single-numbering scenarios replicate
        # nothing, and sweep tables warmed earlier in the process (workers
        # inherit them via fork) can drive evaluations to zero.
        counters = snap["counters"]
        naive = counters.get("sweep.occurrences", 0) + counters.get(
            "sweep.replicated_occurrences", 0
        )
        assert naive > 0
        assert agg["engine.sweep.run"]["attrs"]["naive_occurrences"] == naive
        assert agg["engine.sweep.run"]["attrs"]["evaluations"] == (
            counters.get("sweep.evaluations", 0)
        )
        assert snap["histograms"]["campaign.record.elapsed_s"]["count"] == total

    def test_serial_and_sharded_partition_invariant_counters_agree(self, tmp_path):
        spec = exec_spec()
        obs.enable()
        run_campaign(spec, ResultStore(tmp_path / "serial"))
        serial = obs.snapshot()
        obs.reset()
        run_campaign(spec, ResultStore(tmp_path / "sharded"), workers=3)
        sharded = obs.snapshot()
        for name in (
            "campaign.scenarios.execution",
            "store.json.records_written",
            "sweep.instances",
        ):
            assert serial["counters"][name] == sharded["counters"][name], name

    def test_records_carry_elapsed_apportioned_flag(self, tmp_path):
        spec = exec_spec()
        store = ResultStore(tmp_path / "store")
        run_campaign(spec, store)
        records = list(store.iter_records())
        assert records
        assert all("elapsed_apportioned" in record for record in records)
        assert all(record["elapsed_s"] >= 0 for record in records)

    def test_elapsed_apportioned_is_volatile_for_digests(self, tmp_path):
        spec = exec_spec()
        store = ResultStore(tmp_path / "store")
        run_campaign(spec, store)
        record = next(store.iter_records())
        flipped = dict(record, elapsed_apportioned=not record["elapsed_apportioned"])
        assert record_digest(flipped) == record_digest(record)


# --------------------------------------------------------------------------- #
# Service introspection over TCP
# --------------------------------------------------------------------------- #


class TestServiceTelemetry:
    def test_status_and_metrics_verbs_expose_consistent_snapshot(self, tmp_path):
        obs.enable()
        service = CampaignService(str(tmp_path / "store"))
        server = CampaignServiceServer(service, port=0)
        host, port = server.address
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with ServiceClient(host, port) as client:
                first = client.submit(exec_spec("first"))
                client.wait(first)
                # Overlapping second submission: answered from the store.
                second = client.submit(exec_spec("second"))
                client.wait(second)

                status = client.status()
                assert "metrics" in status
                counters = status["metrics"]["counters"]
                assert counters["service.scenarios.executed"] + counters[
                    "service.scenarios.store_hits"
                ] + counters["service.scenarios.inflight_hits"] == (
                    counters["service.scenarios.submitted"]
                )
                assert counters["service.scenarios.store_hits"] > 0
                assert counters["service.jobs.done"] == 2

                payload = client.metrics()
                assert payload["metrics"]["counters"] == counters
                assert "service_scenarios_submitted" in payload["prometheus"]
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(wait=False)


# --------------------------------------------------------------------------- #
# Logging with span correlation
# --------------------------------------------------------------------------- #


class TestLogging:
    def test_span_id_injected_into_json_logs(self):
        stream = io.StringIO()
        obs.configure_logging("info", json=True, stream=stream)
        logger = obs.get_logger("repro.test")
        obs.configure_tracing()
        logger.info("outside")
        with obs.span("work"):
            logger.info("inside")
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines[0]["span"] == "-"
        assert lines[1]["span"] != "-"
        assert lines[1]["msg"] == "inside"
        assert lines[1]["level"] == "info"

    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        obs.configure_logging("info", stream=stream)
        obs.configure_logging("info", stream=stream)
        logging.getLogger("repro.test").info("once")
        assert stream.getvalue().count("once") == 1
