"""Tests for Theorems 8 and 9: the history-based simulations."""

from __future__ import annotations

import pytest

from repro.algorithms.basic import BroadcastMinimumDegreeAlgorithm, PortEchoAlgorithm
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.core.simulations import (
    MultisetBroadcastSimulationOfBroadcast,
    MultisetSimulationOfVector,
    simulate_broadcast_with_multiset_broadcast,
    simulate_vector_with_multiset,
)
from repro.execution.runner import run
from repro.execution.trace import message_size
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.ports import all_port_numberings, random_port_numbering
from repro.machines.algorithm import BroadcastAlgorithm, Output, VectorAlgorithm
from repro.machines.models import ReceiveMode, SendMode
from repro.problems.separating import LeafElectionInStars
from repro.problems.verification import solves


class TwoRoundVectorAlgorithm(VectorAlgorithm):
    """Outputs the vector of (neighbour degree, port used by the neighbour) pairs.

    Needs two rounds and genuinely uses the vector structure of the input, so
    it exercises the history reconstruction beyond a single round.
    """

    def initial_state(self, degree):
        return ("r1", degree)

    def send(self, state, port):
        if state[0] == "r1":
            return ("deg", state[1], port)
        return ("done", state[1])

    def transition(self, state, received):
        if state[0] == "r1":
            return ("r2", tuple(received))
        return Output(state[1])


class TestTheorem8Construction:
    def test_rejects_non_vector_algorithms(self):
        from repro.algorithms.basic import GatherDegreesAlgorithm

        with pytest.raises(ValueError):
            simulate_vector_with_multiset(GatherDegreesAlgorithm())

    def test_rejects_broadcast_send(self):
        with pytest.raises(ValueError):
            simulate_vector_with_multiset(BroadcastMinimumDegreeAlgorithm())

    def test_model_is_multiset(self):
        simulation = simulate_vector_with_multiset(PortEchoAlgorithm())
        assert simulation.model.receive is ReceiveMode.MULTISET
        assert simulation.model.send is SendMode.PORT
        assert simulation.inner.name == "PortEchoAlgorithm"


class TestTheorem8Correctness:
    @pytest.mark.parametrize("graph", [star_graph(3), path_graph(3), cycle_graph(4)],
                             ids=["star3", "path3", "cycle4"])
    def test_output_matches_some_compatible_port_numbering(self, graph, rng):
        """The simulated run equals the original under some numbering in P_0."""
        inner = PortEchoAlgorithm()
        simulation = simulate_vector_with_multiset(inner)
        numbering = random_port_numbering(graph, rng)
        simulated = run(simulation, graph, numbering).outputs
        compatible = [
            candidate
            for candidate in all_port_numberings(graph)
            if candidate.outgoing_assignment() == numbering.outgoing_assignment()
        ]
        assert any(run(inner, graph, candidate).outputs == simulated for candidate in compatible)

    def test_two_round_vector_algorithm(self, rng):
        graph = path_graph(4)
        inner = TwoRoundVectorAlgorithm()
        simulation = simulate_vector_with_multiset(inner)
        numbering = random_port_numbering(graph, rng)
        simulated = run(simulation, graph, numbering).outputs
        reference = run(inner, graph, numbering).outputs
        # Theorem 8 guarantees the simulated run equals the original under a
        # port numbering with the same *output* ports but possibly different
        # input ports, so the output vectors may be permuted per node.
        for node in graph.nodes:
            assert sorted(simulated[node]) == sorted(reference[node])

    def test_problem_solving_is_preserved(self):
        """If the Vector algorithm solves a problem, so does its simulation."""
        problem = LeafElectionInStars()
        inner = LeafElectionAlgorithm()  # a Set algorithm is a fortiori a Vector algorithm
        # Wrap it as a Vector algorithm by composing through the class hierarchy:
        # LeafElection only uses the set of messages, so it can be run as-is;
        # here we simulate the Multiset view of it.
        class VectorLeafElection(VectorAlgorithm):
            def initial_state(self, degree):
                return inner.initial_state(degree)

            def send(self, state, port):
                return inner.send(state, port)

            def transition(self, state, received):
                return inner.transition(state, frozenset(received))

        simulation = simulate_vector_with_multiset(VectorLeafElection())
        assert solves(simulation, problem, [star_graph(2), star_graph(3), path_graph(3)])

    def test_round_overhead_at_most_one(self, rng):
        graph = cycle_graph(5)
        inner = TwoRoundVectorAlgorithm()
        simulation = simulate_vector_with_multiset(inner)
        numbering = random_port_numbering(graph, rng)
        assert run(simulation, graph, numbering).rounds <= run(inner, graph, numbering).rounds + 1

    def test_message_growth_is_monotone_in_time(self):
        class Counter(VectorAlgorithm):
            def __init__(self, rounds):
                self._rounds = rounds

            def initial_state(self, degree):
                return 0

            def send(self, state, port):
                return state

            def transition(self, state, received):
                nxt = state + 1
                return Output(nxt) if nxt >= self._rounds else nxt

        sizes = []
        for rounds in (1, 3, 6):
            simulation = simulate_vector_with_multiset(Counter(rounds))
            trace = run(simulation, cycle_graph(4), record_trace=True).trace
            sizes.append(trace.max_message_size())
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]


class TestTheorem9:
    def test_rejects_non_broadcast_algorithms(self):
        with pytest.raises(ValueError):
            simulate_broadcast_with_multiset_broadcast(PortEchoAlgorithm())

    def test_model_is_multiset_broadcast(self):
        simulation = simulate_broadcast_with_multiset_broadcast(BroadcastMinimumDegreeAlgorithm())
        assert simulation.model.receive is ReceiveMode.MULTISET
        assert simulation.model.send is SendMode.BROADCAST

    @pytest.mark.parametrize("graph", [star_graph(3), path_graph(4), cycle_graph(5)],
                             ids=["star3", "path4", "cycle5"])
    def test_numbering_invariant_inner_is_reproduced(self, graph, rng):
        inner = BroadcastMinimumDegreeAlgorithm()
        simulation = simulate_broadcast_with_multiset_broadcast(inner)
        numbering = random_port_numbering(graph, rng)
        assert run(simulation, graph, numbering).outputs == run(inner, graph, numbering).outputs

    def test_two_round_broadcast_inner(self, rng):
        class TwoRoundBroadcast(BroadcastAlgorithm):
            """Output the sorted degrees seen within distance two."""

            def initial_state(self, degree):
                return ("r1", (degree,))

            def broadcast(self, state):
                return state[1]

            def transition(self, state, received):
                gathered = tuple(sorted(set(state[1] + tuple(x for item in received for x in item))))
                if state[0] == "r1":
                    return ("r2", gathered)
                return Output(gathered)

        inner = TwoRoundBroadcast()
        simulation = simulate_broadcast_with_multiset_broadcast(inner)
        for graph in (path_graph(4), star_graph(3)):
            numbering = random_port_numbering(graph, rng)
            assert (
                run(simulation, graph, numbering).outputs == run(inner, graph, numbering).outputs
            )
