"""Round-trip property tests for the Theorem 2 correspondence pipeline.

For machines of all seven classes -- the deterministic library machines and
seed-fuzzed random ones -- the pipeline must close the loop: machine ->
hash-consed Table 4/5 formula -> compiled formula-algorithm, with machine
outputs, formula extension and recompiled-algorithm outputs agreeing on
every adversarial port numbering, and the seed formula-algorithm agreeing as
a differential oracle.  Plus the fail-fast contract of the construction's
node budget (:class:`FormulaSizeError`).
"""

from __future__ import annotations

import itertools

import pytest

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.logic.syntax import dag_size, formula_pool, modal_depth, tree_size
from repro.machines.library import class_view, random_machine, reference_machine
from repro.machines.models import ProblemClass, ReceiveMode, SendMode
from repro.machines.state_machine import FiniteStateMachine
from repro.modal.algorithm_to_formula import (
    FormulaSizeError,
    formula_for_machine,
    predict_formula_nodes,
)
from repro.modal.correspondence import machine_roundtrip_report

ALL_CLASSES = list(ProblemClass)

#: Max degree 3: a star plus a path, swept exhaustively per numbering.
DELTA3_GRAPHS = (star_graph(3), path_graph(4))
#: Max degree 2: cheap enough for the randomized and two-round sweeps.
DELTA2_GRAPHS = (path_graph(3), cycle_graph(4))


@pytest.mark.parametrize("problem_class", ALL_CLASSES, ids=str)
def test_reference_machine_roundtrip(problem_class):
    report = machine_roundtrip_report(
        reference_machine(problem_class, delta=3),
        problem_class,
        running_time=1,
        graphs=DELTA3_GRAPHS,
    )
    assert report.agree, report.first_disagreement
    assert report.oracle_checked
    assert report.instances > 0
    assert report.modal_depth == 1
    assert report.dag_size <= report.tree_size


@pytest.mark.parametrize("problem_class", ALL_CLASSES, ids=str)
@pytest.mark.parametrize("seed", range(3))
def test_random_machine_roundtrip(problem_class, seed):
    report = machine_roundtrip_report(
        random_machine(problem_class, delta=2, seed=seed),
        problem_class,
        running_time=1,
        graphs=DELTA2_GRAPHS,
    )
    assert report.agree, report.first_disagreement
    assert report.oracle_checked


def test_roundtrip_honours_accepting_output():
    """The machine-output comparison binarizes against ``accepting_output``:
    the formula for output 0 must agree with the output-0 indicator."""
    machine = reference_machine(ProblemClass.MB, delta=3)
    report = machine_roundtrip_report(
        machine,
        ProblemClass.MB,
        running_time=1,
        graphs=DELTA3_GRAPHS,
        accepting_output=0,
    )
    assert report.agree, report.first_disagreement


def test_roundtrip_without_instances_is_rejected():
    """No graphs and no pairs must raise, not report vacuous agreement."""
    machine = reference_machine(ProblemClass.SB, delta=2)
    with pytest.raises(ValueError, match="graphs"):
        machine_roundtrip_report(machine, ProblemClass.SB, running_time=1)


@pytest.mark.parametrize("problem_class", ALL_CLASSES, ids=str)
def test_two_round_machine_roundtrip(problem_class):
    report = machine_roundtrip_report(
        reference_machine(problem_class, delta=2, rounds=2),
        problem_class,
        running_time=2,
        graphs=DELTA2_GRAPHS,
    )
    assert report.agree, report.first_disagreement
    assert report.modal_depth == 2


class TestMachineLibrary:
    @pytest.mark.parametrize("problem_class", ALL_CLASSES, ids=str)
    def test_transition_factors_through_the_class_view(self, problem_class):
        """Permuting the padded vector never changes a non-Vector transition."""
        machine = random_machine(problem_class, delta=3, seed=9)
        vectors = [("x", "y", machine.no_message), ("x", "x", "y")]
        for state in machine.intermediate_states:
            for vector in vectors:
                results = {
                    machine.transition_table(state, permuted)
                    for permuted in itertools.permutations(vector)
                }
                if problem_class.model.receive is ReceiveMode.VECTOR:
                    continue
                assert len(results) == 1

    def test_set_machines_ignore_multiplicities(self):
        machine = random_machine(ProblemClass.SB, delta=3, seed=9)
        for state in machine.intermediate_states:
            assert machine.transition_table(state, ("x", "x", "y")) == (
                machine.transition_table(state, ("x", "y", "y"))
            )

    @pytest.mark.parametrize("problem_class", ALL_CLASSES, ids=str)
    def test_broadcast_machines_ignore_the_port(self, problem_class):
        machine = random_machine(problem_class, delta=3, seed=4)
        if problem_class.model.send is not SendMode.BROADCAST:
            return
        for state in machine.intermediate_states:
            messages = {machine.message_table(state, port) for port in (1, 2, 3)}
            assert len(messages) == 1

    def test_machines_are_cross_process_deterministic(self):
        """Hash-derived tables never depend on the process hash seed."""
        first = random_machine(ProblemClass.MV, delta=2, seed=3)
        second = random_machine(ProblemClass.MV, delta=2, seed=3)
        assert first.initial_states == second.initial_states
        for state in first.intermediate_states:
            assert first.message_table(state, 1) == second.message_table(state, 1)
            assert first.transition_table(state, ("x", "y")) == (
                second.transition_table(state, ("x", "y"))
            )

    def test_class_view_collapses_exactly_the_invisible_structure(self):
        padded = ("x", "y", "x")
        assert class_view(ProblemClass.VV, padded) == padded
        assert class_view(ProblemClass.MV, padded) == ("x", "x", "y")
        assert class_view(ProblemClass.SV, padded) == ("x", "y")


class TestFormulaSizeBudget:
    def test_over_budget_raises_before_enumerating(self):
        machine = reference_machine(ProblemClass.VV, delta=3)
        with pytest.raises(FormulaSizeError) as err:
            formula_for_machine(machine, ProblemClass.VV, 1, max_formula_nodes=100)
        assert err.value.budget == 100
        assert err.value.predicted_nodes > 100
        assert err.value.specs > 0
        assert "max_formula_nodes" in str(err.value)

    def test_infeasible_coordinate_fails_fast(self):
        """A (Delta, |M|, T) blow-up raises cleanly instead of hanging."""
        machine = reference_machine(ProblemClass.VV, delta=6)
        with pytest.raises(FormulaSizeError) as err:
            formula_for_machine(machine, ProblemClass.VV, 3)
        assert err.value.predicted_nodes > err.value.budget

    def test_none_disables_the_budget(self):
        machine = reference_machine(ProblemClass.SB, delta=2)
        formula = formula_for_machine(
            machine, ProblemClass.SB, 1, max_formula_nodes=None
        )
        assert modal_depth(formula) == 1

    def test_prediction_bounds_actual_pool_growth(self):
        """The estimate is an upper bound: unique messages defeat interning."""
        machine = FiniteStateMachine(
            delta_bound=2,
            intermediate_states=frozenset({"u-state-a", "u-state-b"}),
            stopping_states=frozenset({0, 1}),
            messages=frozenset({"uniq-m1", "uniq-m2"}),
            initial_states={0: "u-state-a", 1: "u-state-b", 2: "u-state-a"},
            message_table=lambda state, port: "uniq-m1" if state == "u-state-a" else "uniq-m2",
            transition_table=lambda state, padded: 1 if "uniq-m1" in set(padded) else 0,
        )
        predicted, specs = predict_formula_nodes(machine, ProblemClass.SB, 1)
        pool = formula_pool()
        before = len(pool)
        formula_for_machine(machine, ProblemClass.SB, 1)
        grown = len(pool) - before
        assert grown <= predicted
        assert specs > 0

    def test_roundtrip_report_threads_the_budget(self):
        machine = reference_machine(ProblemClass.VV, delta=3)
        with pytest.raises(FormulaSizeError):
            machine_roundtrip_report(
                machine,
                ProblemClass.VV,
                1,
                graphs=DELTA3_GRAPHS,
                max_formula_nodes=100,
            )


class TestEmittedFormulas:
    @pytest.mark.parametrize("problem_class", ALL_CLASSES, ids=str)
    def test_modal_depth_equals_running_time(self, problem_class):
        machine = reference_machine(problem_class, delta=2)
        formula = formula_for_machine(machine, problem_class, 1)
        assert modal_depth(formula) == 1
        deep = reference_machine(problem_class, delta=2, rounds=2)
        assert modal_depth(formula_for_machine(deep, problem_class, 2)) == 2

    def test_sharing_beats_the_tree_blowup(self):
        """The two-round Vector formula: tree in the millions, DAG tiny."""
        machine = reference_machine(ProblemClass.VV, delta=3, rounds=2)
        formula = formula_for_machine(
            machine, ProblemClass.VV, 2, max_formula_nodes=2_000_000
        )
        assert tree_size(formula) > 10**6
        assert dag_size(formula) < 100_000
