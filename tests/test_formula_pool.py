"""Invariants of the hash-consed formula pool (logic/syntax.py).

The pool is the substrate of the whole correspondence pipeline: every
constructor interns into it, every compiled engine keys caches by its node
ids, and the Table 4/5 construction relies on ``dag_size``/``tree_size``
reporting the sharing exactly.  These tests pin the interning contract
(structural equality == object identity), the children-before-parents id
order, and the incremental size/depth bookkeeping.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.logic.parser import parse_formula
from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    Formula,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
    children,
    conjunction,
    dag_size,
    disjunction,
    formula_pool,
    modal_depth,
    subformulas,
    topological_ids,
    tree_size,
)


def random_formula(rng: random.Random, depth: int) -> Formula:
    """A random formula over a tiny proposition alphabet."""
    if depth == 0 or rng.random() < 0.25:
        return rng.choice([Prop("p"), Prop("q"), Top(), Bottom()])
    pick = rng.randrange(7)
    sub = random_formula(rng, depth - 1)
    if pick == 0:
        return Not(sub)
    if pick == 1:
        return And(sub, random_formula(rng, depth - 1))
    if pick == 2:
        return Or(sub, random_formula(rng, depth - 1))
    if pick == 3:
        return Implies(sub, random_formula(rng, depth - 1))
    if pick == 4:
        return Diamond(sub, index=rng.choice([None, ("*", "*"), (1, 2)]))
    if pick == 5:
        return Box(sub, index=rng.choice([None, ("*", "*")]))
    return GradedDiamond(sub, grade=rng.randrange(3), index=("*", "*"))


class TestInterning:
    def test_structurally_equal_formulas_are_identical(self):
        rng1, rng2 = random.Random(7), random.Random(7)
        for _ in range(50):
            first = random_formula(rng1, 4)
            second = random_formula(rng2, 4)
            assert first is second

    def test_reconstruction_does_not_grow_the_pool(self):
        formula = Implies(And(Prop("p"), Diamond(Prop("q"))), Box(Prop("p")))
        before = len(formula_pool())
        again = Implies(And(Prop("p"), Diamond(Prop("q"))), Box(Prop("p")))
        assert again is formula
        assert len(formula_pool()) == before

    def test_constants_are_singletons(self):
        assert Top() is Top()
        assert Bottom() is Bottom()

    def test_distinct_payloads_distinct_nodes(self):
        assert Diamond(Prop("p"), index=(1, 2)) is not Diamond(Prop("p"), index=(2, 1))
        assert GradedDiamond(Prop("p"), 1) is not GradedDiamond(Prop("p"), 2)
        assert Prop("p") is not Prop("q")

    def test_formulas_are_immutable(self):
        prop = Prop("p")
        with pytest.raises(AttributeError):
            prop.name = "q"
        with pytest.raises(AttributeError):
            del prop.name

    def test_pickle_round_trip_reinterns(self):
        formula = And(Diamond(Prop("p"), index=("*", "*")), Not(Prop("q")))
        clone = pickle.loads(pickle.dumps(formula))
        assert clone is formula


class TestPoolQueries:
    def test_dag_size_never_exceeds_tree_size(self):
        rng = random.Random(11)
        for _ in range(100):
            formula = random_formula(rng, 5)
            assert dag_size(formula) <= tree_size(formula)

    def test_shared_subterms_counted_once(self):
        shared = And(Prop("p"), Prop("q"))
        formula = Or(shared, Not(shared))
        # Tree: Or + (And p q) + Not + (And p q) = 8; DAG shares the And.
        assert tree_size(formula) == 8
        assert dag_size(formula) == 5

    def test_exponential_tree_linear_dag(self):
        formula: Formula = Prop("p")
        for _ in range(200):
            formula = And(formula, formula)
        assert dag_size(formula) == 201
        assert tree_size(formula) == 2 ** 201 - 1

    def test_tree_size_and_depth_match_recursive_recomputation(self):
        def recompute(formula: Formula) -> tuple[int, int]:
            kids = children(formula)
            size = 1 + sum(recompute(kid)[0] for kid in kids)
            depth = max((recompute(kid)[1] for kid in kids), default=0)
            if isinstance(formula, (Diamond, Box, GradedDiamond)):
                depth += 1
            return size, depth

        rng = random.Random(13)
        for _ in range(30):
            formula = random_formula(rng, 4)
            size, depth = recompute(formula)
            assert tree_size(formula) == size
            assert modal_depth(formula) == depth

    def test_topological_ids_children_first(self):
        rng = random.Random(17)
        pool = formula_pool()
        for _ in range(30):
            formula = random_formula(rng, 5)
            ids = topological_ids(formula)
            position = {node_id: index for index, node_id in enumerate(ids)}
            assert ids[-1] == formula.node_id
            for node_id in ids:
                for child in pool.children[node_id]:
                    assert position[child] < position[node_id]

    def test_subformulas_are_the_reachable_nodes(self):
        shared = Diamond(Prop("p"), index=("*", "*"))
        formula = And(shared, Or(shared, Top()))
        assert subformulas(formula) == frozenset(
            {formula, shared, Or(shared, Top()), Prop("p"), Top()}
        )
        assert len(subformulas(formula)) == dag_size(formula)

    def test_builders_share_via_the_pool(self):
        parts = [Prop(f"r{i}") for i in range(4)]
        assert conjunction(parts) is conjunction(iter(parts))
        assert disjunction(parts) is disjunction(iter(parts))
        assert conjunction([]) is Top()
        assert disjunction([]) is Bottom()


class TestParserPoolRoundTrip:
    CASES = [
        "deg1 & <>(deg2 | ~deg3)",
        "<2,1> deg3",
        "<*,*>>=2 odd",
        "[1,2](p -> q)",
        "true | (false & p)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_lands_in_the_pool(self, text):
        assert parse_formula(text) is parse_formula(text)

    @pytest.mark.parametrize("text", CASES)
    def test_str_reparses_to_the_same_node(self, text):
        formula = parse_formula(text)
        assert parse_formula(str(formula)) is formula

    def test_programmatic_and_parsed_share_nodes(self):
        built = And(Prop("deg1"), Diamond(Prop("deg2"), index=(2, 1)))
        parsed = parse_formula("deg1 & <2,1> deg2")
        assert parsed is built
