"""Differential tests: the superposed sweep engine vs compiled vs seed.

``run_sweep`` must be node-for-node identical to the compiled active-set
engine (:mod:`repro.execution.engine`) and the seed reference runner
(:mod:`repro.execution.legacy`) on every model class, every topology and
every port numbering.  The property tests sweep all seven classes over
hash-deterministic random machines from :mod:`repro.machines.library`,
random graphs, and exhaustive plus sampled numberings -- including
non-halting round-budget cases, mixed-graph batches, per-instance local
inputs and the instance-level delivery-signature deduplication.
"""

from __future__ import annotations

import random

import pytest

from repro.execution.engine import (
    ExecutionError,
    compile_instance,
    run_iter,
    run_many,
)
from repro.execution.legacy import run_reference
from repro.execution.sweep import SweepStats, run_sweep, sweep_tables_for
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.ports import (
    all_port_numberings,
    consistent_port_numbering,
    random_port_numbering,
)
from repro.machines.algorithm import (
    BroadcastAlgorithm,
    MultisetAlgorithm,
    MultisetBroadcastAlgorithm,
    Output,
    SetAlgorithm,
    SetBroadcastAlgorithm,
    VectorAlgorithm,
)
from repro.machines.fastpath import fast_path
from repro.machines.library import random_machine, reference_machine
from repro.machines.models import ProblemClass
from repro.machines.state_machine import algorithm_from_machine

#: The seven problem classes: the six algorithm models under arbitrary
#: numberings, plus Vector under the consistent-numbering convention (VVc).
SEVEN_CLASSES = [
    ("VVc", ProblemClass.VVC),
    ("VV", ProblemClass.VV),
    ("MV", ProblemClass.MV),
    ("SV", ProblemClass.SV),
    ("VB", ProblemClass.VB),
    ("MB", ProblemClass.MB),
    ("SB", ProblemClass.SB),
]

MODEL_BASES = {
    "VV": VectorAlgorithm,
    "MV": MultisetAlgorithm,
    "SV": SetAlgorithm,
    "VB": BroadcastAlgorithm,
    "MB": MultisetBroadcastAlgorithm,
    "SB": SetBroadcastAlgorithm,
}


def make_probe(base, rounds=3):
    """A native-model probe accumulating every received view: any delivery
    or projection discrepancy between the engines changes the output."""

    class Probe(base):
        def initial_state(self, degree):
            return (0, degree, ())

        def send(self, state, port):
            return ("p", state[0], port, state[1])

        def broadcast(self, state):
            return ("b", state[0], state[1])

        def transition(self, state, received):
            t, degree, acc = state
            acc = acc + (received,)
            if t + 1 >= rounds:
                return Output((degree, acc))
            return (t + 1, degree, acc)

    Probe.__name__ = f"Probe{base.__name__}"
    return Probe()


def make_nonhalting(base):
    """A probe that never reaches a stopping state (round-budget cases),
    except on degree-0 nodes, which halt immediately."""

    class NonHalting(base):
        def initial_state(self, degree):
            if degree == 0:
                return Output("isolated")
            return (0, degree)

        def send(self, state, port):
            return (state[0] % 3, port)

        def broadcast(self, state):
            return (state[0] % 3,)

        def transition(self, state, received):
            return (state[0] + 1, state[1])

    NonHalting.__name__ = f"NonHalting{base.__name__}"
    return NonHalting()


def adversarial_numberings(graph, consistent_only=False, cap=80, samples=12, seed=5):
    """Exhaustive numberings when small, plus sampled ones (reproducible)."""
    numberings = []
    for numbering in all_port_numberings(graph, consistent_only=consistent_only):
        numberings.append(numbering)
        if len(numberings) >= cap:
            break
    rng = random.Random(seed)
    numberings.extend(
        random_port_numbering(graph, rng=rng, consistent=consistent_only)
        for _ in range(samples)
    )
    return numberings


def assert_identical(sweep_results, other_results):
    assert len(sweep_results) == len(other_results)
    for swept, other in zip(sweep_results, other_results):
        assert swept.outputs == other.outputs
        assert swept.rounds == other.rounds
        assert swept.halted == other.halted
        assert swept.states == other.states


GRAPHS = [
    ("cycle5", cycle_graph(5)),
    ("star3", star_graph(3)),
    ("path4", path_graph(4)),
    ("regular", random_regular_graph(3, 8, seed=4)),
    ("bounded", random_bounded_degree_graph(7, 3, seed=11)),
]


class TestRandomMachinesDifferential:
    """run_sweep == run_iter == seed runner on hash-deterministic machines."""

    @pytest.mark.parametrize("label,problem_class", SEVEN_CLASSES, ids=[c[0] for c in SEVEN_CLASSES])
    @pytest.mark.parametrize("graph_name,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
    def test_all_seven_classes_on_adversarial_sweeps(self, label, problem_class, graph_name, graph):
        delta = max(graph.max_degree(), 1)
        for seed in (0, 7):
            machine = random_machine(problem_class, delta, seed=seed)
            algorithm = algorithm_from_machine(machine.as_state_machine())
            numberings = adversarial_numberings(
                graph, consistent_only=problem_class.requires_consistency
            )
            instances = [(graph, numbering) for numbering in numberings]
            swept = run_sweep(algorithm, instances, require_halt=False)
            compiled = run_many(
                algorithm, instances, require_halt=False, memoize_transitions=True
            )
            assert_identical(swept, compiled)
            seed_results = [
                run_reference(algorithm, graph, numbering, require_halt=False)
                for numbering in numberings
            ]
            assert_identical(swept, seed_results)

    @pytest.mark.parametrize("label,problem_class", SEVEN_CLASSES, ids=[c[0] for c in SEVEN_CLASSES])
    def test_two_round_reference_machines(self, label, problem_class):
        graph = random_regular_graph(3, 8, seed=2)
        algorithm = algorithm_from_machine(
            reference_machine(problem_class, 3, rounds=2).as_state_machine()
        )
        numberings = adversarial_numberings(
            graph, consistent_only=problem_class.requires_consistency, cap=40
        )
        instances = [(graph, numbering) for numbering in numberings]
        swept = run_sweep(algorithm, instances)
        compiled = run_many(algorithm, instances, memoize_transitions=True)
        assert_identical(swept, compiled)


class TestNativeModelProbes:
    """Native-model probes exercise the per-mode canonicalization and the
    delivery-signature deduplication (machines always present as Vector)."""

    @pytest.mark.parametrize("model", sorted(MODEL_BASES), ids=sorted(MODEL_BASES))
    @pytest.mark.parametrize("graph_name,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
    def test_probe_differential(self, model, graph_name, graph):
        algorithm = make_probe(MODEL_BASES[model])
        numberings = adversarial_numberings(graph, cap=60, samples=8)
        instances = [(graph, numbering) for numbering in numberings]
        swept = run_sweep(algorithm, instances)
        compiled = run_many(algorithm, instances, memoize_transitions=True)
        assert_identical(swept, compiled)
        seed_results = [
            run_reference(algorithm, graph, numbering) for numbering in numberings
        ]
        assert_identical(swept, seed_results)

    @pytest.mark.parametrize("model", ["MV", "SV", "VB", "MB", "SB"])
    def test_signature_dedup_preserves_results(self, model):
        """Non-Vector receive (or broadcast send) lets whole instances
        collapse; the replicated results must still be correct per instance."""
        graph = cycle_graph(4)
        algorithm = make_probe(MODEL_BASES[model])
        numberings = list(all_port_numberings(graph))
        instances = [(graph, numbering) for numbering in numberings]
        stats = SweepStats()
        swept = run_sweep(algorithm, instances, stats=stats)
        assert stats.replicated > 0, "exhaustive sweep should collapse instances"
        assert stats.executed + stats.replicated == stats.instances == len(numberings)
        compiled = run_many(algorithm, instances, memoize_transitions=True)
        assert_identical(swept, compiled)

    def test_vector_receive_never_dedups_instances(self):
        graph = cycle_graph(4)
        stats = SweepStats()
        run_sweep(
            make_probe(MODEL_BASES["VV"]),
            [(graph, p) for p in all_port_numberings(graph)],
            stats=stats,
        )
        assert stats.replicated == 0


class TestRoundBudget:
    """Non-halting runs: partial outputs, final states, budget rounds."""

    @pytest.mark.parametrize("model", sorted(MODEL_BASES), ids=sorted(MODEL_BASES))
    def test_budget_exhaustion_matches_compiled(self, model):
        graph = star_graph(3)  # the centre halts never, leaves never; degree-0 none
        algorithm = make_nonhalting(MODEL_BASES[model])
        numberings = adversarial_numberings(graph, cap=20, samples=4)
        instances = [(graph, numbering) for numbering in numberings]
        swept = run_sweep(algorithm, instances, max_rounds=7, require_halt=False)
        compiled = run_many(
            algorithm, instances, max_rounds=7, require_halt=False,
            memoize_transitions=True,
        )
        assert_identical(swept, compiled)
        assert all(not result.halted and result.rounds == 7 for result in swept)

    def test_require_halt_raises_execution_error(self):
        graph = cycle_graph(4)
        algorithm = make_nonhalting(MODEL_BASES["VV"])
        instances = [(graph, p) for p in adversarial_numberings(graph, cap=4, samples=0)]
        with pytest.raises(ExecutionError, match="did not halt"):
            run_sweep(algorithm, instances, max_rounds=5)

    def test_zero_round_budget(self):
        graph = path_graph(3)
        algorithm = make_nonhalting(MODEL_BASES["MV"])
        [swept] = run_sweep(algorithm, [graph], max_rounds=0, require_halt=False)
        reference = run_reference(algorithm, graph, max_rounds=0, require_halt=False)
        assert swept.rounds == reference.rounds == 0
        assert swept.states == reference.states
        assert swept.outputs == reference.outputs == {}


class TestBatchShapes:
    def test_mixed_graph_batch_groups_by_topology(self):
        algorithm = make_probe(MODEL_BASES["MV"])
        instances = []
        for graph in (cycle_graph(4), star_graph(3), cycle_graph(5)):
            for numbering in adversarial_numberings(graph, cap=6, samples=3):
                instances.append((graph, numbering))
        random.Random(3).shuffle(instances)
        swept = run_sweep(algorithm, instances)
        compiled = run_many(algorithm, instances, memoize_transitions=True)
        assert_identical(swept, compiled)

    def test_mixed_degrees_with_degree_sensitive_send(self):
        """Regression: a send rule that indexes per-port state data must not
        be evaluated for states interned by nodes of a different degree --
        the lazy rebuild-row tables only touch states that actually send at
        their own shape (the old eager watermark crashed here)."""
        from repro.algorithms.basic import PortEchoAlgorithm
        from repro.core.simulations import simulate_vector_with_multiset

        star, cycle = star_graph(3), cycle_graph(4)
        instances = [
            (star, consistent_port_numbering(star)),
            (cycle, consistent_port_numbering(cycle)),
        ]
        algorithm = simulate_vector_with_multiset(PortEchoAlgorithm())
        swept = run_sweep(algorithm, instances)
        compiled = run_many(algorithm, instances, memoize_transitions=True)
        assert_identical(swept, compiled)
        # Warm tables across calls of one wrapper, switching degree shapes.
        fast = fast_path(simulate_vector_with_multiset(PortEchoAlgorithm()))
        assert_identical(run_sweep(fast, instances[:1]), swept[:1])
        assert_identical(run_sweep(fast, instances[1:]), swept[1:])

    def test_run_iter_sweep_engine_dispatch(self):
        graph = cycle_graph(5)
        algorithm = make_probe(MODEL_BASES["SB"])
        instances = [(graph, p) for p in adversarial_numberings(graph, cap=10, samples=5)]
        swept = list(run_iter(algorithm, instances, engine="sweep"))
        compiled = list(run_iter(algorithm, instances, engine="compiled"))
        assert_identical(swept, compiled)

    def test_record_trace_falls_back_to_compiled(self):
        graph = path_graph(3)
        algorithm = make_probe(MODEL_BASES["VV"])
        [result] = list(run_iter(algorithm, [graph], engine="sweep", record_trace=True))
        assert result.trace is not None
        assert len(result.trace.state_history) == result.rounds + 1

    def test_per_instance_inputs(self):
        class InputEcho(MODEL_BASES["VV"]):
            def initial_state(self, degree):
                return (0, degree, None)

            def initial_state_with_input(self, degree, local_input):
                return (0, degree, local_input)

            def send(self, state, port):
                return (state[2], port)

            def transition(self, state, received):
                return Output((state[2], received))

        graph = cycle_graph(4)
        nodes = graph.nodes
        numbering = consistent_port_numbering(graph)
        inputs = [
            {node: (tag, i) for i, node in enumerate(nodes)}
            for tag in ("a", "b", "a")
        ]
        instances = [(graph, numbering)] * len(inputs)
        swept = run_sweep(InputEcho(), instances, inputs=inputs)
        compiled = run_many(
            InputEcho(), instances, inputs=inputs, memoize_transitions=True
        )
        assert_identical(swept, compiled)
        assert swept[0].outputs != swept[1].outputs

    def test_inputs_length_mismatch_raises(self):
        graph = cycle_graph(4)
        with pytest.raises(ValueError, match="entries for"):
            run_sweep(make_probe(MODEL_BASES["VV"]), [graph], inputs=[None, None])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_sweep(make_probe(MODEL_BASES["VV"]), [cycle_graph(3)], engine="quantum")

    def test_compiled_and_reference_oracles_via_engine_knob(self):
        graph = star_graph(3)
        algorithm = make_probe(MODEL_BASES["MB"])
        instances = [(graph, p) for p in adversarial_numberings(graph, cap=8, samples=4)]
        swept = run_sweep(algorithm, instances)
        via_compiled = run_sweep(algorithm, instances, engine="compiled")
        via_reference = run_sweep(algorithm, instances, engine="reference")
        assert_identical(swept, via_compiled)
        assert_identical(swept, via_reference)


class TestSweepTables:
    def test_tables_shared_across_sweeps_of_one_wrapper(self):
        graph = cycle_graph(5)
        fast = fast_path(make_probe(MODEL_BASES["MV"]))
        instances = [(graph, p) for p in adversarial_numberings(graph, cap=10, samples=5)]
        first = SweepStats()
        run_sweep(fast, instances, stats=first)
        tables = sweep_tables_for(fast)
        assert len(tables.configs) > 0
        second = SweepStats()
        run_sweep(fast, instances, stats=second)
        assert second.evaluations == 0, "warm tables answer the whole re-sweep"
        assert second.occurrences == first.occurrences

    def test_swept_wrapper_stays_picklable(self):
        """Regression: the lazy rebuild-row tables hold local builder
        closures; pickling a wrapper that has been through a sweep must drop
        the cache slots instead of failing on them."""
        import pickle

        from repro.algorithms.basic import NeighbourDegreeSumAlgorithm

        fast = fast_path(NeighbourDegreeSumAlgorithm(), memoize_transitions=True)
        graph = cycle_graph(4)
        [expected] = run_sweep(fast, [graph])
        clone = pickle.loads(pickle.dumps(fast))
        assert clone.sweep_tables is None
        assert clone.memoizes_transitions
        [rerun] = run_sweep(clone, [graph])
        assert rerun.outputs == expected.outputs

    def test_clear_cache_drops_sweep_tables(self):
        fast = fast_path(make_probe(MODEL_BASES["VV"]))
        run_sweep(fast, [cycle_graph(4)])
        assert sweep_tables_for(fast).state_values
        fast.clear_cache()
        assert not sweep_tables_for(fast).state_values

    def test_stats_account_for_dedup(self):
        graph = random_regular_graph(3, 8, seed=2)
        rng = random.Random(1)
        numberings = [random_port_numbering(graph, rng=rng) for _ in range(150)]
        algorithm = algorithm_from_machine(
            reference_machine(ProblemClass.MV, 3, rounds=2).as_state_machine()
        )
        stats = SweepStats()
        run_sweep(algorithm, [(graph, p) for p in numberings], stats=stats)
        assert stats.instances == 150
        assert stats.evaluations < stats.occurrences
        assert stats.dedup_ratio > 10

    def test_compiled_instances_accepted_directly(self):
        graph = cycle_graph(4)
        instances = [
            compile_instance((graph, p))
            for p in adversarial_numberings(graph, cap=6, samples=2)
        ]
        algorithm = make_probe(MODEL_BASES["SV"])
        assert_identical(
            run_sweep(algorithm, instances),
            run_many(algorithm, instances, memoize_transitions=True),
        )
