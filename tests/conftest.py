"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    figure9_graph,
    grid_graph,
    odd_odd_gadget_pair,
    path_graph,
    star_graph,
)


@pytest.fixture
def rng() -> random.Random:
    """A seeded random generator (reproducible tests)."""
    return random.Random(20120521)


@pytest.fixture
def small_graphs():
    """A small, varied family of graphs used by adversarial checks."""
    return [
        path_graph(2),
        path_graph(4),
        cycle_graph(3),
        cycle_graph(4),
        star_graph(3),
        complete_graph(4),
    ]


@pytest.fixture
def star3():
    return star_graph(3)


@pytest.fixture
def cycle5():
    return cycle_graph(5)


@pytest.fixture
def figure9():
    return figure9_graph()


@pytest.fixture
def grid33():
    return grid_graph(3, 3)


@pytest.fixture
def odd_odd_witness():
    return odd_odd_gadget_pair()
