"""Unit tests for adversarial execution over port numberings."""

from __future__ import annotations

from repro.algorithms.basic import GatherDegreesAlgorithm, PortEchoAlgorithm
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.execution.adversary import (
    distinct_outputs,
    outputs_over_port_numberings,
    port_numberings_to_check,
)
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.ports import count_port_numberings


class TestPortNumberingsToCheck:
    def test_exhaustive_for_small_graphs(self):
        graph = path_graph(3)
        numberings = list(port_numberings_to_check(graph))
        assert len(numberings) == count_port_numberings(graph) == 4

    def test_sampling_for_large_graphs(self):
        graph = cycle_graph(8)
        numberings = list(port_numberings_to_check(graph, exhaustive_limit=10, samples=7))
        assert len(numberings) == 8  # canonical + 7 samples

    def test_sampling_is_reproducible(self):
        graph = cycle_graph(8)
        first = [
            p.as_mapping()
            for p in port_numberings_to_check(graph, exhaustive_limit=10, samples=3, seed=5)
        ]
        second = [
            p.as_mapping()
            for p in port_numberings_to_check(graph, exhaustive_limit=10, samples=3, seed=5)
        ]
        assert first == second

    def test_consistent_only(self):
        graph = star_graph(3)
        numberings = list(port_numberings_to_check(graph, consistent_only=True))
        assert len(numberings) == 6
        assert all(p.is_consistent() for p in numberings)


class TestOutputsOverNumberings:
    def test_numbering_invariant_algorithm_has_one_outcome(self):
        graph = star_graph(3)
        outcomes = distinct_outputs(GatherDegreesAlgorithm(), graph)
        assert len(outcomes) == 1

    def test_numbering_sensitive_algorithm_has_many_outcomes(self):
        graph = star_graph(2)
        outcomes = distinct_outputs(PortEchoAlgorithm(), graph)
        assert len(outcomes) > 1

    def test_leaf_election_always_elects_exactly_one_leaf(self):
        graph = star_graph(3)
        for _numbering, result in outputs_over_port_numberings(LeafElectionAlgorithm(), graph):
            assert result.outputs[0] == 0
            assert sum(result.outputs[leaf] for leaf in (1, 2, 3)) == 1
