"""Unit tests for the building-block algorithms."""

from __future__ import annotations

import pytest

from repro.algorithms.basic import (
    BroadcastMinimumDegreeAlgorithm,
    ConstantAlgorithm,
    DegreeAlgorithm,
    GatherDegreesAlgorithm,
    NeighbourDegreeSumAlgorithm,
    PortEchoAlgorithm,
    RoundCounterAlgorithm,
)
from repro.execution.runner import run
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graphs.ports import consistent_port_numbering, local_type


class TestConstantAndDegree:
    def test_constant(self):
        result = run(ConstantAlgorithm("label"), path_graph(3))
        assert set(result.outputs.values()) == {"label"}

    def test_degree(self):
        result = run(DegreeAlgorithm(), complete_graph(4))
        assert set(result.outputs.values()) == {3}


class TestRoundCounter:
    def test_zero_rounds(self):
        result = run(RoundCounterAlgorithm(0), cycle_graph(3))
        assert result.rounds == 0
        assert set(result.outputs.values()) == {0}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RoundCounterAlgorithm(-1)


class TestNeighbourhoodAlgorithms:
    def test_neighbour_degree_sum_on_cycle(self):
        result = run(NeighbourDegreeSumAlgorithm(), cycle_graph(5))
        assert set(result.outputs.values()) == {4}

    def test_gather_degrees_on_star(self):
        result = run(GatherDegreesAlgorithm(), star_graph(3))
        assert result.outputs[0] == (1, 1, 1)
        assert result.outputs[1] == (3,)

    def test_broadcast_minimum_degree(self):
        result = run(BroadcastMinimumDegreeAlgorithm(), star_graph(4))
        assert result.outputs[0] == 1
        assert result.outputs[1] == 1

    def test_broadcast_minimum_degree_on_regular_graph(self):
        result = run(BroadcastMinimumDegreeAlgorithm(), cycle_graph(4))
        assert set(result.outputs.values()) == {2}


class TestPortEcho:
    def test_output_is_local_type_under_consistent_numbering(self):
        graph = star_graph(3)
        numbering = consistent_port_numbering(graph)
        result = run(PortEchoAlgorithm(), graph, numbering)
        for node in graph.nodes:
            expected = local_type(numbering, node)[: graph.degree(node)]
            assert result.outputs[node] == expected

    def test_takes_exactly_one_round(self):
        assert run(PortEchoAlgorithm(), cycle_graph(4)).rounds == 1
