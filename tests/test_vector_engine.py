"""Differential tests: the NumPy vector kernel vs sweep vs compiled vs seed.

``engine="vector"`` must be node-for-node identical to the superposed sweep
engine, the compiled active-set engine and the seed reference runner on every
model class, every topology and every port numbering.  The suite mirrors
``tests/test_sweep_engine.py`` -- all seven classes over hash-deterministic
random machines, exhaustive plus sampled numberings, round budgets,
mixed-graph batches, per-instance inputs, warm tables and pickling -- and is
skipped wholesale when NumPy is not installed (the registry probe and the
numpy-free CI job cover that path).
"""

from __future__ import annotations

import pickle
import random

import pytest

np = pytest.importorskip("numpy")

from test_sweep_engine import (  # noqa: E402
    GRAPHS,
    MODEL_BASES,
    SEVEN_CLASSES,
    adversarial_numberings,
    assert_identical,
    make_nonhalting,
    make_probe,
)

from repro.core import simulate_vector_with_multiset  # noqa: E402
from repro.execution.engine import ExecutionError, run_iter, run_many  # noqa: E402
from repro.execution.sweep import SweepStats, run_sweep  # noqa: E402
from repro.execution.vector import run_vector, vector_tables_for  # noqa: E402
from repro.graphs.generators import (  # noqa: E402
    cycle_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.ports import consistent_port_numbering, random_port_numbering  # noqa: E402
from repro.machines.algorithm import Output  # noqa: E402
from repro.machines.fastpath import fast_path  # noqa: E402
from repro.machines.library import random_machine, reference_machine  # noqa: E402
from repro.machines.models import ProblemClass  # noqa: E402
from repro.machines.state_machine import algorithm_from_machine  # noqa: E402


class PortEchoAlgorithm(MODEL_BASES["VV"]):
    """Vector-mode probe whose output depends on per-port delivery order."""

    def initial_state(self, degree):
        return (0, degree)

    def send(self, state, port):
        return (state[0], port, state[1])

    def transition(self, state, received):
        t, degree = state
        if t >= 1:
            return Output((degree, received))
        return (t + 1, degree)


class TestRandomMachinesDifferential:
    """run_vector == run_sweep == run_many == seed on random machines."""

    @pytest.mark.parametrize(
        "label,problem_class", SEVEN_CLASSES, ids=[c[0] for c in SEVEN_CLASSES]
    )
    @pytest.mark.parametrize("graph_name,graph", GRAPHS, ids=[g[0] for g in GRAPHS])
    def test_all_seven_classes_on_adversarial_sweeps(
        self, label, problem_class, graph_name, graph
    ):
        delta = max(graph.max_degree(), 1)
        for seed in (0, 7):
            machine = random_machine(problem_class, delta, seed=seed)
            algorithm = algorithm_from_machine(machine.as_state_machine())
            numberings = adversarial_numberings(
                graph, consistent_only=problem_class.requires_consistency
            )
            instances = [(graph, numbering) for numbering in numberings]
            vectored = run_vector(algorithm, instances, require_halt=False)
            swept = run_sweep(algorithm, instances, require_halt=False)
            assert_identical(vectored, swept)
            compiled = run_many(
                algorithm, instances, require_halt=False, memoize_transitions=True
            )
            assert_identical(vectored, compiled)

    @pytest.mark.parametrize(
        "label,problem_class", SEVEN_CLASSES, ids=[c[0] for c in SEVEN_CLASSES]
    )
    def test_two_round_reference_machines(self, label, problem_class):
        graph = random_regular_graph(3, 8, seed=2)
        algorithm = algorithm_from_machine(
            reference_machine(problem_class, 3, rounds=2).as_state_machine()
        )
        numberings = adversarial_numberings(
            graph, consistent_only=problem_class.requires_consistency, cap=40
        )
        instances = [(graph, numbering) for numbering in numberings]
        assert_identical(
            run_vector(algorithm, instances, require_halt=False),
            run_sweep(algorithm, instances, require_halt=False),
        )


class TestNativeProbes:
    @pytest.mark.parametrize("class_name", sorted(MODEL_BASES))
    @pytest.mark.parametrize(
        "graph_name,graph", GRAPHS[:3], ids=[g[0] for g in GRAPHS[:3]]
    )
    def test_probe_outputs_identical(self, class_name, graph_name, graph):
        algorithm = make_probe(MODEL_BASES[class_name])
        instances = [
            (graph, numbering)
            for numbering in adversarial_numberings(graph, cap=30, samples=8)
        ]
        stats = SweepStats()
        vectored = run_vector(algorithm, instances, stats=stats)
        assert_identical(vectored, run_sweep(algorithm, instances))
        assert stats.instances == len(instances)
        assert stats.evaluations <= stats.occurrences

    def test_mixed_graph_batch(self):
        algorithm = make_probe(MODEL_BASES["MB"])
        instances = []
        for _, graph in GRAPHS:
            for numbering in adversarial_numberings(graph, cap=6, samples=3):
                instances.append((graph, numbering))
        rng = random.Random(3)
        rng.shuffle(instances)
        assert_identical(
            run_vector(algorithm, instances), run_sweep(algorithm, instances)
        )

    def test_round_budget_and_zero_rounds(self):
        graph = cycle_graph(5)
        algorithm = make_nonhalting(MODEL_BASES["MV"])
        instances = [
            (graph, numbering)
            for numbering in adversarial_numberings(graph, cap=8, samples=4)
        ]
        budgeted = run_vector(algorithm, instances, max_rounds=7, require_halt=False)
        assert all(not r.halted and r.rounds == 7 for r in budgeted)
        assert_identical(
            budgeted, run_sweep(algorithm, instances, max_rounds=7, require_halt=False)
        )
        zero = run_vector(algorithm, instances, max_rounds=0, require_halt=False)
        assert all(not r.halted and r.rounds == 0 for r in zero)

    def test_require_halt_raises(self):
        graph = cycle_graph(4)
        algorithm = make_nonhalting(MODEL_BASES["SB"])
        with pytest.raises(ExecutionError, match="did not halt"):
            run_vector(algorithm, [graph], max_rounds=5)

    def test_degree_sensitive_send_across_shapes(self):
        # Regression shape: a simulated vector algorithm whose send consults
        # the degree must never be probed beyond a state's observed degree.
        fast = fast_path(simulate_vector_with_multiset(PortEchoAlgorithm()))
        star, cycle = star_graph(3), cycle_graph(5)
        instances = [
            (star, consistent_port_numbering(star)),
            (cycle, consistent_port_numbering(cycle)),
        ]
        assert_identical(
            run_vector(fast, instances),
            run_many(fast, instances, memoize_transitions=True),
        )
        # Warm tables, switching degree shapes between calls.
        assert_identical(run_vector(fast, instances[1:]), run_vector(fast, instances[1:]))

    def test_per_instance_inputs(self):
        class InputEcho(MODEL_BASES["VV"]):
            def initial_state(self, degree):
                return (0, degree, None)

            def initial_state_with_input(self, degree, local_input):
                return (0, degree, local_input)

            def send(self, state, port):
                return (state[2], port)

            def transition(self, state, received):
                return Output((state[2], received))

        graph = cycle_graph(4)
        nodes = graph.nodes
        numbering = consistent_port_numbering(graph)
        inputs = [
            {node: (tag, i) for i, node in enumerate(nodes)} for tag in ("a", "b", "a")
        ]
        instances = [(graph, numbering)] * len(inputs)
        vectored = run_vector(InputEcho(), instances, inputs=inputs)
        assert_identical(vectored, run_sweep(InputEcho(), instances, inputs=inputs))
        assert vectored[0].outputs != vectored[1].outputs


class TestDispatch:
    def test_run_sweep_vector_engine_knob(self):
        graph = star_graph(3)
        algorithm = make_probe(MODEL_BASES["MB"])
        instances = [
            (graph, p) for p in adversarial_numberings(graph, cap=8, samples=4)
        ]
        assert_identical(
            run_sweep(algorithm, instances, engine="vector"),
            run_sweep(algorithm, instances),
        )

    def test_run_iter_and_run_many_vector_engine_knob(self):
        graph = cycle_graph(5)
        algorithm = make_probe(MODEL_BASES["SB"])
        instances = [
            (graph, p) for p in adversarial_numberings(graph, cap=10, samples=5)
        ]
        assert_identical(
            list(run_iter(algorithm, instances, engine="vector")),
            list(run_iter(algorithm, instances, engine="compiled")),
        )
        assert_identical(
            run_many(algorithm, instances, engine="vector"),
            run_many(algorithm, instances, engine="sweep"),
        )

    def test_record_trace_falls_back_to_compiled(self):
        graph = path_graph(3)
        algorithm = make_probe(MODEL_BASES["VV"])
        [result] = list(
            run_iter(algorithm, [graph], engine="vector", record_trace=True)
        )
        assert result.trace is not None
        assert len(result.trace.state_history) == result.rounds + 1


class TestVectorTables:
    def test_tables_warm_across_calls(self):
        graph = cycle_graph(5)
        fast = fast_path(make_probe(MODEL_BASES["MV"]))
        instances = [
            (graph, p) for p in adversarial_numberings(graph, cap=10, samples=5)
        ]
        first = SweepStats()
        run_vector(fast, instances, stats=first)
        tables = vector_tables_for(fast)
        assert tables.config_count > 0
        second = SweepStats()
        run_vector(fast, instances, stats=second)
        assert second.evaluations == 0, "warm tables answer the whole re-sweep"
        assert second.occurrences == first.occurrences

    def test_vectored_wrapper_stays_picklable(self):
        from repro.algorithms.basic import NeighbourDegreeSumAlgorithm

        fast = fast_path(NeighbourDegreeSumAlgorithm(), memoize_transitions=True)
        graph = cycle_graph(4)
        [expected] = run_vector(fast, [graph])
        clone = pickle.loads(pickle.dumps(fast))
        assert clone.vector_tables is None
        [rerun] = run_vector(clone, [graph])
        assert rerun.outputs == expected.outputs

    def test_clear_cache_drops_vector_tables(self):
        fast = fast_path(make_probe(MODEL_BASES["VV"]))
        run_vector(fast, [cycle_graph(4)])
        assert vector_tables_for(fast).config_count > 0
        fast.clear_cache()
        assert vector_tables_for(fast).config_count == 0

    def test_stats_account_for_dedup(self):
        graph = random_regular_graph(3, 8, seed=2)
        rng = random.Random(1)
        numberings = [random_port_numbering(graph, rng=rng) for _ in range(150)]
        algorithm = algorithm_from_machine(
            reference_machine(ProblemClass.MV, 3, rounds=2).as_state_machine()
        )
        stats = SweepStats()
        run_vector(algorithm, [(graph, p) for p in numberings], stats=stats)
        assert stats.instances == 150
        assert stats.evaluations < stats.occurrences
