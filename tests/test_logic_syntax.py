"""Unit tests for the formula AST (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
    conjunction,
    disjunction,
    is_graded,
    logic_of,
    modal_depth,
    modal_indices,
    propositions,
    subformulas,
)


class TestConstruction:
    def test_formulas_are_hashable_values(self):
        assert Prop("q") == Prop("q")
        assert hash(And(Prop("p"), Prop("q"))) == hash(And(Prop("p"), Prop("q")))
        assert Prop("p") != Prop("q")

    def test_operator_sugar(self):
        sugar = Prop("p") & ~Prop("q") | Prop("r")
        explicit = Or(And(Prop("p"), Not(Prop("q"))), Prop("r"))
        assert sugar == explicit

    def test_implication_sugar(self):
        assert (Prop("p") >> Prop("q")) == Implies(Prop("p"), Prop("q"))

    def test_graded_diamond_rejects_negative_grade(self):
        with pytest.raises(ValueError):
            GradedDiamond(Prop("p"), grade=-1)

    def test_conjunction_and_disjunction_builders(self):
        assert conjunction([]) == Top()
        assert disjunction([]) == Bottom()
        assert conjunction([Prop("p")]) == Prop("p")
        assert disjunction([Prop("p"), Prop("q")]) == Or(Prop("p"), Prop("q"))


class TestModalDepth:
    def test_depth_of_propositional_formulas(self):
        assert modal_depth(Prop("q")) == 0
        assert modal_depth(And(Prop("p"), Not(Prop("q")))) == 0

    def test_depth_counts_nesting_not_occurrences(self):
        one_deep = And(Diamond(Prop("p")), Diamond(Prop("q")))
        assert modal_depth(one_deep) == 1
        nested = Diamond(Diamond(Diamond(Prop("p"))))
        assert modal_depth(nested) == 3

    def test_graded_and_box_count_as_modalities(self):
        assert modal_depth(GradedDiamond(Prop("p"), grade=2)) == 1
        assert modal_depth(Box(Diamond(Prop("p")))) == 2

    def test_depth_of_mixed_formula(self):
        phi = Implies(Diamond(Prop("p")), Diamond(Diamond(Prop("q"))))
        assert modal_depth(phi) == 2


class TestStructuralQueries:
    def test_subformulas(self):
        phi = And(Prop("p"), Diamond(Not(Prop("q"))))
        subs = subformulas(phi)
        assert Prop("p") in subs and Prop("q") in subs
        assert Not(Prop("q")) in subs and phi in subs
        assert len(subs) == 5

    def test_propositions(self):
        phi = Or(Prop("a"), Diamond(And(Prop("b"), Prop("a"))))
        assert propositions(phi) == frozenset({"a", "b"})

    def test_modal_indices(self):
        phi = And(Diamond(Prop("p"), index=(1, 2)), GradedDiamond(Prop("q"), 2, index=("*", 1)))
        assert modal_indices(phi) == frozenset({(1, 2), ("*", 1)})

    def test_is_graded(self):
        assert is_graded(GradedDiamond(Prop("p"), 3))
        assert not is_graded(Diamond(Prop("p")))


class TestLogicClassification:
    def test_plain_ml(self):
        assert logic_of(Diamond(Prop("p"))) == "ML"

    def test_graded_ml(self):
        assert logic_of(GradedDiamond(Prop("p"), 2)) == "GML"

    def test_multimodal(self):
        assert logic_of(Diamond(Prop("p"), index=(1, 1))) == "MML"

    def test_graded_multimodal(self):
        phi = And(Diamond(Prop("p"), index=(1, 1)), GradedDiamond(Prop("q"), 2, index=(1, 2)))
        assert logic_of(phi) == "GMML"

    def test_propositional_formula_is_ml(self):
        assert logic_of(And(Prop("p"), Not(Prop("q")))) == "ML"


class TestPrinting:
    def test_round_trippable_strings(self):
        assert str(Prop("q1")) == "q1"
        assert str(Not(Prop("q"))) == "~q"
        assert str(Diamond(Prop("p"))) == "<>p"
        assert str(Diamond(Prop("p"), index=(2, 1))) == "<2,1>p"
        assert str(GradedDiamond(Prop("p"), 2, index=("*", "*"))) == "<*,*>>=2 p"
        assert str(Box(Prop("p"))) == "[]p"
        assert str(And(Prop("p"), Prop("q"))) == "(p & q)"
