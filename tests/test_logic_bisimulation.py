"""Unit tests for bisimulation and graded bisimulation (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.logic.bisimulation import (
    are_bisimilar,
    bisimilarity_classes,
    bisimilarity_partition,
    bisimilar_within,
    bounded_bisimilarity_partition,
    is_bisimulation,
    is_graded_bisimulation,
)
from repro.logic.kripke import KripkeModel
from repro.logic.semantics import extension
from repro.logic.syntax import Diamond, GradedDiamond, Not, Prop
from repro.graphs.generators import cycle_graph, odd_odd_gadget_pair, path_graph
from repro.modal.encoding import KripkeVariant, kripke_encoding


def _cycle_model(n: int) -> KripkeModel:
    pairs = [(i, (i + 1) % n) for i in range(n)] + [((i + 1) % n, i) for i in range(n)]
    return KripkeModel(worlds=range(n), relations={"R": pairs}, valuation={})


def _counting_pair() -> tuple[KripkeModel, KripkeModel]:
    """Two trees: a root with one p-child versus a root with two p-children."""
    one = KripkeModel(["r", "c1"], {"R": [("r", "c1")]}, {"p": ["c1"]})
    two = KripkeModel(["r", "c1", "c2"], {"R": [("r", "c1"), ("r", "c2")]}, {"p": ["c1", "c2"]})
    return one, two


class TestPlainBisimilarity:
    def test_all_cycle_worlds_are_bisimilar(self):
        model = _cycle_model(6)
        assert bisimilar_within(model, model.worlds)
        assert len(bisimilarity_classes(model)) == 1

    def test_valuation_separates_worlds(self):
        model = KripkeModel([0, 1], {"R": []}, {"p": [0]})
        assert not bisimilar_within(model, [0, 1])

    def test_path_endpoints_bisimilar_to_each_other_not_to_middle(self):
        graph = path_graph(3)
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        partition = bisimilarity_partition(encoding)
        assert partition[0] == partition[2]
        assert partition[0] != partition[1]

    def test_cross_model_bisimilarity(self):
        # Cycles of different (even) lengths are bisimilar when unlabelled.
        assert are_bisimilar(_cycle_model(4), 0, _cycle_model(6), 3)

    def test_counting_does_not_matter_for_plain_bisimilarity(self):
        one, two = _counting_pair()
        assert are_bisimilar(one, "r", two, "r")


class TestGradedBisimilarity:
    def test_counting_matters_for_graded_bisimilarity(self):
        one, two = _counting_pair()
        assert not are_bisimilar(one, "r", two, "r", graded=True)

    def test_graded_refines_plain(self):
        graph = odd_odd_gadget_pair()[0]
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        plain = bisimilarity_partition(encoding)
        graded = bisimilarity_partition(encoding, graded=True)
        # Every graded class is contained in a plain class.
        for world in encoding.worlds:
            for other in encoding.worlds:
                if graded[world] == graded[other]:
                    assert plain[world] == plain[other]

    def test_odd_odd_witnesses(self):
        graph, first, second = odd_odd_gadget_pair()
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        assert bisimilar_within(encoding, [first, second])
        assert not bisimilar_within(encoding, [first, second], graded=True)


class TestBoundedBisimilarity:
    def test_zero_rounds_is_label_partition(self):
        graph = path_graph(4)
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        partition = bounded_bisimilarity_partition(encoding, 0)
        # Degree-1 and degree-2 nodes form the two blocks.
        assert len(set(partition.values())) == 2

    def test_refinement_is_monotone(self):
        graph = path_graph(6)
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        sizes = [
            len(set(bounded_bisimilarity_partition(encoding, rounds).values()))
            for rounds in range(5)
        ]
        assert sizes == sorted(sizes)

    def test_bounded_reaches_fixpoint(self):
        graph = path_graph(5)
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        full = bisimilarity_partition(encoding)
        bounded = bounded_bisimilarity_partition(encoding, 10)
        assert len(set(full.values())) == len(set(bounded.values()))

    def test_negative_rounds_rejected(self):
        model = _cycle_model(3)
        with pytest.raises(ValueError):
            bounded_bisimilarity_partition(model, -1)


class TestCertificates:
    def test_identity_is_a_bisimulation(self):
        model = _cycle_model(4)
        identity = [(w, w) for w in model.worlds]
        assert is_bisimulation(model, model, identity)
        assert is_graded_bisimulation(model, model, identity)

    def test_empty_relation_is_not_a_bisimulation(self):
        model = _cycle_model(3)
        assert not is_bisimulation(model, model, [])

    def test_full_relation_on_cycle_is_a_bisimulation(self):
        model = _cycle_model(5)
        full = [(v, w) for v in model.worlds for w in model.worlds]
        assert is_bisimulation(model, model, full)
        assert is_graded_bisimulation(model, model, full)

    def test_atom_disagreement_is_rejected(self):
        model = KripkeModel([0, 1], {"R": []}, {"p": [0]})
        assert not is_bisimulation(model, model, [(0, 1)])

    def test_forth_condition_violation(self):
        # 0 -> 1 in the first model; the second model has no transition.
        first = KripkeModel([0, 1], {"R": [(0, 1)]}, {})
        second = KripkeModel([0, 1], {"R": []}, {})
        assert not is_bisimulation(first, second, [(0, 0), (1, 1)])

    def test_graded_rejects_count_mismatch(self):
        one, two = _counting_pair()
        relation = [("r", "r"), ("c1", "c1"), ("c1", "c2")]
        assert is_bisimulation(one, two, relation)
        assert not is_graded_bisimulation(one, two, relation)

    def test_partition_blocks_form_a_bisimulation(self):
        graph = cycle_graph(5)
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        partition = bisimilarity_partition(encoding)
        relation = [
            (v, w)
            for v in encoding.worlds
            for w in encoding.worlds
            if partition[v] == partition[w]
        ]
        assert is_bisimulation(encoding, encoding, relation)


class TestFact1:
    """Fact 1: (graded) bisimilar worlds satisfy the same (graded) formulas."""

    def test_plain_invariance_on_sample_formulas(self):
        graph = odd_odd_gadget_pair()[0]
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        partition = bisimilarity_partition(encoding)
        index = ("*", "*")
        formulas = [
            Diamond(Prop("deg1"), index=index),
            Diamond(Diamond(Prop("deg3"), index=index), index=index),
            Not(Diamond(Prop("deg2"), index=index)),
        ]
        for formula in formulas:
            truth = extension(encoding, formula)
            for v in encoding.worlds:
                for w in encoding.worlds:
                    if partition[v] == partition[w]:
                        assert (v in truth) == (w in truth)

    def test_graded_invariance_on_sample_formulas(self):
        graph = odd_odd_gadget_pair()[0]
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        partition = bisimilarity_partition(encoding, graded=True)
        index = ("*", "*")
        formulas = [
            GradedDiamond(Prop("deg1"), grade=2, index=index),
            GradedDiamond(Diamond(Prop("deg1"), index=index), grade=2, index=index),
        ]
        for formula in formulas:
            truth = extension(encoding, formula)
            for v in encoding.worlds:
                for w in encoding.worlds:
                    if partition[v] == partition[w]:
                        assert (v in truth) == (w in truth)
