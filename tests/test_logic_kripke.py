"""Unit tests for Kripke models."""

from __future__ import annotations

import pytest

from repro.logic.kripke import KripkeModel


def _simple_model() -> KripkeModel:
    return KripkeModel(
        worlds={"u", "v", "w"},
        relations={"R": [("u", "v"), ("v", "w"), ("w", "w")]},
        valuation={"p": ["u", "w"], "q": ["v"]},
    )


class TestConstruction:
    def test_empty_world_set_rejected(self):
        with pytest.raises(ValueError):
            KripkeModel([], {}, {})

    def test_relation_over_unknown_world_rejected(self):
        with pytest.raises(ValueError):
            KripkeModel(["a"], {"R": [("a", "b")]})

    def test_valuation_over_unknown_world_rejected(self):
        with pytest.raises(ValueError):
            KripkeModel(["a"], {}, {"p": ["zzz"]})

    def test_missing_valuation_defaults_to_false(self):
        model = KripkeModel(["a"], {}, {})
        assert not model.holds("p", "a")
        assert model.valuation_of("p") == frozenset()


class TestQueries:
    def test_successors(self):
        model = _simple_model()
        assert model.successors("u", "R") == ("v",)
        assert model.successors("w", "R") == ("w",)
        assert model.successors("u", "unknown") == ()

    def test_relation_and_indices(self):
        model = _simple_model()
        assert ("u", "v") in model.relation("R")
        assert model.indices == frozenset({"R"})

    def test_labels(self):
        model = _simple_model()
        assert model.label("u") == frozenset({"p"})
        assert model.label("v") == frozenset({"q"})

    def test_holds(self):
        model = _simple_model()
        assert model.holds("p", "w")
        assert not model.holds("q", "w")


class TestConstructions:
    def test_disjoint_union(self):
        model = _simple_model()
        union = model.disjoint_union(model)
        assert len(union.worlds) == 6
        assert ((0, "u"), (0, "v")) in union.relation("R")
        assert ((1, "u"), (1, "v")) in union.relation("R")
        assert ((0, "u"), (1, "v")) not in union.relation("R")
        assert union.holds("p", (0, "u")) and union.holds("p", (1, "u"))

    def test_restrict_indices(self):
        model = KripkeModel(
            ["a", "b"],
            {"R": [("a", "b")], "S": [("b", "a")]},
            {},
        )
        restricted = model.restrict_indices(["R"])
        assert restricted.indices == frozenset({"R"})
        assert restricted.relation("S") == frozenset()


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert _simple_model() == _simple_model()
        assert hash(_simple_model()) == hash(_simple_model())

    def test_inequality_on_valuation(self):
        other = KripkeModel(
            worlds={"u", "v", "w"},
            relations={"R": [("u", "v"), ("v", "w"), ("w", "w")]},
            valuation={"p": ["u"], "q": ["v"]},
        )
        assert other != _simple_model()

    def test_repr(self):
        assert "KripkeModel" in repr(_simple_model())
