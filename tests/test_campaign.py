"""Tests for the campaign subsystem: specs, store, executor, aggregation, CLI.

The determinism tests are the load-bearing ones: a campaign's manifest digest
must depend only on the spec and the result payloads -- never on shard order,
worker count, process hash seed, or wall-clock timings -- because that is
what makes the content-addressed store resumable and the sharded executor
trustworthy.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    ALGORITHMS,
    BUILTIN_CAMPAIGNS,
    GRAPH_FAMILIES,
    MODEL_DEFAULT_ALGORITHMS,
    CampaignSpec,
    GraphGrid,
    ResultStore,
    Scenario,
    builtin_spec,
    campaign_result,
    load_records,
    run_campaign,
)
from repro.campaign.__main__ import main as campaign_main
from repro.campaign.executor import canonical_value, evaluate_scenarios
from repro.campaign.registry import build_graph, build_numbering, derived_seed
from repro.campaign.store import record_digest


def tiny_spec(name: str = "tiny") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="execution",
        graphs=[GraphGrid.of("cycle", {"n": [4, 5]}), GraphGrid.of("star", {"leaves": 3})],
        port_strategies=["consistent", "random"],
        model_classes=["SB", "MB"],
        seeds=[0, 1],
    )


def tiny_logic_spec(name: str = "tiny-logic") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="logic",
        graphs=[GraphGrid.of("random-bounded-degree", {"n": 6, "max_degree": 3})],
        model_classes=["SB"],
        formula_sets=["ml-basic", "gml-basic"],
        seeds=[0, 1],
    )


class TestSpecRoundTrip:
    def test_dict_json_dict_is_lossless(self):
        spec = builtin_spec("e3-hierarchy")
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt.to_dict() == spec.to_dict()
        assert rebuilt.digest() == spec.digest()

    @pytest.mark.parametrize("name", sorted(BUILTIN_CAMPAIGNS))
    def test_every_builtin_round_trips(self, name):
        spec = builtin_spec(name)
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.to_dict() == spec.to_dict()
        assert [s.content_hash() for s in rebuilt.expand()] == [
            s.content_hash() for s in spec.expand()
        ]

    def test_scalar_params_promote_to_sweeps(self):
        grid = GraphGrid.of("grid", {"rows": 2, "cols": [2, 3]})
        assert grid.points() == [
            (("cols", 2), ("rows", 2)),
            (("cols", 3), ("rows", 2)),
        ]

    def test_nested_list_params_survive(self):
        grid = GraphGrid.of("circulant", {"n": 8, "jumps": [[1, 2], [1, 3]]})
        points = grid.points()
        assert len(points) == 2
        assert GraphGrid.of(**{
            "family": grid.to_dict()["family"],
            "params": grid.to_dict()["params"],
        }) == grid

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="x", kind="nope", graphs=[])

    def test_scenario_round_trip(self):
        scenario = tiny_spec().expand()[0]
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert Scenario.from_dict(scenario.to_dict()).content_hash() == scenario.content_hash()


class TestExpansion:
    def test_expansion_is_deterministic_and_order_stable(self):
        first = tiny_spec().expand()
        second = tiny_spec().expand()
        assert first == second
        # 3 deterministic graph points x 2 classes x (consistent: 1 seed
        # [collapsed] + random: 2 seeds) -- every scenario a distinct hash.
        assert len(first) == 18
        assert len({s.content_hash() for s in first}) == 18

    def test_seed_axis_collapses_where_it_cannot_reach_the_result(self):
        scenarios = tiny_spec().expand()
        consistent_seeds = {s.seed for s in scenarios if s.port_strategy == "consistent"}
        random_seeds = {s.seed for s in scenarios if s.port_strategy == "random"}
        assert consistent_seeds == {0}  # deterministic family + unseeded strategy
        assert random_seeds == {0, 1}
        # A seeded family keeps the full seed axis under every strategy.
        seeded = CampaignSpec(
            name="s",
            kind="execution",
            graphs=[GraphGrid.of("random-tree", {"n": 6})],
            port_strategies=["consistent"],
            model_classes=["SB"],
            seeds=[0, 1, 2],
        )
        assert {s.seed for s in seeded.expand()} == {0, 1, 2}

    def test_kind_mismatched_axes_are_rejected(self):
        with pytest.raises(ValueError, match="formula_sets"):
            CampaignSpec(
                name="x",
                kind="execution",
                graphs=[],
                model_classes=["SB"],
                formula_sets=["ml-basic"],
            )
        with pytest.raises(ValueError, match="algorithms"):
            CampaignSpec(
                name="x", kind="logic", graphs=[], algorithms=["degree"]
            )

    def test_content_hash_ignores_campaign_name(self):
        a = tiny_spec("one").expand()
        b = tiny_spec("two").expand()
        assert [s.content_hash() for s in a] == [s.content_hash() for s in b]

    def test_model_class_sweep_resolves_registry_defaults(self):
        for scenario in tiny_spec().expand():
            assert scenario.algorithm == MODEL_DEFAULT_ALGORITHMS[scenario.model_class]

    def test_execution_spec_requires_a_workload_axis(self):
        spec = CampaignSpec(name="x", kind="execution", graphs=[GraphGrid.of("cycle", {"n": 4})])
        with pytest.raises(ValueError):
            spec.expand()

    def test_unknown_axis_values_fail_fast_at_expand_time(self):
        base = dict(name="x", kind="execution", graphs=[GraphGrid.of("cycle", {"n": 4})])
        for field_name, value, message in (
            ("model_classes", ["sb"], "unknown model class 'sb'"),
            ("port_strategies", ["sorted"], "unknown port strategy"),
            ("engines", ["turbo"], "unknown engine"),
            ("algorithms", ["quicksort"], "unknown algorithm"),
        ):
            spec = CampaignSpec(**base, **{field_name: value})
            if field_name in ("port_strategies", "engines"):
                spec.model_classes = ["SB"]
            with pytest.raises(ValueError, match=message):
                spec.expand()
        bad_family = CampaignSpec(
            name="x", kind="execution", graphs=[GraphGrid.of("moebius", {})], model_classes=["SB"]
        )
        with pytest.raises(ValueError, match="unknown graph family"):
            bad_family.expand()
        bad_param = CampaignSpec(
            name="x",
            kind="execution",
            graphs=[GraphGrid.of("torus", {"row": 3, "cols": 3})],  # typo: 'row'
            model_classes=["SB"],
        )
        with pytest.raises(ValueError, match="unknown parameter 'row'"):
            bad_param.expand()
        # base_* params of derived families are legitimate.
        derived = CampaignSpec(
            name="x",
            kind="execution",
            graphs=[GraphGrid.of("lift", {"base": "cycle", "base_n": 5, "k": 2})],
            model_classes=["SB"],
        )
        assert derived.expand()

    def test_seed_collapse_is_canonical_across_seed_axes(self):
        base = dict(
            kind="execution",
            graphs=[GraphGrid.of("cycle", {"n": 4})],
            port_strategies=["consistent"],
            model_classes=["SB"],
        )
        a = CampaignSpec(name="a", seeds=[0], **base).expand()
        b = CampaignSpec(name="b", seeds=[7, 8], **base).expand()
        assert [s.content_hash() for s in a] == [s.content_hash() for s in b]


class TestRegistry:
    def test_every_family_registered_and_buildable(self):
        samples = {
            "path": {"n": 4},
            "cycle": {"n": 5},
            "star": {"leaves": 3},
            "complete": {"n": 4},
            "complete-bipartite": {"m": 2, "n": 3},
            "grid": {"rows": 2, "cols": 3},
            "torus": {"rows": 3, "cols": 3},
            "hypercube": {"dimension": 3},
            "circulant": {"n": 8, "jumps": [1, 2]},
            "figure9": {},
            "random-regular": {"degree": 3, "n": 8},
            "random": {"n": 8, "probability": 0.4},
            "random-bounded-degree": {"n": 8, "max_degree": 3},
            "random-tree": {"n": 8},
            "double-cover": {"base": "cycle", "base_n": 5},
            "lift": {"base": "cycle", "base_n": 5, "k": 2},
        }
        assert set(samples) == set(GRAPH_FAMILIES)
        for family, params in samples.items():
            graph = build_graph(family, params, seed=1)
            assert graph.number_of_nodes > 0
            # seed-determinism of the registry path
            assert build_graph(family, params, seed=1) == graph

    def test_unknown_names_raise_with_suggestions(self):
        with pytest.raises(KeyError, match="known families"):
            build_graph("moebius", {}, seed=0)
        with pytest.raises(KeyError, match="known"):
            build_numbering("sorted", build_graph("cycle", {"n": 4}), 0)

    def test_model_defaults_cover_all_classes(self):
        assert set(MODEL_DEFAULT_ALGORITHMS) == {"SB", "MB", "VB", "SV", "MV", "VV", "VVc"}
        assert set(MODEL_DEFAULT_ALGORITHMS.values()) <= set(ALGORITHMS)

    def test_derived_seed_is_process_independent(self):
        # Known value: must never change (records in existing stores depend on it).
        assert derived_seed("ports", 0) == derived_seed("ports", 0)
        assert derived_seed("ports", 0) != derived_seed("ports", 1)

    def test_port_strategies_deterministic(self):
        graph = build_graph("star", {"leaves": 4}, seed=0)
        a = build_numbering("random", graph, 7)
        b = build_numbering("random", graph, 7)
        assert a.outgoing_assignment() == b.outgoing_assignment()
        assert a.incoming_assignment() == b.incoming_assignment()


class TestCanonicalValue:
    def test_scalars_pass_through(self):
        assert canonical_value(3) == 3
        assert canonical_value("x") == "x"
        assert canonical_value(None) is None

    def test_unordered_collections_are_sorted(self):
        assert canonical_value(frozenset({3, 1, 2})) == [1, 2, 3]
        assert canonical_value((1, frozenset({"b", "a"}))) == [1, ["a", "b"]]


class TestStore:
    def test_put_get_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_spec().expand()[0]
        [record] = evaluate_scenarios([scenario])
        assert store.put(record) is True
        assert store.put(record) is False
        assert store.get(record["hash"])["result"] == record["result"]
        assert store.has(record["hash"])
        with pytest.raises(KeyError):
            store.get("0" * 64)

    def test_record_digest_ignores_timing(self):
        scenario = tiny_spec().expand()[0]
        [record] = evaluate_scenarios([scenario])
        slower = dict(record, elapsed_s=record["elapsed_s"] + 100)
        assert record_digest(slower) == record_digest(record)

    def test_index_self_heals(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_spec().expand()[0]
        [record] = evaluate_scenarios([scenario])
        store.put(record)
        store.save_index()
        # Simulate an interrupted earlier run: record on disk, index lost.
        fresh = ResultStore(tmp_path / "store")
        fresh.index_path.unlink()
        assert fresh.record_digest_of(record["hash"]) == record_digest(record)

    def test_lost_index_is_healed_and_persisted_by_a_warm_resume(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path / "store")
        (tmp_path / "store" / "index.json").unlink()
        warm = run_campaign(spec, tmp_path / "store")
        assert warm.executed == 0
        healed = json.loads((tmp_path / "store" / "index.json").read_text())
        assert len(healed) == warm.total

    def test_missing_manifest_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError, match="no manifest"):
            ResultStore(tmp_path / "store").read_manifest("ghost")

    def test_read_only_construction_creates_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.list_campaigns() == []
        assert not (tmp_path / "store").exists()

    def test_stale_index_entry_does_not_fake_a_store_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_spec().expand()[0]
        [record] = evaluate_scenarios([scenario])
        store.put(record)
        store.save_index()
        # Prune the object but keep the index, as a partial copy would.
        store._object_path(record["hash"]).unlink()
        fresh = ResultStore(tmp_path / "store")
        assert not fresh.has(record["hash"])
        # A resumed run re-executes the scenario instead of skipping it.
        resumed = run_campaign(tiny_spec(), fresh)
        assert resumed.executed >= 1
        assert fresh.has(record["hash"])


class TestDeterminism:
    """The acceptance criteria: serial == sharded, resume hits the store."""

    def test_serial_and_sharded_manifests_byte_identical(self, tmp_path):
        spec = tiny_spec()
        serial = run_campaign(spec, tmp_path / "serial")
        sharded = run_campaign(spec, tmp_path / "sharded", workers=3)
        assert serial.manifest_digest == sharded.manifest_digest
        serial_bytes = (tmp_path / "serial" / "campaigns" / "tiny.json").read_bytes()
        sharded_bytes = (tmp_path / "sharded" / "campaigns" / "tiny.json").read_bytes()
        assert serial_bytes == sharded_bytes

    def test_logic_campaign_serial_vs_sharded(self, tmp_path):
        spec = tiny_logic_spec()
        serial = run_campaign(spec, tmp_path / "serial")
        sharded = run_campaign(spec, tmp_path / "sharded", workers=2)
        assert serial.manifest_digest == sharded.manifest_digest

    def test_resume_skips_completed_scenarios(self, tmp_path):
        spec = tiny_spec()
        cold = run_campaign(spec, tmp_path / "store")
        warm = run_campaign(spec, tmp_path / "store")
        assert cold.executed == cold.total and cold.skipped == 0
        assert warm.executed == 0 and warm.skipped == warm.total
        assert warm.store_hit_rate >= 0.95
        assert warm.manifest_digest == cold.manifest_digest

    def test_partial_store_resumes_only_the_rest(self, tmp_path):
        spec = tiny_spec()
        scenarios = spec.expand()
        store = ResultStore(tmp_path / "store")
        # Pre-populate half the scenarios, as an interrupted run would.
        for record in evaluate_scenarios(scenarios[: len(scenarios) // 2]):
            store.put(record)
        store.save_index()
        resumed = run_campaign(spec, store)
        assert resumed.skipped == len(scenarios) // 2
        assert resumed.executed == len(scenarios) - len(scenarios) // 2
        # And the result is indistinguishable from a cold one-shot run.
        cold = run_campaign(spec, tmp_path / "cold")
        assert resumed.manifest_digest == cold.manifest_digest

    def test_warm_e3_resume_hits_store_and_is_5x_faster(self, tmp_path):
        """The acceptance criterion on the built-in E3 hierarchy survey.

        A re-run against a warm store must answer >= 95% of scenarios from
        the store and finish >= 5x faster than the cold run (observed margin
        is >= 13x, so the bar tolerates noisy CI neighbours).
        """
        import time

        spec = builtin_spec("e3-hierarchy")
        store = ResultStore(tmp_path / "store")
        started = time.perf_counter()
        cold = run_campaign(spec, store)
        cold_wall = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_campaign(spec, store)
        warm_wall = time.perf_counter() - started

        assert warm.store_hit_rate >= 0.95
        assert warm.manifest_digest == cold.manifest_digest
        assert cold_wall / warm_wall >= 5.0, (
            f"warm resume only {cold_wall / warm_wall:.1f}x faster "
            f"(cold {cold_wall:.3f}s, warm {warm_wall:.3f}s)"
        )

    def test_engine_knob_does_not_change_results(self, tmp_path):
        compiled = CampaignSpec(
            name="knob",
            kind="execution",
            graphs=[GraphGrid.of("cycle", {"n": 5})],
            model_classes=["MB"],
            engines=["compiled"],
        )
        reference = CampaignSpec.from_dict(dict(compiled.to_dict(), engines=["reference"]))
        run_campaign(compiled, tmp_path / "store")
        run_campaign(reference, tmp_path / "store")
        store = ResultStore(tmp_path / "store")
        _, compiled_records = load_records(store, "knob")
        for record in compiled_records:
            twin = dict(record["scenario"], engine="reference")
            twin_record = store.get(Scenario.from_dict(twin).content_hash())
            assert twin_record["result"]["outputs"] == record["result"]["outputs"]


class TestAggregation:
    def test_execution_rollups_respect_expectations(self, tmp_path):
        spec = builtin_spec("smoke")
        run_campaign(spec, tmp_path / "store")
        stored_spec, records = load_records(ResultStore(tmp_path / "store"), "smoke")
        result = campaign_result(stored_spec, records)
        assert result.all_match
        assert {row.metric.split(" ")[0] for row in result.rows} == {
            "some-odd-neighbour",
            "neighbour-degree-sum",
        }

    def test_logic_expectations_are_honoured(self, tmp_path):
        spec = tiny_logic_spec()
        # Fact 1 genuinely holds here; expecting the opposite must fail rows.
        spec.expectations = {"ml-basic": False}
        run_campaign(spec, tmp_path / "store")
        stored_spec, records = load_records(ResultStore(tmp_path / "store"), spec.name)
        result = campaign_result(stored_spec, records)
        failing = {row.metric.split(" ")[0] for row in result.rows if not row.matches}
        assert failing == {"ml-basic"}

    def test_logic_rollups_report_fact1(self, tmp_path):
        spec = tiny_logic_spec()
        run_campaign(spec, tmp_path / "store")
        stored_spec, records = load_records(ResultStore(tmp_path / "store"), spec.name)
        result = campaign_result(stored_spec, records)
        assert result.all_match
        assert all("Fact 1" in row.paper for row in result.rows)

    def test_numbering_variation_across_seeds_is_compared(self, tmp_path):
        """Regression: on a deterministic family, scenarios that differ only
        in seed run the *same graph* under different random numberings, so
        they must share an invariance bucket -- port-echo varies there."""
        spec = CampaignSpec(
            name="seed-bucket",
            kind="execution",
            graphs=[GraphGrid.of("cycle", {"n": 4})],
            port_strategies=["random"],
            model_classes=["VV"],
            seeds=[0, 1],
            expectations={"port-echo": False},
        )
        run_campaign(spec, tmp_path / "store")
        stored_spec, records = load_records(ResultStore(tmp_path / "store"), spec.name)
        result = campaign_result(stored_spec, records)
        assert result.all_match, [row.measured for row in result.rows]

    def test_double_cover_of_deterministic_base_collapses_seeds(self):
        spec = CampaignSpec(
            name="dc",
            kind="execution",
            graphs=[GraphGrid.of("double-cover", {"base": "cycle", "base_n": 5})],
            port_strategies=["consistent"],
            model_classes=["SB"],
            seeds=[0, 1, 2],
        )
        assert len(spec.expand()) == 1  # deterministic lift of a deterministic base
        seeded = CampaignSpec.from_dict(
            dict(spec.to_dict(), graphs=[{"family": "lift", "params": {"base": "cycle", "base_n": 5, "k": 2}}])
        )
        assert len(seeded.expand()) == 3  # lift permutations genuinely consume the seed

    def test_pinned_seed_param_makes_a_family_deterministic(self, tmp_path):
        """Regression: {'seed': 5} pins the generator (build_graph ignores
        the scenario seed), so seed-axis collapse and invariance bucketing
        must treat the family as unseeded."""
        spec = CampaignSpec(
            name="pinned",
            kind="execution",
            graphs=[GraphGrid.of("random-tree", {"n": 7, "seed": 5})],
            port_strategies=["consistent", "random"],
            model_classes=["VV"],
            seeds=[0, 1],
            expectations={"port-echo": False},
        )
        scenarios = spec.expand()
        # consistent collapses to one seed; random keeps both -- and all
        # three scenarios share one graph point (the pinned tree).
        assert len(scenarios) == 3
        assert len({s.graph_point() for s in scenarios}) == 1
        run_campaign(spec, tmp_path / "store")
        stored_spec, records = load_records(ResultStore(tmp_path / "store"), spec.name)
        result = campaign_result(stored_spec, records)
        assert result.all_match, [row.measured for row in result.rows]

    def test_no_resume_replaces_stored_records(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "store")
        run_campaign(spec, store)
        scenario_hash = spec.expand()[0].content_hash()
        # Tamper with a stored record, as a changed algorithm would.
        stale = store.get(scenario_hash)
        stale["result"]["rounds"] = 999
        store.put(stale, overwrite=True)
        refreshed = run_campaign(spec, store, resume=False)
        assert refreshed.executed == refreshed.total
        assert store.get(scenario_hash)["result"]["rounds"] != 999

    def test_violated_expectation_fails_the_row(self, tmp_path):
        spec = tiny_spec()
        # some-odd-neighbour genuinely is numbering-invariant; expect the opposite.
        spec.expectations = {"some-odd-neighbour": False}
        run_campaign(spec, tmp_path / "store")
        stored_spec, records = load_records(ResultStore(tmp_path / "store"), spec.name)
        result = campaign_result(stored_spec, records)
        failing = [row for row in result.rows if not row.matches]
        assert [row.metric.split(" ")[0] for row in failing] == ["some-odd-neighbour"]


class TestCli:
    def test_run_resume_report_pipeline(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert campaign_main(["--store", store, "run", "smoke", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 already stored" in out and "ALL EXPERIMENTS MATCH" in out
        assert campaign_main(["--store", store, "resume", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "12 already stored" in out
        assert campaign_main(["--store", store, "report", "smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_match"] is True
        assert payload["experiment_id"] == "campaign:smoke"

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "custom.json"
        spec_path.write_text(tiny_spec("custom").to_json())
        store = str(tmp_path / "store")
        assert campaign_main(["--store", store, "run", str(spec_path)]) == 0
        assert "custom" in ResultStore(store).list_campaigns()

    def test_list_shows_builtins_and_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        campaign_main(["--store", store, "run", "smoke", "--json"])
        capsys.readouterr()
        assert campaign_main(["--store", store, "list"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_CAMPAIGNS:
            assert name in out
        assert "digest" in out

    def test_resume_prefers_the_stored_manifest_over_a_builtin(self, tmp_path, capsys):
        # Run a customized spec that reuses a built-in name...
        custom = tiny_spec("smoke")
        store = str(tmp_path / "store")
        run_campaign(custom, store)
        capsys.readouterr()
        # ...then resume by name: the stored campaign must win, not the built-in.
        assert campaign_main(["--store", store, "resume", "smoke"]) == 0
        out = capsys.readouterr().out
        assert f"{custom.expand().__len__()} scenarios" in out
        assert "already stored" in out and "0 to run" in out

    def test_interrupted_serial_run_keeps_completed_chunks(self, tmp_path, monkeypatch):
        from repro.campaign import executor

        spec = tiny_spec()
        scenarios = spec.expand()
        monkeypatch.setattr(executor, "SERIAL_CHUNK", 4)
        calls = {"n": 0}
        real = executor.evaluate_scenarios

        def failing_second_chunk(batch):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(batch)

        monkeypatch.setattr(executor, "evaluate_scenarios", failing_second_chunk)
        store = ResultStore(tmp_path / "store")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, store)
        # The first chunk's records survived the interrupt...
        assert sum(store.has(s.content_hash()) for s in scenarios) == 4
        # ...and a resumed run only executes the remainder.
        monkeypatch.setattr(executor, "evaluate_scenarios", real)
        resumed = run_campaign(spec, store)
        assert resumed.skipped == 4
        assert resumed.executed == len(scenarios) - 4

    def test_unknown_campaign_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown campaign"):
            campaign_main(["--store", str(tmp_path), "run", "nope"])
        with pytest.raises(SystemExit, match="no manifest"):
            campaign_main(["--store", str(tmp_path), "report", "nope"])


class TestCorrespondenceCampaigns:
    """The Theorem 2 round-trip scenario kind."""

    @staticmethod
    def tiny_correspondence_spec(name: str = "tiny-corr") -> CampaignSpec:
        return CampaignSpec(
            name=name,
            kind="correspondence",
            graphs=[GraphGrid.of("cycle", {"n": 4}), GraphGrid.of("star", {"leaves": 3})],
            port_strategies=["consistent", "random"],
            model_classes=["SB", "MV"],
            machines=["parity"],
            seeds=[0, 1],
        )

    def test_spec_round_trips_with_the_machines_axis(self):
        spec = self.tiny_correspondence_spec()
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.machines == ["parity"]

    def test_scenarios_carry_the_machine_workload(self):
        scenarios = self.tiny_correspondence_spec().expand()
        assert scenarios
        assert all(s.kind == "correspondence" for s in scenarios)
        assert all(s.machine == "parity" for s in scenarios)
        assert all(s.algorithm is None and s.formula_set is None for s in scenarios)
        # Scenario round trip keeps the machine field.
        for scenario in scenarios[:3]:
            assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_non_correspondence_hashes_are_unchanged(self):
        """Execution/logic records must keep their store addresses: the
        ``machine`` key is only serialized when set."""
        scenario = tiny_spec().expand()[0]
        assert "machine" not in scenario.to_dict()

    def test_machines_axis_rejected_for_other_kinds(self):
        with pytest.raises(ValueError, match="machines"):
            CampaignSpec(
                name="bad",
                kind="execution",
                graphs=[GraphGrid.of("cycle", {"n": 4})],
                model_classes=["SB"],
                machines=["parity"],
            )

    def test_unknown_machine_fails_at_expansion(self):
        spec = self.tiny_correspondence_spec()
        spec.machines = ["no-such-machine"]
        with pytest.raises(ValueError, match="unknown machine"):
            spec.expand()

    def test_default_machine_fills_an_empty_axis(self):
        spec = self.tiny_correspondence_spec()
        spec.machines = []
        assert all(s.machine == "parity" for s in spec.expand())

    def test_campaign_runs_and_rolls_up_all_agree(self, tmp_path):
        spec = self.tiny_correspondence_spec()
        run = run_campaign(spec, tmp_path / "store")
        assert run.executed == run.total
        stored_spec, records = load_records(ResultStore(tmp_path / "store"), spec.name)
        assert all(record["result"]["agree"] for record in records)
        assert all(record["result"]["oracle_checked"] for record in records)
        assert all(
            record["result"]["dag_size"] <= record["result"]["tree_size"]
            for record in records
        )
        result = campaign_result(stored_spec, records)
        assert result.all_match
        assert {row.metric for row in result.rows} == {"parity on SB", "parity on MV"}
        assert all("Theorem 2" in row.paper for row in result.rows)

    def test_sharded_manifest_matches_serial(self, tmp_path):
        spec = self.tiny_correspondence_spec()
        serial = run_campaign(spec, tmp_path / "serial")
        sharded = run_campaign(spec, tmp_path / "sharded", workers=2)
        assert serial.manifest_digest == sharded.manifest_digest

    def test_resume_skips_stored_roundtrips(self, tmp_path):
        spec = self.tiny_correspondence_spec()
        run_campaign(spec, tmp_path / "store")
        resumed = run_campaign(spec, tmp_path / "store")
        assert resumed.executed == 0
        assert resumed.store_hit_rate == 1.0

    def test_builtin_e2_correspondence_spec_expands(self):
        spec = builtin_spec("e2-correspondence")
        scenarios = spec.expand()
        assert len(scenarios) > 50
        # The non-trivial topologies of the satellite requirement are axes.
        families = {s.family for s in scenarios}
        assert {"circulant", "torus", "lift"} <= families
        assert {s.model_class for s in scenarios} == {"SB", "MB", "VB", "MV", "SV", "VV"}


class TestSweepEngineCampaigns:
    """The superposed sweep engine as a first-class campaign engine value."""

    def test_sweep_engine_matches_compiled_results(self, tmp_path):
        compiled = CampaignSpec(
            name="knob-sweep",
            kind="execution",
            graphs=[GraphGrid.of("cycle", {"n": 5}), GraphGrid.of("star", {"leaves": 3})],
            port_strategies=["consistent", "random"],
            model_classes=["MB", "MV"],
            engines=["compiled"],
        )
        sweep = CampaignSpec.from_dict(dict(compiled.to_dict(), engines=["sweep"]))
        run_campaign(compiled, tmp_path / "store")
        run_campaign(sweep, tmp_path / "store")
        store = ResultStore(tmp_path / "store")
        _, compiled_records = load_records(store, "knob-sweep")
        for record in compiled_records:
            twin = dict(record["scenario"], engine="sweep")
            twin_record = store.get(Scenario.from_dict(twin).content_hash())
            assert twin_record["result"]["outputs"] == record["result"]["outputs"]
            assert twin_record["result"]["rounds"] == record["result"]["rounds"]

    def test_sweep_engine_rejected_for_logic_campaigns(self):
        spec = CampaignSpec(
            name="bad",
            kind="logic",
            graphs=[GraphGrid.of("cycle", {"n": 4})],
            model_classes=["SB"],
            formula_sets=["ml-basic"],
            engines=["sweep"],
        )
        with pytest.raises(ValueError, match="unknown engine"):
            spec.expand()

    def test_builtin_execution_campaigns_run_superposed(self):
        for name in ("e3-hierarchy", "e2-correspondence", "smoke"):
            assert builtin_spec(name).engines == ["sweep"], name

    def test_sweep_sharded_manifest_matches_serial(self, tmp_path):
        spec = tiny_spec("tiny-sweep")
        spec.engines = ["sweep"]
        serial = run_campaign(spec, tmp_path / "serial")
        sharded = run_campaign(spec, tmp_path / "sharded", workers=3)
        assert serial.manifest_digest == sharded.manifest_digest


class TestIndexFlushAndRecovery:
    """index.json is acceleration only: the object files carry the resume."""

    def test_put_many_flushes_the_index_once(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        scenarios = tiny_spec().expand()[:4]
        records = evaluate_scenarios(scenarios)
        flushes = {"n": 0}
        real = ResultStore.save_index

        def counting_save(self):
            flushes["n"] += 1
            return real(self)

        monkeypatch.setattr(ResultStore, "save_index", counting_save)
        assert store.put_many(records) == len(records)
        assert flushes["n"] == 1
        assert json.loads(store.index_path.read_text()).keys() == {
            record["hash"] for record in records
        }

    def test_kill_mid_chunk_resumes_from_object_files_alone(self, tmp_path):
        """A run killed mid-chunk leaves object files but no flushed index;
        the objects alone must carry the resume and re-derive the index."""
        spec = tiny_spec("killed")
        scenarios = spec.expand()
        store = ResultStore(tmp_path / "store")
        for record in evaluate_scenarios(scenarios[:3]):
            store.put(record)  # no save_index(): the process died mid-chunk
        assert not store.index_path.exists()
        fresh = ResultStore(tmp_path / "store")
        resumed = run_campaign(spec, fresh)
        assert resumed.skipped == 3
        assert resumed.executed == len(scenarios) - 3
        cold = run_campaign(spec.__class__.from_dict(spec.to_dict()), tmp_path / "cold")
        assert resumed.manifest_digest == cold.manifest_digest
        healed = json.loads(fresh.index_path.read_text())
        assert len(healed) == len(scenarios)

    def test_sharded_run_flushes_index_per_shard(self, tmp_path):
        spec = tiny_spec("sharded-flush")
        run_campaign(spec, tmp_path / "store", workers=2)
        index = json.loads((tmp_path / "store" / "index.json").read_text())
        assert len(index) == len(spec.expand())


class TestWorkerMemo:
    def test_graph_memo_is_reused_across_chunks(self, monkeypatch):
        from repro.campaign import executor, registry

        executor.clear_worker_memo()
        builds = {"n": 0}
        real = registry.build_graph

        def counting_build(family, params, seed=None):
            builds["n"] += 1
            return real(family, params, seed=seed)

        monkeypatch.setattr(executor.registry, "build_graph", counting_build)
        try:
            scenarios = tiny_spec("memo").expand()
            distinct_points = {s.graph_point() for s in scenarios}
            # Two chunks over the same scenarios: the second builds nothing.
            executor.evaluate_scenarios(scenarios[: len(scenarios) // 2])
            executor.evaluate_scenarios(scenarios[len(scenarios) // 2 :])
            first = builds["n"]
            assert first <= len(distinct_points)
            executor.evaluate_scenarios(scenarios)
            assert builds["n"] == first
        finally:
            executor.clear_worker_memo()

    def test_algorithm_memo_keeps_warm_sweep_tables_across_chunks(self):
        from repro.campaign import executor

        executor.clear_worker_memo()
        try:
            spec = tiny_spec("warm-tables")
            spec.engines = ["sweep"]
            scenarios = spec.expand()
            executor.evaluate_scenarios(scenarios[: len(scenarios) // 2])
            wrapper = executor._worker_algorithm("some-odd-neighbour")
            assert wrapper.memoizes_transitions
            tables = wrapper.sweep_tables
            assert tables is not None and tables.configs
            executor.evaluate_scenarios(scenarios[len(scenarios) // 2 :])
            # Same wrapper, same (warm) tables on the later chunk.
            assert executor._worker_algorithm("some-odd-neighbour") is wrapper
            assert wrapper.sweep_tables is tables
        finally:
            executor.clear_worker_memo()

    def test_replacing_a_registration_invalidates_the_memo(self):
        from repro.campaign import executor, registry

        scenario = tiny_spec("memo-inval").expand()[0]
        graph, _ = executor._materialize(scenario)
        assert executor._WORKER_GRAPHS  # memoized
        # Re-registering any entry (even an unrelated family) must drop the
        # memo so the replacement is observed by the next scenario.
        registry.register_graph_family(registry.GRAPH_FAMILIES["cycle"])
        assert not executor._WORKER_GRAPHS
        rebuilt, _ = executor._materialize(scenario)
        assert rebuilt == graph
