"""Unit tests for the formula parser."""

from __future__ import annotations

import pytest

from repro.logic.parser import FormulaParseError, parse_formula
from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
)


class TestAtoms:
    def test_proposition(self):
        assert parse_formula("q1") == Prop("q1")

    def test_constants(self):
        assert parse_formula("true") == Top()
        assert parse_formula("false") == Bottom()

    def test_parentheses(self):
        assert parse_formula("((q))") == Prop("q")


class TestConnectives:
    def test_negation(self):
        assert parse_formula("~p") == Not(Prop("p"))
        assert parse_formula("~~p") == Not(Not(Prop("p")))

    def test_conjunction_is_left_associative(self):
        assert parse_formula("a & b & c") == And(And(Prop("a"), Prop("b")), Prop("c"))

    def test_precedence_and_over_or(self):
        assert parse_formula("a | b & c") == Or(Prop("a"), And(Prop("b"), Prop("c")))

    def test_implication_is_right_associative(self):
        assert parse_formula("a -> b -> c") == Implies(Prop("a"), Implies(Prop("b"), Prop("c")))


class TestModalities:
    def test_plain_diamond_and_box(self):
        assert parse_formula("<> p") == Diamond(Prop("p"))
        assert parse_formula("[] p") == Box(Prop("p"))

    def test_indexed_diamond(self):
        assert parse_formula("<2,1> p") == Diamond(Prop("p"), index=(2, 1))
        assert parse_formula("<*,1> p") == Diamond(Prop("p"), index=("*", 1))

    def test_graded_diamond(self):
        assert parse_formula("<>>=2 p") == GradedDiamond(Prop("p"), grade=2)
        assert parse_formula("<*,*>>=3 q") == GradedDiamond(Prop("q"), grade=3, index=("*", "*"))

    def test_modal_scope_is_tight(self):
        assert parse_formula("<>p & q") == And(Diamond(Prop("p")), Prop("q"))


class TestRoundTrips:
    @pytest.mark.parametrize(
        "formula",
        [
            Prop("deg1"),
            Not(Prop("q")),
            And(Prop("a"), Or(Prop("b"), Not(Prop("c")))),
            Diamond(Prop("p")),
            Diamond(And(Prop("p"), Prop("q")), index=(1, 2)),
            GradedDiamond(Diamond(Prop("p"), index=("*", 1)), grade=2, index=("*", 2)),
            Box(Not(Prop("p")), index=(3, "*")),
            Implies(Prop("a"), Diamond(Prop("b"))),
        ],
        ids=lambda f: str(f),
    )
    def test_str_then_parse_is_identity(self, formula):
        assert parse_formula(str(formula)) == formula


class TestErrors:
    @pytest.mark.parametrize(
        "text", ["", "p &", "(p", "p )", "<>>=x p", "p q", "& p", "p # q"]
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(FormulaParseError):
            parse_formula(text)
