"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.graphs.generators import random_bounded_degree_graph
from repro.graphs.graph import Graph
from repro.graphs.ports import consistent_port_numbering, random_port_numbering
from repro.logic.bisimulation import bisimilarity_partition, bounded_bisimilarity_partition
from repro.logic.parser import parse_formula
from repro.logic.semantics import extension
from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
    modal_depth,
)
from repro.machines.models import ReceiveMode
from repro.machines.multiset import FrozenMultiset
from repro.modal.encoding import KripkeVariant, kripke_encoding
from repro.utils.ordering import canonical_key

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

edge_lists = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda pair: pair[0] != pair[1]),
    max_size=14,
)


@st.composite
def graphs(draw) -> Graph:
    """Random simple graphs on at most 8 nodes."""
    edges = draw(edge_lists)
    nodes = draw(st.sets(st.integers(0, 7), max_size=8))
    return Graph(nodes=nodes, edges=edges)


@st.composite
def formulas(draw, max_depth: int = 3):
    """Random unimodal (possibly graded) formulas over degree propositions."""
    if max_depth == 0:
        return draw(
            st.sampled_from([Prop("deg1"), Prop("deg2"), Prop("deg3"), Top(), Bottom()])
        )
    constructor = draw(st.integers(0, 6))
    if constructor == 0:
        return draw(formulas(max_depth=0))
    if constructor == 1:
        return Not(draw(formulas(max_depth=max_depth - 1)))
    if constructor == 2:
        return And(draw(formulas(max_depth=max_depth - 1)), draw(formulas(max_depth=max_depth - 1)))
    if constructor == 3:
        return Or(draw(formulas(max_depth=max_depth - 1)), draw(formulas(max_depth=max_depth - 1)))
    if constructor == 4:
        return Diamond(draw(formulas(max_depth=max_depth - 1)), index=("*", "*"))
    if constructor == 5:
        return Box(draw(formulas(max_depth=max_depth - 1)), index=("*", "*"))
    return GradedDiamond(
        draw(formulas(max_depth=max_depth - 1)), grade=draw(st.integers(0, 3)), index=("*", "*")
    )


messages = st.lists(st.sampled_from(["a", "b", "c", 1, 2]), max_size=6)


# --------------------------------------------------------------------------- #
# Graph and port-numbering invariants
# --------------------------------------------------------------------------- #


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(graph):
    assert sum(graph.degree(node) for node in graph.nodes) == 2 * graph.number_of_edges


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_connected_components_partition_the_nodes(graph):
    components = graph.connected_components()
    seen = [node for component in components for node in component]
    assert sorted(seen, key=repr) == sorted(graph.nodes, key=repr)


@given(graphs(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_port_numberings_are_bijections_inducing_adjacency(graph, seed):
    numbering = random_port_numbering(graph, random.Random(seed))
    mapping = numbering.as_mapping()
    assert set(mapping.keys()) == set(mapping.values()) == set(numbering.ports())
    induced = {(u, v) for (u, _), (v, _) in mapping.items()}
    adjacency = {(u, v) for u, v in graph.edges} | {(v, u) for u, v in graph.edges}
    assert induced == adjacency


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_canonical_numbering_is_an_involution(graph):
    numbering = consistent_port_numbering(graph)
    for port in numbering.ports():
        assert numbering(numbering(port)) == port


# --------------------------------------------------------------------------- #
# Multiset and receive-mode invariants
# --------------------------------------------------------------------------- #


@given(messages)
@settings(max_examples=80, deadline=None)
def test_multiset_length_and_counts(elements):
    multiset = FrozenMultiset(elements)
    assert len(multiset) == len(elements)
    assert sum(multiset.counts().values()) == len(elements)
    for element in elements:
        assert multiset.count(element) == elements.count(element)


@given(messages, st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_projection_tower_forgets_information_monotonically(elements, rnd):
    """set(multiset(v)) == set(v) and shuffling changes neither (Figure 3)."""
    shuffled = list(elements)
    rnd.shuffle(shuffled)
    assert ReceiveMode.MULTISET.project(elements) == ReceiveMode.MULTISET.project(shuffled)
    assert ReceiveMode.SET.project(elements) == ReceiveMode.SET.project(shuffled)
    assert ReceiveMode.MULTISET.project(elements).to_set() == ReceiveMode.SET.project(elements)


@given(messages)
@settings(max_examples=60, deadline=None)
def test_canonical_key_is_consistent_with_equality(elements):
    assert canonical_key(FrozenMultiset(elements)) == canonical_key(
        FrozenMultiset(list(reversed(elements)))
    )
    assert canonical_key(tuple(elements)) == canonical_key(tuple(elements))


# --------------------------------------------------------------------------- #
# Logic invariants
# --------------------------------------------------------------------------- #


@given(formulas(), graphs())
@settings(max_examples=50, deadline=None)
def test_negation_complements_extension(formula, graph):
    if not graph.nodes:
        return
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    assert extension(encoding, Not(formula)) == encoding.worlds - extension(encoding, formula)


@given(formulas(), graphs())
@settings(max_examples=50, deadline=None)
def test_box_diamond_duality(formula, graph):
    if not graph.nodes:
        return
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    index = ("*", "*")
    assert extension(encoding, Box(formula, index=index)) == extension(
        encoding, Not(Diamond(Not(formula), index=index))
    )


@given(formulas(), formulas())
@settings(max_examples=80, deadline=None)
def test_modal_depth_algebra(first, second):
    assert modal_depth(And(first, second)) == max(modal_depth(first), modal_depth(second))
    assert modal_depth(Diamond(first, index=("*", "*"))) == modal_depth(first) + 1
    assert modal_depth(Not(first)) == modal_depth(first)
    assert modal_depth(Implies(first, second)) >= modal_depth(first)


@given(formulas())
@settings(max_examples=80, deadline=None)
def test_parser_round_trip(formula):
    assert parse_formula(str(formula)) == formula


# --------------------------------------------------------------------------- #
# Bisimulation invariants (Fact 1 as a property)
# --------------------------------------------------------------------------- #


@given(st.integers(0, 10_000), formulas(max_depth=2))
@settings(max_examples=40, deadline=None)
def test_bisimilar_nodes_agree_on_formulas(seed, formula):
    graph = random_bounded_degree_graph(7, 3, seed=seed)
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    graded = bisimilarity_partition(encoding, graded=True)
    truth = extension(encoding, formula)
    for v in encoding.worlds:
        for w in encoding.worlds:
            if graded[v] == graded[w]:
                assert (v in truth) == (w in truth)


@given(st.integers(0, 10_000), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_bounded_bisimilarity_is_coarser_than_unbounded(seed, rounds):
    graph = random_bounded_degree_graph(7, 3, seed=seed)
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    bounded = bounded_bisimilarity_partition(encoding, rounds)
    full = bisimilarity_partition(encoding)
    # If two worlds are fully bisimilar they are also k-round bisimilar.
    for v in encoding.worlds:
        for w in encoding.worlds:
            if full[v] == full[w]:
                assert bounded[v] == bounded[w]


# --------------------------------------------------------------------------- #
# Execution invariants
# --------------------------------------------------------------------------- #


@given(st.integers(0, 10_000), st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_multiset_algorithms_are_port_numbering_invariant(graph_seed, numbering_seed):
    """An MB algorithm's output never depends on the adversary's numbering."""
    from repro.algorithms.parity import OddOddNeighboursAlgorithm
    from repro.execution.runner import run

    graph = random_bounded_degree_graph(7, 3, seed=graph_seed)
    numbering = random_port_numbering(graph, random.Random(numbering_seed))
    baseline = run(OddOddNeighboursAlgorithm(), graph).outputs
    assert run(OddOddNeighboursAlgorithm(), graph, numbering).outputs == baseline


@given(st.integers(0, 10_000), st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_theorem4_simulation_is_exact_on_random_graphs(graph_seed, numbering_seed):
    from repro.algorithms.basic import GatherDegreesAlgorithm
    from repro.core.simulations import simulate_multiset_with_set
    from repro.execution.runner import run

    graph = random_bounded_degree_graph(6, 3, seed=graph_seed)
    numbering = random_port_numbering(graph, random.Random(numbering_seed))
    inner = GatherDegreesAlgorithm()
    simulation = simulate_multiset_with_set(inner, graph.max_degree())
    assert run(simulation, graph, numbering).outputs == run(inner, graph, numbering).outputs
