"""Unit tests for the canonical message ordering."""

from __future__ import annotations

import pytest

from repro.machines.multiset import FrozenMultiset
from repro.utils.ordering import canonical_key


class TestTotality:
    def test_heterogeneous_values_are_comparable(self):
        values = [1, "a", (1, 2), frozenset({3}), None, ("x", (2,)), FrozenMultiset([1, 1])]
        keys = [canonical_key(value) for value in values]
        assert sorted(keys) is not None  # no TypeError

    def test_equal_values_have_equal_keys(self):
        assert canonical_key((1, ("a", 2))) == canonical_key((1, ("a", 2)))
        assert canonical_key(frozenset({1, 2})) == canonical_key(frozenset({2, 1}))
        assert canonical_key(FrozenMultiset("aab")) == canonical_key(FrozenMultiset("baa"))

    def test_distinct_simple_values_have_distinct_keys(self):
        assert canonical_key(1) != canonical_key(2)
        assert canonical_key("1") != canonical_key(1)
        assert canonical_key((1,)) != canonical_key([1])

    def test_multiplicities_are_reflected(self):
        assert canonical_key(FrozenMultiset("ab")) != canonical_key(FrozenMultiset("aab"))

    def test_nested_dictionaries(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})


class TestOrderingIsStable:
    def test_sorting_is_deterministic(self):
        values = ["z", 3, (2, "a"), frozenset({1}), 1, "a"]
        first = sorted(values, key=canonical_key)
        second = sorted(reversed(values), key=canonical_key)
        assert first == second

    def test_tuples_order_lexicographically(self):
        assert canonical_key((1, 2)) < canonical_key((1, 3))
        assert canonical_key((1,)) < canonical_key((1, 0))
