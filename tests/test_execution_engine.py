"""Differential tests: the compiled engine vs the seed reference runner.

The compiled active-set engine (:mod:`repro.execution.engine`) must be
node-for-node identical to the seed loop (:mod:`repro.execution.legacy`) on
every model class, every topology and every port numbering.  These tests
sweep all seven classes (vector/multiset/set receive x port-addressed/
broadcast send, plus the consistent-numbering convention of VVc) over random
graphs and numberings with state-accumulating probe algorithms whose outputs
fingerprint the entire communication history.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.basic import RoundCounterAlgorithm
from repro.execution.engine import (
    CompiledInstance,
    ExecutionError,
    compile_instance,
    run_iter,
    run_many,
)
from repro.execution.legacy import run_reference
from repro.execution.runner import run
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.ports import consistent_port_numbering, random_port_numbering
from repro.machines.algorithm import (
    BroadcastAlgorithm,
    MultisetAlgorithm,
    MultisetBroadcastAlgorithm,
    Output,
    SetAlgorithm,
    SetBroadcastAlgorithm,
    VectorAlgorithm,
)
from repro.machines.fastpath import FastPathAlgorithm, fast_path

MODEL_BASES = {
    "VV": VectorAlgorithm,
    "MV": MultisetAlgorithm,
    "SV": SetAlgorithm,
    "VB": BroadcastAlgorithm,
    "MB": MultisetBroadcastAlgorithm,
    "SB": SetBroadcastAlgorithm,
}

#: The seven problem classes: the six algorithm models under arbitrary
#: numberings, plus Vector under the consistent-numbering convention (VVc).
SEVEN_CLASSES = [
    ("VVc", VectorAlgorithm, True),
    ("VV", VectorAlgorithm, False),
    ("MV", MultisetAlgorithm, False),
    ("SV", SetAlgorithm, False),
    ("VB", BroadcastAlgorithm, False),
    ("MB", MultisetBroadcastAlgorithm, False),
    ("SB", SetBroadcastAlgorithm, False),
]


def make_probe(base, rounds=3):
    """A probe of the given model: accumulates every received view for
    ``rounds`` rounds, then outputs (degree, full history).  Any delivery or
    projection discrepancy between the engines changes the output."""

    class Probe(base):
        def initial_state(self, degree):
            return (0, degree, ())

        def send(self, state, port):
            return ("p", state[0], port, state[1])

        def broadcast(self, state):
            return ("b", state[0], state[1])

        def transition(self, state, received):
            t, degree, acc = state
            acc = acc + (received,)
            if t + 1 >= rounds:
                return Output((degree, acc))
            return (t + 1, degree, acc)

    Probe.__name__ = f"Probe{base.__name__}"
    return Probe()


def make_staggered_probe(base):
    """Nodes halt at different times (after ``degree`` rounds), exercising
    the active-set bookkeeping and the halted-nodes-send-m0 rule."""

    class Staggered(base):
        def initial_state(self, degree):
            if degree == 0:
                return Output((0, ()))
            return (0, degree, ())

        def send(self, state, port):
            return ("p", state[0], port)

        def broadcast(self, state):
            return ("b", state[0])

        def transition(self, state, received):
            t, degree, acc = state
            acc = acc + (received,)
            if t + 1 >= degree:
                return Output((degree, acc))
            return (t + 1, degree, acc)

    Staggered.__name__ = f"Staggered{base.__name__}"
    return Staggered()


def assert_identical(algorithm, graph, numbering, **kwargs):
    engine = run(algorithm, graph, numbering, **kwargs)
    reference = run_reference(algorithm, graph, numbering, **kwargs)
    assert engine.outputs == reference.outputs
    assert engine.rounds == reference.rounds
    assert engine.halted == reference.halted
    assert engine.states == reference.states


class TestEngineMatchesReferenceAcrossModels:
    @pytest.mark.parametrize("label,base,consistent", SEVEN_CLASSES, ids=[c[0] for c in SEVEN_CLASSES])
    def test_probe_on_random_graphs(self, label, base, consistent):
        rng = random.Random(2012)
        graphs = [
            random_bounded_degree_graph(12, 3, seed=7),
            random_regular_graph(3, 10, seed=3),
            random_bounded_degree_graph(9, 4, seed=11),
            star_graph(4),
            path_graph(5),
        ]
        algorithm = make_probe(base, rounds=3)
        for graph in graphs:
            numberings = [consistent_port_numbering(graph)]
            numberings.append(random_port_numbering(graph, rng=rng, consistent=True))
            if not consistent:
                numberings.append(random_port_numbering(graph, rng=rng))
            for numbering in numberings:
                assert_identical(algorithm, graph, numbering)

    @pytest.mark.parametrize("label,base,consistent", SEVEN_CLASSES, ids=[c[0] for c in SEVEN_CLASSES])
    def test_staggered_halting(self, label, base, consistent):
        rng = random.Random(42)
        graph = random_bounded_degree_graph(14, 4, seed=5)
        algorithm = make_staggered_probe(base)
        numbering = random_port_numbering(graph, rng=rng, consistent=consistent)
        assert_identical(algorithm, graph, numbering)

    def test_isolated_nodes_and_string_labels(self):
        graph = Graph(nodes=["a", "b", "lonely"], edges=[("a", "b")])
        for base in MODEL_BASES.values():
            assert_identical(make_staggered_probe(base), graph, None)

    def test_traces_identical(self):
        graph = cycle_graph(5)
        algorithm = make_probe(MultisetAlgorithm, rounds=4)
        numbering = random_port_numbering(graph, rng=random.Random(8))
        engine = run(algorithm, graph, numbering, record_trace=True)
        reference = run_reference(algorithm, graph, numbering, record_trace=True)
        assert engine.trace is not None and reference.trace is not None
        assert engine.trace.state_history == reference.trace.state_history
        assert engine.trace.received_messages == reference.trace.received_messages


class ForeverBroadcast(MultisetBroadcastAlgorithm):
    """Never halts: counts rounds forever."""

    def initial_state(self, degree):
        return 0

    def broadcast(self, state):
        return "m"

    def transition(self, state, received):
        return state + 1


class LeavesHaltCentreSpins(MultisetBroadcastAlgorithm):
    """Degree-1 nodes halt immediately; every other node runs forever."""

    def initial_state(self, degree):
        return Output("leaf") if degree == 1 else 0

    def broadcast(self, state):
        return "alive"

    def transition(self, state, received):
        return state + 1


class TestNonHaltingPath:
    def test_states_exposed_when_budget_exhausted(self):
        result = run(ForeverBroadcast(), cycle_graph(3), max_rounds=5, require_halt=False)
        assert not result.halted
        assert result.rounds == 5
        assert result.outputs == {}
        assert result.states == {0: 5, 1: 5, 2: 5}

    def test_partial_outputs_of_halted_nodes(self):
        result = run(
            LeavesHaltCentreSpins(), star_graph(3), max_rounds=4, require_halt=False
        )
        assert not result.halted
        assert result.outputs == {1: "leaf", 2: "leaf", 3: "leaf"}
        assert result.states[0] == 4
        assert result.states[1] == Output("leaf")

    def test_reference_runner_agrees_on_non_halting_results(self):
        for algorithm in (ForeverBroadcast(), LeavesHaltCentreSpins()):
            assert_identical(
                algorithm, star_graph(3), None, max_rounds=3, require_halt=False
            )

    def test_halting_result_keeps_full_outputs_and_states(self):
        result = run(RoundCounterAlgorithm(2), cycle_graph(3))
        assert result.halted
        assert set(result.outputs.values()) == {2}
        assert result.states == {node: Output(2) for node in cycle_graph(3).nodes}


class TestCompiledInstance:
    def test_rejects_foreign_numbering(self):
        with pytest.raises(ValueError):
            CompiledInstance(path_graph(3), consistent_port_numbering(path_graph(4)))

    def test_compile_instance_normalizes(self):
        graph = cycle_graph(4)
        numbering = consistent_port_numbering(graph)
        compiled = CompiledInstance(graph, numbering)
        assert compile_instance(compiled) is compiled
        # Graph is a value object: the default-instance cache may resolve an
        # equal graph built earlier, so assert equality rather than identity.
        assert compile_instance(graph).graph == graph
        assert compile_instance((graph, numbering)).numbering is numbering

    def test_topology_shared_across_numberings_of_one_graph(self):
        graph = random_regular_graph(3, 8, seed=1)
        first = CompiledInstance(graph, random_port_numbering(graph, rng=random.Random(1)))
        second = CompiledInstance(graph, random_port_numbering(graph, rng=random.Random(2)))
        assert first.topology is second.topology

    def test_reusing_a_compiled_instance_is_deterministic(self):
        graph = random_regular_graph(3, 8, seed=2)
        compiled = CompiledInstance(graph)
        algorithm = make_probe(SetAlgorithm, rounds=2)
        first = run_many(algorithm, [compiled])[0]
        second = run_many(algorithm, [compiled])[0]
        assert first.outputs == second.outputs


class TestRunMany:
    def _instances(self):
        rng = random.Random(99)
        instances = []
        for seed in (1, 2, 3):
            graph = random_bounded_degree_graph(10, 3, seed=seed)
            instances.append(graph)
            instances.append((graph, random_port_numbering(graph, rng=rng)))
        return instances

    def test_sequential_batch_matches_single_runs(self):
        algorithm = make_probe(MultisetBroadcastAlgorithm, rounds=3)
        instances = self._instances()
        batch = run_many(algorithm, instances)
        for instance, result in zip(instances, batch):
            compiled = compile_instance(instance)
            single = run(algorithm, compiled.graph, compiled.numbering)
            assert result.outputs == single.outputs
            assert result.rounds == single.rounds

    def test_reference_engine_matches_compiled_engine(self):
        algorithm = make_probe(VectorAlgorithm, rounds=2)
        instances = self._instances()
        compiled = run_many(algorithm, instances)
        reference = run_many(algorithm, instances, engine="reference")
        for a, b in zip(compiled, reference):
            assert a.outputs == b.outputs and a.rounds == b.rounds

    def test_parallel_workers_match_sequential(self):
        algorithm = RoundCounterAlgorithm(3)  # module-level, picklable
        instances = [random_regular_graph(3, 10, seed=s) for s in (1, 2, 3, 4)]
        sequential = run_many(algorithm, instances)
        parallel = run_many(algorithm, instances, workers=2)
        assert [r.outputs for r in parallel] == [r.outputs for r in sequential]
        assert [r.rounds for r in parallel] == [r.rounds for r in sequential]

    def test_memoized_batch_matches_unmemoized(self):
        # Across all six algorithm models, transition/send/projection
        # memoization must be unobservable for deterministic algorithms.
        instances = self._instances()
        for base in MODEL_BASES.values():
            for algorithm in (make_probe(base, rounds=3), make_staggered_probe(base)):
                plain = run_many(algorithm, instances)
                memoized = run_many(algorithm, instances, memoize_transitions=True)
                assert [r.outputs for r in memoized] == [r.outputs for r in plain]
                assert [r.rounds for r in memoized] == [r.rounds for r in plain]

    def test_require_halt_raises_like_sequential(self):
        with pytest.raises(ExecutionError):
            run_many(ForeverBroadcast(), [cycle_graph(3)], max_rounds=4)

    def test_require_halt_false_reports_per_instance(self):
        results = run_many(
            ForeverBroadcast(),
            [cycle_graph(3), cycle_graph(4)],
            max_rounds=2,
            require_halt=False,
        )
        assert [r.halted for r in results] == [False, False]
        assert all(r.states is not None for r in results)

    def test_run_iter_is_lazy(self):
        # Counterexample-style consumers stop at the first interesting
        # result; later instances must not execute at all.
        executed = []

        class Tracking(SetBroadcastAlgorithm):
            def initial_state(self, degree):
                executed.append(degree)
                return Output(degree)

            def broadcast(self, state):  # pragma: no cover - halts immediately
                raise AssertionError

            def transition(self, state, received):  # pragma: no cover
                raise AssertionError

        instances = [cycle_graph(3), cycle_graph(4), cycle_graph(5)]
        iterator = run_iter(Tracking(), instances)
        next(iterator)
        assert len(executed) == 3  # only the first 3-cycle's nodes
        assert run_many(Tracking(), instances)[2].halted

    def test_default_instance_cache_dies_with_the_graph(self):
        import gc
        import weakref

        graph = random_regular_graph(3, 8, seed=17)
        run_many(RoundCounterAlgorithm(1), [graph])
        ref = weakref.ref(graph)
        del graph
        gc.collect()
        assert ref() is None

    def test_per_instance_inputs(self):
        class EchoInput(SetBroadcastAlgorithm):
            def initial_state(self, degree):
                return Output(None)

            def initial_state_with_input(self, degree, local_input):
                return Output(local_input)

            def broadcast(self, state):  # pragma: no cover - halts immediately
                raise AssertionError

            def transition(self, state, received):  # pragma: no cover
                raise AssertionError

        graph = path_graph(2)
        results = run_many(
            EchoInput(),
            [graph, graph],
            inputs=[{0: "x", 1: "y"}, None],
        )
        assert results[0].outputs == {0: "x", 1: "y"}
        assert results[1].outputs == {0: None, 1: None}

    def test_mismatched_inputs_length_rejected(self):
        with pytest.raises(ValueError):
            run_many(RoundCounterAlgorithm(1), [cycle_graph(3)], inputs=[None, None])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_many(RoundCounterAlgorithm(1), [cycle_graph(3)], engine="quantum")


class TestFastPath:
    def test_projection_memoized_for_multiset(self):
        fast = fast_path(make_probe(MultisetAlgorithm))
        first = fast.project(("a", "b", "a"))
        second = fast.project(("a", "b", "a"))
        assert first is second
        assert fast.cache_size == 1

    def test_vector_projection_is_identity_without_cache(self):
        fast = fast_path(make_probe(VectorAlgorithm))
        vector = ("a", "b")
        assert fast.project(vector) is vector
        assert fast.cache_size == 0

    def test_fast_path_idempotent(self):
        inner = make_probe(SetAlgorithm)
        fast = fast_path(inner)
        assert fast_path(fast) is fast
        assert FastPathAlgorithm(fast).inner is inner
