"""Tests for the three separation evidences (Section 5.3)."""

from __future__ import annotations

import pytest

from repro.graphs.generators import cycle_graph, figure9_graph, matchless_regular_graph, star_graph
from repro.machines.models import ProblemClass
from repro.separations import (
    all_separations,
    matchless_separation,
    odd_odd_separation,
    star_separation,
)


class TestStarSeparation:
    def test_full_verification(self):
        evidence = star_separation()
        assert evidence.smaller is ProblemClass.VB
        assert evidence.larger is ProblemClass.SV
        assert evidence.verify([star_graph(2), star_graph(3)])

    def test_scales_with_star_size(self):
        for leaves in (2, 4, 6):
            assert star_separation(leaves).verify()

    def test_requires_at_least_two_leaves(self):
        with pytest.raises(ValueError):
            star_separation(1)


class TestOddOddSeparation:
    def test_full_verification(self):
        evidence = odd_odd_separation()
        assert evidence.smaller is ProblemClass.SB
        assert evidence.larger is ProblemClass.MB
        assert evidence.verify()

    def test_witnesses_are_two_nodes(self):
        evidence = odd_odd_separation()
        assert len(evidence.witness_nodes) == 2


class TestMatchlessSeparation:
    def test_full_verification_on_figure9(self):
        evidence = matchless_separation()
        assert evidence.smaller is ProblemClass.VV
        assert evidence.larger is ProblemClass.VVC
        assert evidence.witness_graph == figure9_graph()
        assert evidence.verify()

    def test_solver_is_checked_under_consistency_only(self):
        evidence = matchless_separation()
        assert evidence.larger.requires_consistency

    def test_non_witness_graph_fails_the_argument(self):
        """On a graph with a perfect matching the 'must distinguish' half fails."""
        evidence = matchless_separation(cycle_graph(4))
        assert evidence.witness_bisimilar()          # Lemma 15 still applies
        assert not evidence.solutions_must_distinguish()  # but constant outputs are fine


class TestAllSeparations:
    def test_three_separations_cover_the_three_strict_inclusions(self):
        evidences = all_separations()
        pairs = {(evidence.smaller, evidence.larger) for evidence in evidences}
        assert pairs == {
            (ProblemClass.SB, ProblemClass.MB),
            (ProblemClass.VB, ProblemClass.SV),
            (ProblemClass.VV, ProblemClass.VVC),
        }

    def test_all_verify(self):
        for evidence in all_separations():
            assert evidence.verify(), evidence.problem_name
