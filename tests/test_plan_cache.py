"""Tests for the cross-campaign kernel plan cache.

The plan cache is a pure warm-start channel: a :class:`KernelPlan` captures
the interned transition/send/configuration tables of the sweep and vector
engines, travels as bytes (store artifacts) or shared memory (pool workers),
and pre-fills a fresh wrapper so re-runs skip every transition evaluation.
The contract under test is twofold:

* **identity** -- a plan-warmed run produces results (and campaign manifest
  digests) byte-identical to a cold run, across engines, backends and
  execution paths, including a plan serialized in one interpreter and loaded
  in a fresh one;
* **lifecycle** -- deltas captured on workers fold losslessly into the
  parent's tables, shared-memory generations retire safely, stale refs and
  unserializable content degrade to cold builds, never to errors.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import obs
from repro.campaign import CampaignSpec, GraphGrid, ResultStore, migrate_store, run_campaign
from repro.campaign.executor import PlanCache, _memo_put, set_worker_memo_limit
from repro.campaign.registry import build_algorithm
from repro.campaign.service import CampaignService
from repro.execution.plan import (
    ARTIFACT_KIND,
    KernelPlan,
    PlanPublisher,
    PlanRef,
    algorithm_fingerprint,
    capture_delta,
    capture_plan,
    fold_delta,
    install_plan,
    load_plans,
    plan_key,
)
from repro.execution.sweep import SweepStats, run_sweep
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.ports import consistent_port_numbering, random_port_numbering
from repro.machines.fastpath import fast_path

REPO_SRC = Path(repro.__file__).resolve().parents[1]

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="vector engine needs numpy")


def mixed_instances():
    """Mixed topologies and numberings: exercises ports, broadcast, padding."""
    import random

    instances = []
    for graph in (cycle_graph(4), cycle_graph(6), path_graph(5), star_graph(4)):
        instances.append((graph, consistent_port_numbering(graph)))
        instances.append((graph, random_port_numbering(graph, rng=random.Random(7))))
    return instances


def result_fingerprint(results) -> list[tuple]:
    return [
        (sorted(r.outputs.items()), r.rounds, r.halted, sorted(r.states.items()))
        for r in results
    ]


def fresh_wrapper(name: str = "gather-degrees"):
    return fast_path(build_algorithm(name), memoize_transitions=True)


# --------------------------------------------------------------------------- #
# Plan capture / install round-trips
# --------------------------------------------------------------------------- #


class TestPlanRoundTrip:
    def test_sweep_plan_warm_start(self):
        instances = mixed_instances()
        cold = fresh_wrapper()
        cold_stats = SweepStats()
        expected = result_fingerprint(
            run_sweep(cold, instances, max_rounds=50, stats=cold_stats)
        )
        plan = KernelPlan.from_bytes(capture_plan(cold).to_bytes())
        assert not plan.empty
        warm = fresh_wrapper()
        install_plan(warm, plan)
        warm_stats = SweepStats()
        got = result_fingerprint(
            run_sweep(warm, instances, max_rounds=50, stats=warm_stats)
        )
        assert got == expected
        # The plan carried every distinct configuration: zero evaluations,
        # and the dedup accounting matches the cold sweep step for step.
        assert warm_stats.evaluations == 0
        assert warm_stats.occurrences == cold_stats.occurrences
        assert warm_stats.replicated_occurrences == cold_stats.replicated_occurrences
        assert warm_stats.executed == cold_stats.executed
        assert warm_stats.distinct_states == 0

    @needs_numpy
    def test_vector_plan_warm_start(self):
        from repro.execution.vector import run_vector

        instances = mixed_instances()
        cold = fresh_wrapper()
        expected = result_fingerprint(run_vector(cold, instances, max_rounds=50))
        plan = KernelPlan.from_bytes(capture_plan(cold).to_bytes())
        assert plan.counts()["vector_configs"] > 0
        warm = fresh_wrapper()
        install_plan(warm, plan)
        warm_stats = SweepStats()
        got = result_fingerprint(
            run_vector(warm, instances, max_rounds=50, stats=warm_stats)
        )
        assert got == expected
        assert warm_stats.evaluations == 0

    @needs_numpy
    def test_arena_batching_matches_grouped(self):
        from repro.execution.vector import run_vector

        instances = mixed_instances()
        for name in ("degree", "gather-degrees", "leaf-election"):
            grouped = result_fingerprint(
                run_vector(fresh_wrapper(name), instances, max_rounds=50, arena=False)
            )
            arena = result_fingerprint(
                run_vector(fresh_wrapper(name), instances, max_rounds=50, arena=True)
            )
            assert arena == grouped

    def test_fresh_interpreter_round_trip(self, tmp_path):
        """Satellite contract: a plan serialized here, loaded by a brand-new
        interpreter, reproduces identical results and dedup figures warm."""
        instances = mixed_instances()
        cold = fresh_wrapper()
        cold_stats = SweepStats()
        expected = [
            [
                sorted((repr(k), repr(v)) for k, v in r.outputs.items()),
                r.rounds,
                r.halted,
                sorted((repr(k), repr(v)) for k, v in r.states.items()),
            ]
            for r in run_sweep(cold, instances, max_rounds=50, stats=cold_stats)
        ]
        plan_path = tmp_path / "plan.bin"
        plan_path.write_bytes(capture_plan(cold).to_bytes())

        script = """
import json, random, sys
from repro.campaign.registry import build_algorithm
from repro.execution.plan import KernelPlan, install_plan
from repro.execution.sweep import SweepStats, run_sweep
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.ports import consistent_port_numbering, random_port_numbering
from repro.machines.fastpath import fast_path

instances = []
for graph in (cycle_graph(4), cycle_graph(6), path_graph(5), star_graph(4)):
    instances.append((graph, consistent_port_numbering(graph)))
    instances.append((graph, random_port_numbering(graph, rng=random.Random(7))))

fast = fast_path(build_algorithm("gather-degrees"), memoize_transitions=True)
with open(sys.argv[1], "rb") as fh:
    install_plan(fast, KernelPlan.from_bytes(fh.read()))
stats = SweepStats()
results = run_sweep(fast, instances, max_rounds=50, stats=stats)
print(json.dumps({
    "results": [
        [
            sorted([repr(k), repr(v)] for k, v in r.outputs.items()),
            r.rounds,
            r.halted,
            sorted([repr(k), repr(v)] for k, v in r.states.items()),
        ]
        for r in results
    ],
    "stats": stats.to_dict(),
}))
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(plan_path)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["results"] == json.loads(json.dumps(expected))
        assert payload["stats"]["evaluations"] == 0
        assert payload["stats"]["occurrences"] == cold_stats.occurrences
        assert payload["stats"]["naive_occurrences"] == cold_stats.naive_occurrences
        assert payload["stats"]["executed"] == cold_stats.executed

    def test_empty_plan_from_cold_wrapper(self):
        plan = capture_plan(fresh_wrapper())
        assert plan.empty
        # Installing an empty plan is a no-op that still leaves the wrapper
        # runnable.
        warm = fresh_wrapper()
        install_plan(warm, plan)
        results = run_sweep(warm, [(cycle_graph(4), None)], max_rounds=50)
        assert results[0].halted


class TestPlanKey:
    def test_key_separates_engines(self):
        fast = fresh_wrapper()
        assert plan_key(fast, "sweep") != plan_key(fast, "vector")

    def test_key_stable_across_rebuilds(self):
        assert plan_key(fresh_wrapper(), "sweep") == plan_key(fresh_wrapper(), "sweep")

    def test_fingerprint_separates_algorithms(self):
        assert algorithm_fingerprint(fresh_wrapper("degree")) != algorithm_fingerprint(
            fresh_wrapper("gather-degrees")
        )


# --------------------------------------------------------------------------- #
# Worker deltas
# --------------------------------------------------------------------------- #


class TestPlanDeltas:
    def test_delta_folds_new_discoveries(self):
        seed_instances = [(cycle_graph(4), None)]
        more_instances = [(path_graph(6), None), (star_graph(5), None)]

        teacher = fresh_wrapper()
        run_sweep(teacher, seed_instances, max_rounds=50)
        plan = capture_plan(teacher)

        # Worker: install the plan, discover new configurations, capture the
        # delta relative to the installed baseline.
        worker = fresh_wrapper()
        baseline = install_plan(worker, plan)
        run_sweep(worker, more_instances, max_rounds=50)
        delta = capture_delta(worker, baseline)
        assert delta is not None and not delta.empty

        # Parent: fold the delta into its own plan-installed wrapper; the
        # folded tables answer the new instances without evaluations.
        parent = fresh_wrapper()
        install_plan(parent, plan)
        assert fold_delta(parent, delta)
        stats = SweepStats()
        warm = result_fingerprint(
            run_sweep(parent, more_instances, max_rounds=50, stats=stats)
        )
        assert stats.evaluations == 0
        assert warm == result_fingerprint(
            run_sweep(fresh_wrapper(), more_instances, max_rounds=50)
        )

    def test_no_discoveries_no_delta(self):
        instances = [(cycle_graph(4), None)]
        teacher = fresh_wrapper()
        run_sweep(teacher, instances, max_rounds=50)
        worker = fresh_wrapper()
        baseline = install_plan(worker, capture_plan(teacher))
        run_sweep(worker, instances, max_rounds=50)
        assert capture_delta(worker, baseline) is None

    def test_fold_is_idempotent(self):
        teacher = fresh_wrapper()
        baseline = install_plan(teacher, capture_plan(fresh_wrapper()))
        run_sweep(teacher, [(cycle_graph(5), None)], max_rounds=50)
        delta = capture_delta(teacher, baseline)
        assert delta is not None
        target = fresh_wrapper()
        install_plan(target, capture_plan(fresh_wrapper()))
        assert fold_delta(target, delta)
        assert not fold_delta(target, delta)


# --------------------------------------------------------------------------- #
# Shared-memory publication
# --------------------------------------------------------------------------- #


class TestPublisher:
    def _plan(self):
        fast = fresh_wrapper()
        run_sweep(fast, mixed_instances(), max_rounds=50)
        return capture_plan(fast)

    def test_publish_load_close(self):
        plan = self._plan()
        publisher = PlanPublisher()
        try:
            ref = publisher.publish({"gather-degrees": plan})
            assert ref is not None
            loaded = load_plans(ref)
            assert loaded is not None
            assert loaded["gather-degrees"].counts() == plan.counts()
        finally:
            publisher.close()
        if ref.kind == "shm":
            assert load_plans(ref) is None  # unlinked at close -> cold build

    def test_one_retired_generation_stays_loadable(self):
        plan = self._plan()
        publisher = PlanPublisher()
        try:
            ref1 = publisher.publish({"a": plan})
            ref2 = publisher.publish({"a": plan})
            ref3 = publisher.publish({"a": plan})
            if ref3.kind != "shm":
                pytest.skip("no shared memory on this platform")
            # The previous generation survives for in-flight tasks; anything
            # older is unlinked and degrades to a cold build.
            assert load_plans(ref3) is not None
            assert load_plans(ref2) is not None
            assert load_plans(ref1) is None
        finally:
            publisher.close()

    def test_stale_ref_degrades_to_none(self):
        assert load_plans(None) is None
        bogus = PlanRef(kind="shm", name="psm_does_not_exist", payload=None, generation=9)
        assert load_plans(bogus) is None

    def test_corrupt_artifact_bytes_rejected(self):
        with pytest.raises(ValueError):
            KernelPlan.from_bytes(b"not a plan")


# --------------------------------------------------------------------------- #
# Digest identity across execution paths and backends
# --------------------------------------------------------------------------- #


def plan_spec(name: str = "plan-identity") -> CampaignSpec:
    engines = ["sweep", "vector"] if HAVE_NUMPY else ["sweep"]
    return CampaignSpec(
        name=name,
        kind="execution",
        graphs=[
            GraphGrid.of("cycle", {"n": [4, 5, 6]}),
            GraphGrid.of("path", {"n": [3, 5]}),
        ],
        algorithms=["degree", "gather-degrees"],
        engines=engines,
        max_rounds=64,
    )


BACKEND_URIS = {
    "json": lambda tmp, tag: f"json:{tmp / tag}",
    "sqlite": lambda tmp, tag: f"sqlite:{tmp / f'{tag}.db'}",
}


class TestDigestIdentity:
    @pytest.mark.parametrize("backend", sorted(BACKEND_URIS))
    def test_plan_cached_paths_match_cold(self, tmp_path, backend):
        spec = plan_spec()
        uri = BACKEND_URIS[backend]

        cold = run_campaign(spec, uri(tmp_path, "cold"), use_plan_cache=False)
        serial = run_campaign(spec, uri(tmp_path, "serial"))
        sharded = run_campaign(spec, uri(tmp_path, "sharded"), workers=2)
        assert cold.manifest_digest == serial.manifest_digest
        assert cold.manifest_digest == sharded.manifest_digest

        # Second run against the serial store: every plan is loaded from the
        # artifact channel, records are forcibly re-evaluated warm, and the
        # digest still cannot move.
        warm = run_campaign(spec, uri(tmp_path, "serial"), resume=False)
        assert warm.manifest_digest == cold.manifest_digest

        store = ResultStore(uri(tmp_path, "serial"))
        assert store.list_artifacts(ARTIFACT_KIND)

    def test_service_path_matches_cold(self, tmp_path):
        spec = plan_spec("plan-service")
        cold = run_campaign(spec, tmp_path / "cold", use_plan_cache=False)
        with CampaignService(tmp_path / "svc", workers=2) as service:
            job = service.submit(spec)
            assert service.wait(job, timeout=300)
            status = service.status(job)
        assert status["status"] == "done"
        assert status["manifest_digest"] == cold.manifest_digest
        assert ResultStore(tmp_path / "svc").list_artifacts(ARTIFACT_KIND)

    def test_plan_cache_counters(self, tmp_path):
        spec = plan_spec("plan-counters")
        obs.reset()
        obs.enable()
        try:
            run_campaign(spec, tmp_path / "store")
            first = obs.snapshot()["counters"]
            run_campaign(spec, tmp_path / "store", resume=False)
            second = obs.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        # Cold run: every (algorithm, engine) key misses, plans persist.
        assert first.get("plan.cache.miss", 0) > 0
        assert first.get("plan.cache.persist", 0) > 0
        # Warm run: the stored artifacts answer the same keys.
        assert second.get("plan.cache.hit", 0) >= first.get("plan.cache.miss", 0)


class TestPlanCacheCoordinator:
    def test_prepare_is_idempotent_per_key(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cache = PlanCache(store)
        scenarios = plan_spec().expand()
        cache.prepare(scenarios)
        wrappers = dict(cache._wrappers)
        cache.prepare(scenarios)
        assert cache._wrappers == wrappers  # same objects, no rebuilds
        cache.close()

    def test_disabled_cache_is_inert(self, tmp_path):
        cache = PlanCache(ResultStore(tmp_path / "store"), enabled=False)
        cache.prepare(plan_spec().expand())
        assert cache.ref() is None
        assert not cache._wrappers
        cache.persist()
        cache.close()

    def test_unplannable_scenarios_ignored(self, tmp_path):
        spec = CampaignSpec(
            name="unplannable",
            kind="execution",
            graphs=[GraphGrid.of("cycle", {"n": [4]})],
            algorithms=["degree"],
            engines=["compiled"],
        )
        cache = PlanCache(ResultStore(tmp_path / "store"))
        cache.prepare(spec.expand())
        assert not cache._wrappers
        cache.close()


# --------------------------------------------------------------------------- #
# Store artifacts channel
# --------------------------------------------------------------------------- #


class TestArtifacts:
    @pytest.mark.parametrize("backend", sorted(BACKEND_URIS))
    def test_round_trip(self, tmp_path, backend):
        store = ResultStore(BACKEND_URIS[backend](tmp_path, "art"))
        key = "ab" + "0" * 62
        assert store.get_artifact("plan", key) is None
        assert store.list_artifacts("plan") == []
        assert store.put_artifact("plan", key, b"payload")
        assert store.get_artifact("plan", key) == b"payload"
        assert store.list_artifacts("plan") == [key]
        # Overwrite wins: plans grow monotonically across runs.
        assert store.put_artifact("plan", key, b"payload-2")
        assert store.get_artifact("plan", key) == b"payload-2"

    def test_migration_carries_artifacts(self, tmp_path):
        src = ResultStore(f"json:{tmp_path / 'src'}")
        key = "cd" + "1" * 62
        src.put_artifact(ARTIFACT_KIND, key, b"plan-bytes")
        report = migrate_store(src.uri, f"sqlite:{tmp_path / 'dst.db'}")
        assert report["artifacts_copied"] == 1
        dst = ResultStore(f"sqlite:{tmp_path / 'dst.db'}")
        assert dst.get_artifact(ARTIFACT_KIND, key) == b"plan-bytes"


# --------------------------------------------------------------------------- #
# Worker memo eviction accounting
# --------------------------------------------------------------------------- #


class TestMemoEviction:
    def test_eviction_counter_and_limit(self):
        obs.reset()
        obs.enable()
        try:
            memo: dict = {}
            for i in range(3):
                _memo_put(memo, f"k{i}", i, limit=2)
            # Third insert tripped the cap: the memo was cleared, then the
            # newcomer stored.
            assert len(memo) == 1 and memo["k2"] == 2
            counters = obs.snapshot()["counters"]
            assert counters.get("campaign.memo.evictions", 0) == 1
            assert obs.snapshot()["gauges"].get("campaign.memo.limit") == 2.0
        finally:
            obs.disable()
            obs.reset()

    def test_set_worker_memo_limit(self):
        original = set_worker_memo_limit(7)
        try:
            memo: dict = {}
            for i in range(8):
                _memo_put(memo, f"k{i}", i)
            assert len(memo) == 1  # 8th insert evicted the full memo
        finally:
            set_worker_memo_limit(original)

    def test_env_override(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env["REPRO_WORKER_MEMO_LIMIT"] = "3"
        script = (
            "from repro.campaign import executor\n"
            "assert executor._WORKER_MEMO_LIMIT == 3, executor._WORKER_MEMO_LIMIT\n"
            "print('ok')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"
