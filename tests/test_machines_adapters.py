"""Tests for the trivial model upcasts (Figure 5a made executable)."""

from __future__ import annotations

import pytest

from repro.algorithms.basic import GatherDegreesAlgorithm
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.parity import OddOddNeighboursAlgorithm, SomeOddNeighbourAlgorithm
from repro.core.simulations import simulate_vector_with_multiset
from repro.execution.runner import run
from repro.graphs.generators import cycle_graph, odd_odd_gadget_pair, path_graph, star_graph
from repro.graphs.ports import random_port_numbering
from repro.machines.adapters import ModelUpcast, as_model
from repro.machines.models import (
    BROADCAST_MODEL,
    MULTISET_BROADCAST_MODEL,
    MULTISET_MODEL,
    SET_MODEL,
    VECTOR_MODEL,
)

GRAPHS = (star_graph(3), path_graph(4), cycle_graph(5), odd_odd_gadget_pair()[0])


class TestConstruction:
    def test_downcast_is_rejected(self):
        with pytest.raises(ValueError):
            as_model(GatherDegreesAlgorithm(), SET_MODEL)

    def test_identity_upcast_returns_the_same_object(self):
        algorithm = LeafElectionAlgorithm()
        assert as_model(algorithm, SET_MODEL) is algorithm

    def test_wrapper_reports_target_model_and_name(self):
        wrapped = as_model(SomeOddNeighbourAlgorithm(), VECTOR_MODEL)
        assert isinstance(wrapped, ModelUpcast)
        assert wrapped.model == VECTOR_MODEL
        assert "SomeOddNeighbourAlgorithm" in wrapped.name
        assert wrapped.inner.model != VECTOR_MODEL


class TestBehaviourPreservation:
    @pytest.mark.parametrize(
        "target",
        [MULTISET_MODEL, VECTOR_MODEL],
        ids=["set-as-multiset", "set-as-vector"],
    )
    def test_set_algorithm_upcast(self, target, rng):
        inner = LeafElectionAlgorithm()
        wrapped = as_model(inner, target)
        for graph in GRAPHS:
            numbering = random_port_numbering(graph, rng)
            assert run(wrapped, graph, numbering).outputs == run(inner, graph, numbering).outputs

    @pytest.mark.parametrize(
        "target",
        [MULTISET_BROADCAST_MODEL, BROADCAST_MODEL, MULTISET_MODEL, VECTOR_MODEL],
        ids=["sb-as-mb", "sb-as-vb", "sb-as-mv", "sb-as-vv"],
    )
    def test_set_broadcast_algorithm_upcast(self, target, rng):
        inner = SomeOddNeighbourAlgorithm()
        wrapped = as_model(inner, target)
        for graph in GRAPHS:
            numbering = random_port_numbering(graph, rng)
            assert run(wrapped, graph, numbering).outputs == run(inner, graph, numbering).outputs

    def test_mb_algorithm_as_vector_algorithm(self, rng):
        inner = OddOddNeighboursAlgorithm()
        wrapped = as_model(inner, VECTOR_MODEL)
        for graph in GRAPHS:
            numbering = random_port_numbering(graph, rng)
            assert run(wrapped, graph, numbering).outputs == run(inner, graph, numbering).outputs


class TestComposesWithSimulations:
    def test_upcast_then_theorem8_simulation(self, rng):
        """A Set algorithm viewed as Vector can be pushed through Theorem 8."""
        inner = LeafElectionAlgorithm()
        as_vector = as_model(inner, VECTOR_MODEL)
        simulated = simulate_vector_with_multiset(as_vector)
        for graph in (star_graph(2), star_graph(3)):
            numbering = random_port_numbering(graph, rng)
            outputs = run(simulated, graph, numbering).outputs
            assert outputs[0] == 0
            assert sum(outputs[leaf] for leaf in graph.nodes if leaf != 0) == 1
