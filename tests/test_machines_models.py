"""Unit tests for the model and problem-class definitions (Sections 1.5-1.6)."""

from __future__ import annotations

import pytest

from repro.machines.models import (
    ALGORITHM_MODELS,
    BROADCAST_MODEL,
    MULTISET_BROADCAST_MODEL,
    MULTISET_MODEL,
    SET_BROADCAST_MODEL,
    SET_MODEL,
    VECTOR_MODEL,
    Model,
    ProblemClass,
    ReceiveMode,
    SendMode,
)
from repro.machines.multiset import FrozenMultiset


class TestReceiveModes:
    def test_vector_projection_keeps_order(self):
        assert ReceiveMode.VECTOR.project(["a", "b", "a"]) == ("a", "b", "a")

    def test_multiset_projection(self):
        projected = ReceiveMode.MULTISET.project(["a", "b", "a"])
        assert isinstance(projected, FrozenMultiset)
        assert projected.count("a") == 2

    def test_set_projection(self):
        assert ReceiveMode.SET.project(["a", "b", "a"]) == frozenset({"a", "b"})

    def test_information_order(self):
        assert ReceiveMode.SET.is_weaker_or_equal(ReceiveMode.MULTISET)
        assert ReceiveMode.MULTISET.is_weaker_or_equal(ReceiveMode.VECTOR)
        assert not ReceiveMode.VECTOR.is_weaker_or_equal(ReceiveMode.SET)


class TestSendModes:
    def test_information_order(self):
        assert SendMode.BROADCAST.is_weaker_or_equal(SendMode.PORT)
        assert not SendMode.PORT.is_weaker_or_equal(SendMode.BROADCAST)


class TestModels:
    def test_all_six_models_are_distinct(self):
        assert len(set(ALGORITHM_MODELS)) == 6

    def test_names(self):
        assert VECTOR_MODEL.name == "VV"
        assert MULTISET_MODEL.name == "MV"
        assert SET_MODEL.name == "SV"
        assert BROADCAST_MODEL.name == "VB"
        assert MULTISET_BROADCAST_MODEL.name == "MB"
        assert SET_BROADCAST_MODEL.name == "SB"

    def test_weakness_partial_order(self):
        assert SET_BROADCAST_MODEL.is_weaker_or_equal(VECTOR_MODEL)
        assert MULTISET_BROADCAST_MODEL.is_weaker_or_equal(MULTISET_MODEL)
        assert BROADCAST_MODEL.is_weaker_or_equal(VECTOR_MODEL)
        assert not SET_MODEL.is_weaker_or_equal(BROADCAST_MODEL)
        assert not BROADCAST_MODEL.is_weaker_or_equal(SET_MODEL)


class TestProblemClasses:
    def test_models_of_the_seven_classes(self):
        assert ProblemClass.VVC.model == VECTOR_MODEL
        assert ProblemClass.VV.model == VECTOR_MODEL
        assert ProblemClass.MV.model == MULTISET_MODEL
        assert ProblemClass.SV.model == SET_MODEL
        assert ProblemClass.VB.model == BROADCAST_MODEL
        assert ProblemClass.MB.model == MULTISET_BROADCAST_MODEL
        assert ProblemClass.SB.model == SET_BROADCAST_MODEL

    def test_only_vvc_requires_consistency(self):
        assert ProblemClass.VVC.requires_consistency
        assert not any(
            cls.requires_consistency for cls in ProblemClass if cls is not ProblemClass.VVC
        )

    def test_figure_5a_containments(self):
        # The chain SB ⊆ MB ⊆ MV ⊆ VV ⊆ VVc.
        chain = [
            ProblemClass.SB,
            ProblemClass.MB,
            ProblemClass.MV,
            ProblemClass.VV,
            ProblemClass.VVC,
        ]
        for smaller, larger in zip(chain, chain[1:]):
            assert larger.trivially_contains(smaller)
        # The side chains SB ⊆ SV ⊆ MV and MB ⊆ VB ⊆ VV.
        assert ProblemClass.SV.trivially_contains(ProblemClass.SB)
        assert ProblemClass.MV.trivially_contains(ProblemClass.SV)
        assert ProblemClass.VB.trivially_contains(ProblemClass.MB)
        assert ProblemClass.VV.trivially_contains(ProblemClass.VB)

    def test_orthogonal_classes_are_not_trivially_comparable(self):
        assert not ProblemClass.SV.trivially_contains(ProblemClass.VB)
        assert not ProblemClass.VB.trivially_contains(ProblemClass.SV)

    def test_string_representation(self):
        assert str(ProblemClass.VVC) == "VVc"
        assert str(ProblemClass.SB) == "SB"
