"""The engine registry: resolution, discovery, capability and availability errors.

Every public ``engine=`` knob routes through
:func:`repro.engines.resolve_engine`, so unknown names, capability mismatches
(the sweep executor has no model checker) and missing optional dependencies
are diagnosed in exactly one place.  These tests pin the registry contract
and the regression that motivated it: ``engine="sweep"`` passed to a logic
entry point must fail at the public boundary with an error naming the engine
and the operation.
"""

import pickle

import pytest

from repro.engines import registry
from repro.engines.registry import (
    CAPABILITIES,
    EngineCapabilityError,
    EngineError,
    EngineSpec,
    EngineUnavailableError,
    UnknownEngineError,
    available_engines,
    engine_names,
    logic_engine_for,
    resolve_engine,
)
from repro.execution.engine import run_iter, run_many
from repro.execution.sweep import run_sweep
from repro.graphs import consistent_port_numbering, cycle_graph
from repro.logic.bisimulation import bisimilarity_partition, bounded_bisimilarity_partition
from repro.logic.engine import check_many, check_sweep
from repro.logic.kripke import KripkeModel
from repro.logic.semantics import equivalent_on, extension, satisfies
from repro.logic.syntax import Diamond, Prop
from repro.machines import SetBroadcastAlgorithm
from repro.machines.algorithm import Output
from repro.machines.models import ProblemClass
from repro.modal.formula_to_algorithm import algorithm_for_formula


def small_model():
    return KripkeModel(
        worlds=frozenset([0, 1]),
        relations={"a": frozenset([(0, 1)])},
        valuation={"p": frozenset([1])},
    )


class Stamp(SetBroadcastAlgorithm):
    """Minimal broadcast algorithm for execution-boundary tests."""

    def initial_state(self, degree):
        return degree

    def broadcast(self, state):
        return "x"

    def transition(self, state, received):
        return Output(state)


# --------------------------------------------------------------------------- #
# Registry surface
# --------------------------------------------------------------------------- #


def test_registry_declares_four_engines_in_order():
    assert engine_names() == ("sweep", "compiled", "reference", "vector")


def test_engine_names_filters_by_capability():
    assert engine_names(requires={"sweep"}) == ("sweep", "compiled", "reference", "vector")
    assert engine_names(requires={"logic"}) == ("compiled", "reference", "vector")
    assert engine_names(requires={"trace"}) == ("compiled", "reference")
    assert engine_names(requires={"logic", "trace"}) == ("compiled", "reference")


def test_capability_vocabulary_covers_every_spec():
    for name in engine_names():
        assert resolve_engine(name).capabilities <= CAPABILITIES


def test_resolve_engine_returns_spec():
    spec = resolve_engine("sweep")
    assert isinstance(spec, EngineSpec)
    assert spec.name == "sweep"
    assert spec.batched
    assert resolve_engine("compiled").batched is False


def test_logic_engine_for_pairing():
    assert logic_engine_for("sweep") == "compiled"
    assert logic_engine_for("compiled") == "compiled"
    assert logic_engine_for("reference") == "reference"
    assert logic_engine_for("vector") == "vector"


def test_unknown_engine_error_is_value_error():
    with pytest.raises(UnknownEngineError, match="unknown engine 'turbo'"):
        resolve_engine("turbo")
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("turbo")


def test_engine_errors_are_picklable():
    err = pickle.loads(pickle.dumps(UnknownEngineError("unknown engine 'x'")))
    assert isinstance(err, EngineError)


# --------------------------------------------------------------------------- #
# Availability (optional numpy dependency)
# --------------------------------------------------------------------------- #


def test_available_engines_reflects_numpy_probe(monkeypatch):
    monkeypatch.setattr(registry, "_NUMPY", None)
    assert "vector" not in available_engines()
    assert available_engines() == ("sweep", "compiled", "reference")
    # The declared universe is unchanged: a spec naming "vector" stays
    # well-formed on a numpy-free box.
    assert "vector" in engine_names()


def test_unavailable_engine_raises_import_and_value_error(monkeypatch):
    monkeypatch.setattr(registry, "_NUMPY", None)
    with pytest.raises(EngineUnavailableError, match="pip install numpy"):
        resolve_engine("vector")
    with pytest.raises(ImportError):
        resolve_engine("vector")
    with pytest.raises(ValueError):
        resolve_engine("vector")


def test_unavailable_engine_at_execution_boundary(monkeypatch):
    monkeypatch.setattr(registry, "_NUMPY", None)
    graph = cycle_graph(4)
    numbering = consistent_port_numbering(graph)
    with pytest.raises(EngineUnavailableError, match="'vector'"):
        run_sweep(Stamp(), [(graph, numbering)], engine="vector")


def test_vector_available_when_numpy_installed():
    pytest.importorskip("numpy")
    assert "vector" in available_engines()
    assert resolve_engine("vector").requirement == "numpy"


# --------------------------------------------------------------------------- #
# Capability errors at every public logic boundary (regression)
# --------------------------------------------------------------------------- #

LOGIC_CALLS = [
    ("check_many", lambda m, f: check_many(m, [f], engine="sweep")),
    ("check_sweep", lambda m, f: check_sweep([m], [f], engine="sweep")),
    ("extension", lambda m, f: extension(m, f, engine="sweep")),
    ("satisfies", lambda m, f: satisfies(m, 0, f, engine="sweep")),
    ("equivalent_on", lambda m, f: equivalent_on(m, f, f, engine="sweep")),
    (
        "bisimilarity_partition",
        lambda m, f: bisimilarity_partition(m, engine="sweep"),
    ),
    (
        "bounded_bisimilarity_partition",
        lambda m, f: bounded_bisimilarity_partition(m, 2, engine="sweep"),
    ),
]


@pytest.mark.parametrize("name,call", LOGIC_CALLS, ids=[n for n, _ in LOGIC_CALLS])
def test_sweep_engine_rejected_by_logic_entry_points(name, call):
    """engine="sweep" at a logic boundary names the engine AND the operation."""
    model = small_model()
    formula = Diamond(Prop("p"), index="a")
    with pytest.raises(EngineCapabilityError) as excinfo:
        call(model, formula)
    message = str(excinfo.value)
    assert "'sweep'" in message
    assert name in message
    assert "logic" in message
    # The error lists the engines that would work.
    assert "compiled" in message and "reference" in message


def test_sweep_engine_rejected_by_algorithm_for_formula():
    with pytest.raises(EngineCapabilityError, match="algorithm_for_formula"):
        algorithm_for_formula(Diamond(Prop("p")), ProblemClass.SB, engine="sweep")


def test_capability_error_is_value_error():
    model = small_model()
    with pytest.raises(ValueError):
        check_many(model, [Prop("p")], engine="sweep")


# --------------------------------------------------------------------------- #
# Unknown engines rejected uniformly at every boundary
# --------------------------------------------------------------------------- #


def test_unknown_engine_rejected_by_execution_entry_points():
    graph = cycle_graph(4)
    numbering = consistent_port_numbering(graph)
    instance = [(graph, numbering)]
    with pytest.raises(UnknownEngineError, match="unknown engine 'warp'"):
        run_many(Stamp(), instance, engine="warp")
    with pytest.raises(UnknownEngineError, match="unknown engine"):
        list(run_iter(Stamp(), instance, engine="warp"))
    with pytest.raises(UnknownEngineError, match="unknown engine"):
        run_sweep(Stamp(), instance, engine="warp")


def test_unknown_engine_rejected_by_logic_entry_points():
    model = small_model()
    with pytest.raises(UnknownEngineError, match="unknown engine"):
        check_many(model, [Prop("p")], engine="warp")
    with pytest.raises(UnknownEngineError, match="unknown engine"):
        extension(model, Prop("p"), engine="warp")


def test_campaign_spec_validation_uses_registry():
    from repro.campaign.spec import CampaignSpec, GraphGrid

    spec = CampaignSpec(
        name="t",
        kind="execution",
        graphs=[GraphGrid.of("cycle", {"n": 4})],
        model_classes=["SB"],
        engines=["vector"],
    )
    # "vector" is a declared engine, so the spec is well-formed even where
    # numpy is absent (availability is an execution-time concern).
    assert spec.expand()
    bad = CampaignSpec(
        name="t",
        kind="execution",
        graphs=[GraphGrid.of("cycle", {"n": 4})],
        model_classes=["SB"],
        engines=["warp"],
    )
    with pytest.raises(ValueError, match="unknown engine 'warp' in campaign 't'"):
        bad.expand()
    logic_bad = CampaignSpec(
        name="t",
        kind="logic",
        graphs=[GraphGrid.of("cycle", {"n": 4})],
        model_classes=["SB"],
        formula_sets=["ml-basic"],
        engines=["sweep"],
    )
    with pytest.raises(ValueError, match="unknown engine 'sweep'"):
        logic_bad.expand()
