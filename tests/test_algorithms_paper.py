"""Tests for the paper's concrete algorithms (Theorems 11, 13, 17; Section 3.3)."""

from __future__ import annotations

import pytest

from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.local_types import LocalTypeSymmetryBreaking
from repro.algorithms.parity import OddOddNeighboursAlgorithm, SomeOddNeighbourAlgorithm
from repro.algorithms.vertex_cover import DoubleCoverMatchingVertexCover, cover_from_outputs
from repro.execution.adversary import port_numberings_to_check
from repro.execution.runner import run
from repro.graphs.covers import symmetric_port_numbering
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    figure9_graph,
    grid_graph,
    odd_odd_gadget_pair,
    path_graph,
    random_bounded_degree_graph,
    star_graph,
)
from repro.graphs.matching import is_vertex_cover, minimum_vertex_cover
from repro.problems.separating import (
    LeafElectionInStars,
    OddOddNeighbours,
    SymmetryBreakingInMatchlessRegular,
)
from repro.problems.verification import solves, worst_case_running_time


class TestLeafElection:
    def test_elects_exactly_one_leaf_on_every_numbering(self):
        graph = star_graph(4)
        for numbering in port_numberings_to_check(graph, exhaustive_limit=600):
            outputs = run(LeafElectionAlgorithm(), graph, numbering).outputs
            assert outputs[0] == 0
            assert sum(outputs[leaf] for leaf in range(1, 5)) == 1

    def test_solves_the_problem_on_mixed_family(self):
        graphs = [star_graph(2), star_graph(3), path_graph(4), cycle_graph(3), complete_graph(4)]
        assert solves(LeafElectionAlgorithm(), LeafElectionInStars(), graphs)

    def test_is_local(self):
        assert worst_case_running_time(LeafElectionAlgorithm(), [star_graph(5)]) == 1


class TestOddOddNeighbours:
    def test_matches_the_specification_everywhere(self):
        problem = OddOddNeighbours()
        graphs = [path_graph(5), cycle_graph(6), star_graph(4), odd_odd_gadget_pair()[0]]
        assert solves(OddOddNeighboursAlgorithm(), problem, graphs)

    def test_distinguishes_the_theorem13_witnesses(self):
        graph, first, second = odd_odd_gadget_pair()
        outputs = run(OddOddNeighboursAlgorithm(), graph).outputs
        assert {outputs[first], outputs[second]} == {0, 1}

    def test_set_variant_cannot_distinguish_them(self):
        graph, first, second = odd_odd_gadget_pair()
        outputs = run(SomeOddNeighbourAlgorithm(), graph).outputs
        assert outputs[first] == outputs[second]

    def test_some_odd_neighbour_semantics(self):
        outputs = run(SomeOddNeighbourAlgorithm(), star_graph(2)).outputs
        # Leaves see the degree-2 centre (even): no odd neighbour.
        assert outputs[1] == outputs[2] == 0
        assert outputs[0] == 1


class TestLocalTypeSymmetryBreaking:
    def test_two_rounds(self):
        assert run(LocalTypeSymmetryBreaking(), figure9_graph()).rounds == 2

    def test_breaks_symmetry_on_figure9_under_consistent_numberings(self):
        graph = figure9_graph()
        problem = SymmetryBreakingInMatchlessRegular()
        assert solves(
            LocalTypeSymmetryBreaking(),
            problem,
            [graph],
            consistent_only=True,
            samples=15,
        )

    def test_output_constant_under_symmetric_inconsistent_numbering(self):
        """Under the Lemma 15 numbering every node behaves identically."""
        graph = figure9_graph()
        numbering = symmetric_port_numbering(graph)
        outputs = run(LocalTypeSymmetryBreaking(), graph, numbering).outputs
        assert len(set(outputs.values())) == 1

    def test_maximal_type_nodes_output_one(self):
        graph = cycle_graph(4)
        outputs = run(LocalTypeSymmetryBreaking(), graph).outputs
        assert 1 in outputs.values() and 0 in set(outputs.values()) | {0}


class TestDoubleCoverVertexCover:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(5), cycle_graph(6), star_graph(4), complete_graph(4), grid_graph(2, 3)],
        ids=["path5", "cycle6", "star4", "K4", "grid2x3"],
    )
    def test_output_is_a_vertex_cover_under_consistent_numberings(self, graph):
        algorithm = DoubleCoverMatchingVertexCover()
        for numbering in port_numberings_to_check(
            graph, consistent_only=True, exhaustive_limit=30, samples=5
        ):
            outputs = run(algorithm, graph, numbering).outputs
            assert is_vertex_cover(graph, cover_from_outputs(outputs))

    def test_isolated_nodes_stay_out_of_the_cover(self):
        from repro.graphs.graph import Graph

        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        outputs = run(DoubleCoverMatchingVertexCover(), graph).outputs
        assert outputs[2] == 0

    def test_ratio_stays_small_on_random_graphs(self):
        algorithm = DoubleCoverMatchingVertexCover()
        for seed in range(3):
            graph = random_bounded_degree_graph(10, 3, seed=seed)
            if graph.number_of_edges == 0:
                continue
            outputs = run(algorithm, graph).outputs
            cover = cover_from_outputs(outputs)
            assert is_vertex_cover(graph, cover)
            assert len(cover) <= 3 * len(minimum_vertex_cover(graph))

    def test_terminates_within_round_bound(self):
        graph = complete_graph(5)
        result = run(DoubleCoverMatchingVertexCover(), graph)
        assert result.rounds <= 2 * graph.max_degree() + 2
