"""Unit tests for FrozenMultiset."""

from __future__ import annotations

import pytest

from repro.machines.multiset import FrozenMultiset


class TestBasics:
    def test_counts_and_len(self):
        multiset = FrozenMultiset(["a", "b", "a", "c"])
        assert multiset.count("a") == 2
        assert multiset.count("missing") == 0
        assert len(multiset) == 4

    def test_support_and_to_set(self):
        multiset = FrozenMultiset([1, 1, 2])
        assert multiset.support() == frozenset({1, 2})
        assert multiset.to_set() == frozenset({1, 2})

    def test_contains(self):
        multiset = FrozenMultiset(["x"])
        assert "x" in multiset
        assert "y" not in multiset

    def test_iteration_respects_multiplicity(self):
        multiset = FrozenMultiset(["a", "a", "b"])
        assert sorted(multiset) == ["a", "a", "b"]

    def test_empty(self):
        empty = FrozenMultiset()
        assert len(empty) == 0
        assert empty.support() == frozenset()


class TestEqualityAndHashing:
    def test_equality_is_order_insensitive(self):
        assert FrozenMultiset(["a", "b", "a"]) == FrozenMultiset(["b", "a", "a"])

    def test_multiplicities_matter(self):
        assert FrozenMultiset(["a", "a"]) != FrozenMultiset(["a"])

    def test_hash_consistency(self):
        assert hash(FrozenMultiset([1, 2, 2])) == hash(FrozenMultiset([2, 2, 1]))

    def test_usable_as_dict_key(self):
        table = {FrozenMultiset("aab"): "value"}
        assert table[FrozenMultiset("baa")] == "value"

    def test_not_equal_to_other_types(self):
        assert FrozenMultiset([1]) != {1}


class TestConstruction:
    def test_copy_constructor(self):
        original = FrozenMultiset([1, 2, 2])
        assert FrozenMultiset(original) == original

    def test_from_counts(self):
        multiset = FrozenMultiset.from_counts({"a": 2, "b": 0})
        assert multiset.count("a") == 2
        assert "b" not in multiset

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            FrozenMultiset.from_counts({"a": -1})

    def test_counts_returns_copy(self):
        multiset = FrozenMultiset(["a"])
        counts = multiset.counts()
        counts["a"] = 99
        assert multiset.count("a") == 1

    def test_repr_mentions_counts(self):
        assert "2" in repr(FrozenMultiset(["x", "x"]))
