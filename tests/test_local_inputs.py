"""Tests for the labelled-graph extension (Section 3.4: local inputs)."""

from __future__ import annotations

import pytest

from repro.execution.runner import run
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.logic.semantics import extension
from repro.logic.syntax import Diamond, Prop
from repro.machines.algorithm import MultisetBroadcastAlgorithm, Output
from repro.machines.multiset import FrozenMultiset
from repro.modal.encoding import KripkeVariant, input_proposition, kripke_encoding


class NeighbourHasMark(MultisetBroadcastAlgorithm):
    """Output 1 iff some neighbour carries the local input ``'mark'`` (MB(1))."""

    def initial_state(self, degree: int):
        return "plain"

    def initial_state_with_input(self, degree: int, local_input):
        return "marked" if local_input == "mark" else "plain"

    def broadcast(self, state):
        return state

    def transition(self, state, received: FrozenMultiset):
        return Output(1 if "marked" in received else 0)


class CountMarkedNeighbours(MultisetBroadcastAlgorithm):
    """Output the number of marked neighbours."""

    def initial_state(self, degree: int):
        return "plain"

    def initial_state_with_input(self, degree: int, local_input):
        return "marked" if local_input == "mark" else "plain"

    def broadcast(self, state):
        return state

    def transition(self, state, received: FrozenMultiset):
        return Output(received.count("marked"))


class TestRunnerWithInputs:
    def test_inputs_change_the_execution(self):
        graph = star_graph(3)
        marked = run(NeighbourHasMark(), graph, inputs={0: "mark"}).outputs
        unmarked = run(NeighbourHasMark(), graph, inputs={}).outputs
        assert marked == {0: 0, 1: 1, 2: 1, 3: 1}
        assert unmarked == {node: 0 for node in graph.nodes}

    def test_missing_inputs_default_to_none(self):
        graph = path_graph(3)
        outputs = run(NeighbourHasMark(), graph, inputs={1: "mark"}).outputs
        assert outputs == {0: 1, 1: 0, 2: 1}

    def test_without_inputs_the_default_hook_is_used(self):
        graph = cycle_graph(4)
        assert run(NeighbourHasMark(), graph).outputs == {node: 0 for node in graph.nodes}

    def test_counting_marked_neighbours(self):
        graph = star_graph(4)
        outputs = run(
            CountMarkedNeighbours(), graph, inputs={1: "mark", 2: "mark"}
        ).outputs
        assert outputs[0] == 2
        assert outputs[3] == 0

    def test_plain_algorithms_ignore_inputs(self):
        from repro.algorithms.parity import OddOddNeighboursAlgorithm

        graph = path_graph(4)
        with_inputs = run(OddOddNeighboursAlgorithm(), graph, inputs={0: "anything"}).outputs
        without = run(OddOddNeighboursAlgorithm(), graph).outputs
        assert with_inputs == without


class TestLabelledEncoding:
    def test_input_propositions_in_the_valuation(self):
        graph = path_graph(3)
        encoding = kripke_encoding(
            graph, variant=KripkeVariant.NEITHER, inputs={0: "a", 1: "b", 2: "a"}
        )
        assert encoding.valuation_of(input_proposition("a")) == frozenset({0, 2})
        assert encoding.valuation_of(input_proposition("b")) == frozenset({1})

    def test_formulas_over_inputs(self):
        graph = star_graph(3)
        encoding = kripke_encoding(
            graph, variant=KripkeVariant.NEITHER, inputs={1: "mark"}
        )
        has_marked_neighbour = Diamond(Prop(input_proposition("mark")), index=("*", "*"))
        assert extension(encoding, has_marked_neighbour) == frozenset({0})

    def test_inputs_can_separate_otherwise_bisimilar_nodes(self):
        from repro.logic.bisimulation import bisimilar_within

        graph = cycle_graph(4)
        plain = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        labelled = kripke_encoding(
            graph, variant=KripkeVariant.NEITHER, inputs={0: "mark"}
        )
        assert bisimilar_within(plain, graph.nodes)
        assert not bisimilar_within(labelled, graph.nodes)
