"""Tests for the experiment harness: every experiment runs and matches the paper."""

from __future__ import annotations

import json

import pytest

from repro.experiments import format_report
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.registry import EXPERIMENTS, run_all_experiments, run_experiment
from repro.experiments.report import ExperimentResult


class TestRegistry:
    def test_twelve_experiments_registered(self):
        assert len(EXPERIMENTS) == 12
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 13)}

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS, key=lambda e: int(e[1:])))
def test_experiment_matches_paper(experiment_id):
    """Each experiment regenerates its paper artefact with no mismatching rows."""
    result = run_experiment(experiment_id)
    assert isinstance(result, ExperimentResult)
    assert result.rows, "an experiment must report at least one comparison"
    mismatches = [row.metric for row in result.rows if not row.matches]
    assert not mismatches, f"{experiment_id} mismatches: {mismatches}"


class TestReporting:
    def test_format_single_result(self):
        result = ExperimentResult("E0", "demo", "nowhere")
        result.add("metric", "paper says", "we measured", True)
        text = result.format()
        assert "E0" in text and "metric" in text and "[ok]" in text

    def test_format_report_verdict(self):
        good = ExperimentResult("E0", "demo", "nowhere")
        good.add("m", "p", "m", True)
        bad = ExperimentResult("E0b", "demo", "nowhere")
        bad.add("m", "p", "m", False)
        assert "ALL EXPERIMENTS MATCH" in format_report([good])
        assert "MISMATCHES PRESENT" in format_report([good, bad])

    def test_all_match_property(self):
        result = ExperimentResult("E0", "demo", "nowhere")
        result.add("m", "p", "m", True)
        assert result.all_match
        result.add("m2", "p", "m", False)
        assert not result.all_match

    def test_to_dict_round_trips_rows(self):
        result = ExperimentResult("E0", "demo", "nowhere")
        result.add("metric", "paper says", "we measured", True)
        payload = result.to_dict()
        assert payload["experiment_id"] == "E0"
        assert payload["all_match"] is True
        assert payload["rows"] == [
            {"metric": "metric", "paper": "paper says", "measured": "we measured", "matches": True}
        ]
        # the payload is genuinely machine-readable
        assert json.loads(json.dumps(payload)) == payload


class TestCommandLine:
    def test_list_enumerates_registered_ids(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_unknown_id_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown experiment 'E99'"):
            experiments_main(["E99"])

    def test_json_flag_emits_records(self, capsys):
        assert experiments_main(["--json", "E1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["experiment_id"] == "E1"
        assert payload[0]["all_match"] is True
        assert all(row["matches"] for row in payload[0]["rows"])
