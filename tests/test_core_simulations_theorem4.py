"""Tests for Theorem 4: simulating Multiset algorithms with Set algorithms."""

from __future__ import annotations

import pytest

from repro.algorithms.basic import GatherDegreesAlgorithm
from repro.algorithms.parity import OddOddNeighboursAlgorithm
from repro.core.simulations import SetSimulationOfMultiset, simulate_multiset_with_set
from repro.execution.adversary import port_numberings_to_check
from repro.execution.runner import run
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    figure9_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.ports import random_port_numbering
from repro.machines.algorithm import MultisetAlgorithm, Output
from repro.machines.models import ReceiveMode, SendMode
from repro.machines.multiset import FrozenMultiset


class TwoRoundMultisetAlgorithm(MultisetAlgorithm):
    """Round 1: exchange degrees; round 2: exchange the gathered multisets.

    The output is the multiset of the neighbours' degree-multisets -- a
    genuinely two-round Multiset computation used to exercise the phase-2
    simulation over several rounds.
    """

    def initial_state(self, degree):
        return ("round1", degree)

    def send(self, state, port):
        if state[0] == "round1":
            return state[1]
        return state[1]

    def transition(self, state, received):
        if state[0] == "round1":
            return ("round2", tuple(sorted(received)))
        return Output(tuple(sorted(tuple(sorted(item)) if isinstance(item, tuple) else item for item in received)))


class TestConstruction:
    def test_rejects_non_multiset_algorithms(self):
        from repro.algorithms.leaf_election import LeafElectionAlgorithm

        with pytest.raises(ValueError):
            simulate_multiset_with_set(LeafElectionAlgorithm(), delta=2)

    def test_rejects_broadcast_algorithms(self):
        with pytest.raises(ValueError):
            simulate_multiset_with_set(OddOddNeighboursAlgorithm(), delta=2)

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            simulate_multiset_with_set(GatherDegreesAlgorithm(), delta=-1)

    def test_resulting_model_is_set(self):
        simulation = simulate_multiset_with_set(GatherDegreesAlgorithm(), delta=3)
        assert simulation.model.receive is ReceiveMode.SET
        assert simulation.model.send is SendMode.PORT
        assert simulation.symmetry_breaking_rounds == 6
        assert simulation.inner.name == "GatherDegreesAlgorithm"


class TestOutputEquivalence:
    @pytest.mark.parametrize(
        "graph",
        [star_graph(3), path_graph(5), cycle_graph(5), complete_graph(4), figure9_graph()],
        ids=["star3", "path5", "cycle5", "K4", "figure9"],
    )
    def test_single_round_inner_is_reproduced_exactly(self, graph, rng):
        inner = GatherDegreesAlgorithm()
        simulation = simulate_multiset_with_set(inner, graph.max_degree())
        for _ in range(3):
            numbering = random_port_numbering(graph, rng)
            assert run(simulation, graph, numbering).outputs == run(inner, graph, numbering).outputs

    def test_two_round_inner_is_reproduced_exactly(self, rng):
        inner = TwoRoundMultisetAlgorithm()
        for graph in (path_graph(4), cycle_graph(4), star_graph(3)):
            simulation = simulate_multiset_with_set(inner, graph.max_degree())
            for _ in range(2):
                numbering = random_port_numbering(graph, rng)
                assert (
                    run(simulation, graph, numbering).outputs
                    == run(inner, graph, numbering).outputs
                )

    def test_exhaustive_over_port_numberings_on_small_graph(self):
        graph = path_graph(3)
        inner = GatherDegreesAlgorithm()
        simulation = simulate_multiset_with_set(inner, graph.max_degree())
        for numbering in port_numberings_to_check(graph):
            assert run(simulation, graph, numbering).outputs == run(inner, graph, numbering).outputs

    def test_isolated_nodes(self):
        graph = Graph(nodes=["a", "b"], edges=[])
        inner = GatherDegreesAlgorithm()
        simulation = simulate_multiset_with_set(inner, delta=0)
        assert run(simulation, graph).outputs == run(inner, graph).outputs


class TestOverhead:
    def test_round_overhead_is_at_most_2_delta_plus_one(self, rng):
        inner = GatherDegreesAlgorithm()
        inner_time = 1
        for graph in (path_graph(4), star_graph(3), figure9_graph()):
            delta = graph.max_degree()
            simulation = simulate_multiset_with_set(inner, delta)
            numbering = random_port_numbering(graph, rng)
            result = run(simulation, graph, numbering)
            assert result.rounds <= inner_time + 2 * delta + 1

    def test_symmetry_breaking_tags_are_distinct(self, rng):
        """Lemma 6: after 2*Delta rounds the (beta, deg, port) tags are distinct."""
        graph = figure9_graph()
        delta = graph.max_degree()
        simulation = simulate_multiset_with_set(GatherDegreesAlgorithm(), delta)
        numbering = random_port_numbering(graph, rng)
        trace = run(simulation, graph, numbering, record_trace=True).trace
        tag_round = 2 * delta + 1
        for node in graph.nodes:
            received = trace.messages_received_by(node, tag_round)
            tags = [message[:4] for message in received.values()]
            assert len(tags) == len(set(tags)) == graph.degree(node)
