"""Tests for Theorem 2, parts 1-2: compiling formulas into local algorithms."""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    odd_odd_gadget_pair,
    path_graph,
    star_graph,
)
from repro.logic.syntax import (
    And,
    Box,
    Diamond,
    GradedDiamond,
    Implies,
    Not,
    Prop,
    Top,
    modal_depth,
)
from repro.machines.models import ProblemClass, ReceiveMode, SendMode
from repro.modal.correspondence import algorithm_matches_formula, formula_output
from repro.modal.formula_to_algorithm import FormulaAlgorithm, algorithm_for_formula
from repro.problems.verification import worst_case_running_time

GRAPHS = (star_graph(3), path_graph(4), cycle_graph(4), path_graph(2), complete_graph(3))


class TestModelSelection:
    def test_algorithm_model_matches_class(self):
        phi = Diamond(Prop("deg1"), index=("*", "*"))
        for problem_class in (ProblemClass.SB, ProblemClass.MB):
            algorithm = algorithm_for_formula(phi, problem_class)
            assert algorithm.model == problem_class.model

    def test_broadcast_classes_broadcast(self):
        phi = Diamond(Prop("deg1"), index=("*", "*"))
        algorithm = algorithm_for_formula(phi, ProblemClass.SB)
        assert algorithm.model.send is SendMode.BROADCAST
        assert algorithm.model.receive is ReceiveMode.SET


class TestIndexValidation:
    def test_sb_rejects_port_indices(self):
        with pytest.raises(ValueError):
            algorithm_for_formula(Diamond(Prop("p"), index=(1, 2)), ProblemClass.SB)

    def test_vv_requires_both_ports(self):
        with pytest.raises(ValueError):
            algorithm_for_formula(Diamond(Prop("p"), index=("*", 2)), ProblemClass.VV)
        with pytest.raises(ValueError):
            algorithm_for_formula(Diamond(Prop("p"), index=(1, "*")), ProblemClass.VV)

    def test_sv_rejects_incoming_port(self):
        with pytest.raises(ValueError):
            algorithm_for_formula(Diamond(Prop("p"), index=(1, 2)), ProblemClass.SV)

    def test_vb_rejects_outgoing_port(self):
        with pytest.raises(ValueError):
            algorithm_for_formula(Diamond(Prop("p"), index=(1, 2)), ProblemClass.VB)

    def test_set_classes_reject_counting(self):
        graded = GradedDiamond(Prop("p"), grade=2, index=("*", "*"))
        with pytest.raises(ValueError):
            algorithm_for_formula(graded, ProblemClass.SB)
        graded_sv = GradedDiamond(Prop("p"), grade=2, index=("*", 1))
        with pytest.raises(ValueError):
            algorithm_for_formula(graded_sv, ProblemClass.SV)

    def test_malformed_index_rejected(self):
        with pytest.raises(ValueError):
            algorithm_for_formula(Diamond(Prop("p"), index="weird"), ProblemClass.SB)


class TestAgreementWithSemantics:
    @pytest.mark.parametrize(
        "problem_class, formula",
        [
            (ProblemClass.SB, Diamond(Prop("deg1"), index=("*", "*"))),
            (ProblemClass.SB, Diamond(Diamond(Prop("deg3"), index=("*", "*")), index=("*", "*"))),
            (ProblemClass.SB, Not(Diamond(Prop("deg2"), index=("*", "*")))),
            (ProblemClass.MB, GradedDiamond(Prop("deg1"), grade=2, index=("*", "*"))),
            (ProblemClass.MB, GradedDiamond(Prop("deg2"), grade=2, index=(None))),
            (ProblemClass.VB, And(Prop("deg2"), Diamond(Prop("deg1"), index=(1, "*")))),
            (ProblemClass.VB, Box(Prop("deg2"), index=(2, "*"))),
            (ProblemClass.SV, And(Prop("deg1"), Diamond(Top(), index=("*", 1)))),
            (ProblemClass.SV, Diamond(Diamond(Prop("deg1"), index=("*", 2)), index=("*", 1))),
            (ProblemClass.MV, GradedDiamond(Prop("deg1"), grade=2, index=("*", 1))),
            (ProblemClass.VV, And(Prop("deg2"), Diamond(Prop("deg1"), index=(1, 2)))),
            (ProblemClass.VV, Implies(Diamond(Prop("deg1"), index=(1, 1)), Prop("deg3"))),
            (ProblemClass.VVC, Diamond(Diamond(Prop("deg1"), index=(2, 2)), index=(1, 1))),
        ],
        ids=lambda value: str(value),
    )
    def test_compiled_algorithm_matches_extension(self, problem_class, formula):
        algorithm = algorithm_for_formula(formula, problem_class)
        assert algorithm_matches_formula(algorithm, formula, problem_class, GRAPHS)

    def test_running_time_is_bounded_by_modal_depth(self):
        formula = Diamond(Diamond(Prop("deg1"), index=("*", "*")), index=("*", "*"))
        algorithm = algorithm_for_formula(formula, ProblemClass.SB)
        runtime = worst_case_running_time(algorithm, GRAPHS, exhaustive_limit=50, samples=5)
        assert runtime <= modal_depth(formula) + 1
        assert algorithm.running_time_bound == modal_depth(formula) + 1

    def test_depth_zero_formula_needs_no_communication(self):
        algorithm = algorithm_for_formula(Prop("deg2"), ProblemClass.SB)
        runtime = worst_case_running_time(algorithm, GRAPHS, exhaustive_limit=20, samples=3)
        assert runtime == 0

    def test_odd_odd_problem_as_a_gml_formula(self):
        """The Theorem 13 problem written directly in GML and compiled to MB."""
        odd_degree = Prop("deg1") | Prop("deg3")
        # "an odd number of odd-degree neighbours" for maximum degree 3:
        # exactly 1 or exactly 3.
        at_least = lambda k: GradedDiamond(odd_degree, grade=k, index=("*", "*"))
        formula = (at_least(1) & ~at_least(2)) | at_least(3)
        algorithm = algorithm_for_formula(formula, ProblemClass.MB)
        graph, first, second = odd_odd_gadget_pair()
        from repro.execution.runner import run
        from repro.problems.separating import OddOddNeighbours

        outputs = run(algorithm, graph).outputs
        problem = OddOddNeighbours()
        assert outputs == {
            node: problem.expected_output(graph, node) for node in graph.nodes
        }
        assert outputs[first] != outputs[second]


class TestMetadata:
    def test_name_mentions_class_and_formula(self):
        algorithm = algorithm_for_formula(Prop("deg1"), ProblemClass.MB)
        assert "MB" in algorithm.name and "deg1" in algorithm.name

    def test_formula_and_class_accessors(self):
        phi = Diamond(Prop("deg1"), index=("*", "*"))
        algorithm = FormulaAlgorithm(phi, ProblemClass.SB)
        assert algorithm.formula == phi
        assert algorithm.problem_class is ProblemClass.SB
