"""Unit tests for port numberings (Section 1.2)."""

from __future__ import annotations

import pytest

from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.ports import (
    PortNumbering,
    all_port_numberings,
    consistent_port_numbering,
    count_port_numberings,
    local_type,
    random_port_numbering,
)


class TestConstruction:
    def test_outgoing_must_enumerate_neighbours(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            PortNumbering(graph, {0: (1,), 1: (0, 0), 2: (1,)})

    def test_missing_assignment_raises(self):
        graph = path_graph(2)
        with pytest.raises(ValueError):
            PortNumbering(graph, {0: (1,)})

    def test_incoming_defaults_to_outgoing(self):
        graph = cycle_graph(4)
        numbering = PortNumbering(graph, {node: graph.neighbors(node) for node in graph.nodes})
        assert numbering.is_consistent()


class TestBijectionProperty:
    @pytest.mark.parametrize("factory", [path_graph, cycle_graph], ids=["path", "cycle"])
    def test_mapping_is_a_bijection_on_ports(self, factory, rng):
        graph = factory(5)
        numbering = random_port_numbering(graph, rng)
        mapping = numbering.as_mapping()
        assert set(mapping.keys()) == set(numbering.ports())
        assert set(mapping.values()) == set(numbering.ports())

    def test_induced_relation_is_adjacency(self, rng):
        graph = star_graph(4)
        numbering = random_port_numbering(graph, rng)
        induced = {(u, v) for (u, _), (v, _) in numbering.as_mapping().items()}
        adjacency = {(u, v) for u, v in graph.edges} | {(v, u) for u, v in graph.edges}
        assert induced == adjacency

    def test_apply_and_inverse_are_inverse(self, rng):
        graph = complete_graph(4)
        numbering = random_port_numbering(graph, rng)
        for port in numbering.ports():
            target = numbering(port)
            assert numbering.inverse(*target) == port


class TestConsistency:
    def test_canonical_numbering_is_consistent(self, small_graphs):
        for graph in small_graphs:
            assert consistent_port_numbering(graph).is_consistent()

    def test_consistent_means_involution(self, rng):
        graph = cycle_graph(5)
        numbering = random_port_numbering(graph, rng, consistent=True)
        for port in numbering.ports():
            assert numbering(numbering(port)) == port

    def test_inconsistent_numbering_detected(self):
        graph = path_graph(3)
        # Node 1 has two neighbours; swap only its incoming order.
        outgoing = {0: (1,), 1: (0, 2), 2: (1,)}
        incoming = {0: (1,), 1: (2, 0), 2: (1,)}
        numbering = PortNumbering(graph, outgoing, incoming)
        assert not numbering.is_consistent()

    def test_with_incoming_changes_only_input_side(self):
        graph = path_graph(3)
        base = consistent_port_numbering(graph)
        changed = base.with_incoming({0: (1,), 1: (2, 0), 2: (1,)})
        assert changed.outgoing_assignment() == base.outgoing_assignment()
        assert changed.incoming_assignment() != base.incoming_assignment()


class TestPortLookups:
    def test_outgoing_and_incoming_ports(self):
        graph = star_graph(3)
        numbering = consistent_port_numbering(graph)
        for leaf in (1, 2, 3):
            port = numbering.outgoing_port(0, leaf)
            assert numbering.outgoing_neighbor(0, port) == leaf
            assert numbering.incoming_port(leaf, 0) == 1
            assert numbering.incoming_neighbor(leaf, 1) == 0

    def test_apply_reports_receiver_port(self):
        graph = path_graph(2)
        numbering = consistent_port_numbering(graph)
        assert numbering.apply(0, 1) == (1, 1)


class TestEnumeration:
    def test_count_matches_enumeration_consistent(self):
        graph = star_graph(3)
        numberings = list(all_port_numberings(graph, consistent_only=True))
        assert len(numberings) == count_port_numberings(graph, consistent_only=True) == 6
        assert all(p.is_consistent() for p in numberings)

    def test_count_matches_enumeration_general(self):
        graph = path_graph(3)
        numberings = list(all_port_numberings(graph))
        assert len(numberings) == count_port_numberings(graph) == 4

    def test_enumeration_yields_distinct_numberings(self):
        graph = cycle_graph(3)
        numberings = list(all_port_numberings(graph, consistent_only=True))
        assert len(numberings) == len(set(numberings))

    def test_general_count_is_square_of_consistent_count(self):
        graph = cycle_graph(4)
        consistent = count_port_numberings(graph, consistent_only=True)
        general = count_port_numberings(graph)
        assert general == consistent**2


class TestRandomNumbering:
    def test_random_numbering_is_valid(self, rng, small_graphs):
        for graph in small_graphs:
            numbering = random_port_numbering(graph, rng)
            mapping = numbering.as_mapping()
            assert set(mapping.values()) == set(numbering.ports())

    def test_random_consistent_numbering_is_consistent(self, rng, small_graphs):
        for graph in small_graphs:
            assert random_port_numbering(graph, rng, consistent=True).is_consistent()


class TestLocalTypes:
    def test_local_type_under_consistent_numbering(self):
        graph = star_graph(3)
        numbering = consistent_port_numbering(graph)
        # Every leaf is reached through the centre's distinct ports, and each
        # leaf's single port leads back to the centre's matching port.
        centre_type = local_type(numbering, 0)
        assert centre_type == (1, 1, 1)
        leaf_types = {local_type(numbering, leaf) for leaf in (1, 2, 3)}
        assert leaf_types == {(1, 0, 0), (2, 0, 0), (3, 0, 0)}

    def test_local_type_padding(self):
        graph = path_graph(3)
        numbering = consistent_port_numbering(graph)
        assert len(local_type(numbering, 0, delta=5)) == 5

    def test_equality_and_hash(self):
        graph = path_graph(2)
        assert consistent_port_numbering(graph) == consistent_port_numbering(graph)
        assert hash(consistent_port_numbering(graph)) == hash(consistent_port_numbering(graph))
