"""Unit tests for the hierarchy bookkeeping (Figure 5)."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import (
    LEVEL_NAMES,
    LINEAR_ORDER,
    PROVEN_EQUALITIES,
    PROVEN_SEPARATIONS,
    are_equal,
    collapse,
    distinct_levels,
    is_contained_in,
    is_strictly_contained_in,
    level_of,
    separation_between,
    summary,
    trivially_contained_in,
)
from repro.machines.models import ProblemClass


class TestLevels:
    def test_every_class_has_a_level(self):
        for problem_class in ProblemClass:
            assert 0 <= level_of(problem_class) <= 3

    def test_level_assignments_match_the_paper(self):
        assert level_of(ProblemClass.SB) == 0
        assert level_of(ProblemClass.MB) == level_of(ProblemClass.VB) == 1
        assert (
            level_of(ProblemClass.SV)
            == level_of(ProblemClass.MV)
            == level_of(ProblemClass.VV)
            == 2
        )
        assert level_of(ProblemClass.VVC) == 3

    def test_four_levels_with_names(self):
        assert len(LINEAR_ORDER) == len(LEVEL_NAMES) == 4
        assert distinct_levels() == LINEAR_ORDER


class TestQueries:
    def test_containment_is_a_total_preorder(self):
        classes = list(ProblemClass)
        for first in classes:
            for second in classes:
                assert is_contained_in(first, second) or is_contained_in(second, first)

    def test_equalities(self):
        assert are_equal(ProblemClass.MB, ProblemClass.VB)
        assert are_equal(ProblemClass.SV, ProblemClass.VV)
        assert not are_equal(ProblemClass.SB, ProblemClass.MB)

    def test_strict_containments(self):
        assert is_strictly_contained_in(ProblemClass.SB, ProblemClass.MB)
        assert is_strictly_contained_in(ProblemClass.VB, ProblemClass.SV)
        assert is_strictly_contained_in(ProblemClass.VV, ProblemClass.VVC)
        assert not is_strictly_contained_in(ProblemClass.MV, ProblemClass.SV)

    def test_collapse_representatives(self):
        assert collapse(ProblemClass.MV) is ProblemClass.SV
        assert collapse(ProblemClass.VB) is ProblemClass.VB
        assert collapse(ProblemClass.MB) is ProblemClass.VB
        assert collapse(ProblemClass.VVC) is ProblemClass.VVC

    def test_proven_results_are_consistent_with_levels(self):
        for equality in PROVEN_EQUALITIES:
            levels = {level_of(cls) for cls in equality}
            assert len(levels) == 1
        for smaller, larger, _ in PROVEN_SEPARATIONS:
            assert level_of(smaller) + 1 == level_of(larger)

    def test_separation_between(self):
        assert separation_between(ProblemClass.MB, ProblemClass.VB) is None
        assert "Theorem 13" in separation_between(ProblemClass.SB, ProblemClass.MB)
        assert "Theorem 11" in separation_between(ProblemClass.VB, ProblemClass.SV)
        assert "Theorem 17" in separation_between(ProblemClass.VV, ProblemClass.VVC)
        # For distant classes the lowest separating theorem is reported.
        assert "Theorem 13" in separation_between(ProblemClass.SB, ProblemClass.VVC)


class TestConsistencyWithTrivialOrder:
    def test_proven_order_refines_the_trivial_order(self):
        """Whatever was trivially contained is still contained after the collapse."""
        for smaller in ProblemClass:
            for larger in ProblemClass:
                if trivially_contained_in(smaller, larger):
                    assert is_contained_in(smaller, larger)

    def test_collapse_adds_new_containments(self):
        # VB ⊆ SV is *not* trivial but holds in the proven order.
        assert not trivially_contained_in(ProblemClass.VB, ProblemClass.SV)
        assert is_contained_in(ProblemClass.VB, ProblemClass.SV)


class TestSummary:
    def test_summary_shape(self):
        report = summary()
        assert report.number_of_distinct_classes() == 4
        assert report.levels == LINEAR_ORDER

    def test_describe_matches_the_abstract(self):
        text = summary().describe()
        assert text.startswith("SB")
        assert text.endswith("VVc")
        assert text.count("⊊") == 3
        assert text.count("=") == 3
