"""Unit tests for matchings, 1-factorisations and vertex covers."""

from __future__ import annotations

import pytest

from repro.graphs.covers import bipartite_double_cover
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    figure9_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.matching import (
    injection_exists,
    has_perfect_matching,
    is_matching,
    is_perfect_matching,
    is_vertex_cover,
    maximal_matching,
    maximum_matching,
    minimum_vertex_cover,
    one_factorisation,
    perfect_matching,
    vertex_cover_from_matching,
)


class TestMatchings:
    def test_maximum_matching_path(self):
        assert len(maximum_matching(path_graph(4))) == 2
        assert len(maximum_matching(path_graph(5))) == 2

    def test_maximum_matching_is_a_matching(self):
        graph = grid_graph(3, 3)
        assert is_matching(graph, maximum_matching(graph))

    def test_maximal_matching_is_maximal(self):
        graph = cycle_graph(7)
        matching = maximal_matching(graph)
        matched = {node for edge in matching for node in edge}
        for u, v in graph.edges:
            assert u in matched or v in matched

    def test_is_matching_rejects_overlap(self):
        graph = path_graph(3)
        assert not is_matching(graph, [frozenset({0, 1}), frozenset({1, 2})])

    def test_is_matching_rejects_non_edges(self):
        graph = path_graph(3)
        assert not is_matching(graph, [frozenset({0, 2})])


class TestPerfectMatchings:
    def test_even_cycle_has_perfect_matching(self):
        assert has_perfect_matching(cycle_graph(6))
        assert is_perfect_matching(cycle_graph(6), perfect_matching(cycle_graph(6)))

    def test_odd_number_of_nodes_has_none(self):
        assert not has_perfect_matching(cycle_graph(5))

    def test_star_has_none(self):
        assert not has_perfect_matching(star_graph(3))

    def test_figure9_has_none(self):
        assert not has_perfect_matching(figure9_graph())

    def test_perfect_matching_raises_when_absent(self):
        with pytest.raises(ValueError):
            perfect_matching(star_graph(3))


class TestOneFactorisation:
    @pytest.mark.parametrize(
        "graph",
        [complete_bipartite_graph(3, 3), cycle_graph(6), bipartite_double_cover(cycle_graph(5))],
        ids=["K33", "C6", "double-cover-C5"],
    )
    def test_factors_partition_the_edges(self, graph):
        factors = one_factorisation(graph)
        degree = graph.degree(graph.nodes[0])
        assert len(factors) == degree
        all_edges = [edge for factor in factors for edge in factor]
        assert len(all_edges) == graph.number_of_edges
        assert len(set(all_edges)) == graph.number_of_edges
        for factor in factors:
            assert is_perfect_matching(graph, factor)

    def test_double_cover_of_figure9_is_factorisable(self):
        double = bipartite_double_cover(figure9_graph())
        factors = one_factorisation(double)
        assert len(factors) == 3

    def test_requires_regularity(self):
        with pytest.raises(ValueError):
            one_factorisation(star_graph(3))

    def test_requires_bipartiteness(self):
        with pytest.raises(ValueError):
            one_factorisation(complete_graph(4))


class TestInjectionExists:
    """The Hall-condition helper behind graded-bisimulation certificates."""

    def test_empty_sources_always_inject(self):
        assert injection_exists((), (), set())
        assert injection_exists((), ("t",), set())

    def test_more_sources_than_targets_never_inject(self):
        assert not injection_exists(("a", "b"), ("t",), {("a", "t"), ("b", "t")})

    def test_distinct_pairing_found_greedily(self):
        allowed = {("a", "x"), ("b", "y"), ("c", "z")}
        assert injection_exists(("a", "b", "c"), ("x", "y", "z"), allowed)

    def test_greedy_conflict_resolved_by_matching(self):
        # Greedy first-fit assigns a->x, then b has only x left and fails;
        # the augmenting path a->y frees x for b.
        allowed = {("a", "x"), ("a", "y"), ("b", "x")}
        assert injection_exists(("a", "b"), ("x", "y"), allowed)

    def test_hall_violation_detected(self):
        # Both sources are only allowed the single target x.
        allowed = {("a", "x"), ("b", "x")}
        assert not injection_exists(("a", "b"), ("x", "y"), allowed)

    def test_source_with_no_allowed_target_fails_fast(self):
        assert not injection_exists(("a", "b"), ("x", "y"), {("a", "x")})

    def test_deep_augmenting_path_does_not_overflow_the_stack(self):
        # s_i may use {t_i, t_{i+1}} except the last source, which only
        # accepts t_0: the single augmenting path re-threads every source,
        # so its length equals the instance size (beyond the default
        # recursion limit for a recursive matcher).
        size = 2500
        sources = tuple(f"s{i}" for i in range(size))
        targets = tuple(f"t{j}" for j in range(size))
        allowed = {(f"s{i}", f"t{i}") for i in range(size - 1)}
        allowed |= {(f"s{i}", f"t{i + 1}") for i in range(size - 1)}
        allowed.add((f"s{size - 1}", "t0"))
        assert injection_exists(sources, targets, allowed)
        # Removing the chain's final free target makes the instance infeasible.
        infeasible = {pair for pair in allowed if pair[1] != f"t{size - 1}"}
        assert not injection_exists(sources, targets, infeasible)

    def test_agrees_with_networkx_matching_on_random_instances(self):
        import itertools
        import random

        import networkx as nx

        for seed in range(30):
            rng = random.Random(seed)
            sources = tuple(f"s{i}" for i in range(rng.randrange(0, 5)))
            targets = tuple(f"t{j}" for j in range(rng.randrange(0, 6)))
            allowed = {
                (s, t)
                for s, t in itertools.product(sources, targets)
                if rng.random() < 0.4
            }
            graph = nx.Graph()
            graph.add_nodes_from(sources, bipartite=0)
            graph.add_nodes_from(targets, bipartite=1)
            graph.add_edges_from(allowed)
            matching = nx.bipartite.maximum_matching(graph, top_nodes=sources)
            matched = sum(1 for node in matching if node in sources)
            assert injection_exists(sources, targets, allowed) == (
                matched == len(sources)
            ), (sources, targets, allowed)


class TestVertexCovers:
    def test_is_vertex_cover(self):
        graph = path_graph(4)
        assert is_vertex_cover(graph, {1, 2})
        assert not is_vertex_cover(graph, {0, 3})

    def test_minimum_vertex_cover_sizes(self):
        assert len(minimum_vertex_cover(path_graph(4))) == 2
        assert len(minimum_vertex_cover(star_graph(5))) == 1
        assert len(minimum_vertex_cover(cycle_graph(5))) == 3
        assert len(minimum_vertex_cover(complete_graph(4))) == 3

    def test_minimum_vertex_cover_empty_graph(self):
        assert minimum_vertex_cover(Graph(nodes=[1, 2, 3])) == frozenset()

    def test_minimum_cover_is_a_cover(self):
        graph = grid_graph(2, 3)
        assert is_vertex_cover(graph, minimum_vertex_cover(graph))

    def test_cover_from_matching_is_cover_and_2_approx(self):
        graph = grid_graph(3, 3)
        cover = vertex_cover_from_matching(graph, maximal_matching(graph))
        assert is_vertex_cover(graph, cover)
        assert len(cover) <= 2 * len(minimum_vertex_cover(graph))
