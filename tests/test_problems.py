"""Unit tests for graph problems and adversarial verification."""

from __future__ import annotations

import pytest

from repro.algorithms.basic import ConstantAlgorithm, DegreeAlgorithm
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.parity import OddOddNeighboursAlgorithm, SomeOddNeighbourAlgorithm
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    figure9_graph,
    odd_odd_gadget_pair,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.problems.base import enumerate_solutions, has_solution
from repro.problems.classic import (
    DegreeLabelling,
    DominatingSet,
    EulerianDecision,
    MaximalIndependentSet,
    VertexColouring,
    VertexCover,
)
from repro.problems.separating import (
    LeafElectionInStars,
    OddOddNeighbours,
    SymmetryBreakingInMatchlessRegular,
    in_matchless_family,
    is_star,
)
from repro.problems.verification import find_counterexample, solves


class TestMaximalIndependentSet:
    def test_valid_solution(self):
        graph = path_graph(4)
        assert MaximalIndependentSet().is_solution(graph, {0: 1, 1: 0, 2: 1, 3: 0})

    def test_not_independent(self):
        graph = path_graph(3)
        assert not MaximalIndependentSet().is_solution(graph, {0: 1, 1: 1, 2: 0})

    def test_not_maximal(self):
        graph = path_graph(3)
        assert not MaximalIndependentSet().is_solution(graph, {0: 0, 1: 0, 2: 0})

    def test_enumeration_on_triangle(self):
        graph = cycle_graph(3)
        solutions = list(enumerate_solutions(MaximalIndependentSet(), graph))
        assert len(solutions) == 3  # each single vertex


class TestVertexColouring:
    def test_proper_colouring_accepted(self):
        graph = cycle_graph(4)
        assert VertexColouring(2).is_solution(graph, {0: 1, 1: 2, 2: 1, 3: 2})

    def test_monochromatic_edge_rejected(self):
        graph = path_graph(2)
        assert not VertexColouring(3).is_solution(graph, {0: 1, 1: 1})

    def test_colours_outside_palette_rejected(self):
        graph = path_graph(2)
        assert not VertexColouring(2).is_solution(graph, {0: 1, 1: 5})

    def test_odd_cycle_not_2_colourable(self):
        assert not has_solution(VertexColouring(2), cycle_graph(5))
        assert has_solution(VertexColouring(3), cycle_graph(5))

    def test_invalid_palette(self):
        with pytest.raises(ValueError):
            VertexColouring(0)


class TestEulerianDecision:
    def test_yes_instance_needs_all_ones(self):
        graph = cycle_graph(4)
        problem = EulerianDecision()
        assert problem.is_solution(graph, {node: 1 for node in graph.nodes})
        assert not problem.is_solution(graph, {0: 0, 1: 1, 2: 1, 3: 1})

    def test_no_instance_needs_a_zero(self):
        graph = path_graph(3)
        problem = EulerianDecision()
        assert problem.is_solution(graph, {0: 0, 1: 1, 2: 1})
        assert not problem.is_solution(graph, {node: 1 for node in graph.nodes})


class TestVertexCoverProblem:
    def test_cover_validity(self):
        graph = path_graph(4)
        assert VertexCover().is_solution(graph, {0: 0, 1: 1, 2: 1, 3: 0})
        assert not VertexCover().is_solution(graph, {0: 1, 1: 0, 2: 0, 3: 1})

    def test_approximation_ratio(self):
        graph = star_graph(4)
        everything = {node: 1 for node in graph.nodes}
        assert VertexCover().is_solution(graph, everything)
        assert not VertexCover(approximation_ratio=2).is_solution(graph, everything)
        assert VertexCover(approximation_ratio=2).is_solution(graph, {0: 1, 1: 1, 2: 0, 3: 0, 4: 0})

    def test_ratio_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            VertexCover(approximation_ratio=0.5)


class TestOtherClassics:
    def test_dominating_set(self):
        graph = star_graph(3)
        assert DominatingSet().is_solution(graph, {0: 1, 1: 0, 2: 0, 3: 0})
        assert not DominatingSet().is_solution(graph, {0: 0, 1: 1, 2: 0, 3: 0})

    def test_degree_labelling(self):
        graph = path_graph(3)
        assert DegreeLabelling().is_solution(graph, {0: 1, 1: 2, 2: 1})
        assert not DegreeLabelling().is_solution(graph, {0: 1, 1: 1, 2: 1})


class TestSeparatingProblems:
    def test_is_star(self):
        assert is_star(star_graph(3)) is not None
        assert is_star(path_graph(3)) is not None  # a path of 3 nodes is the 2-star
        assert is_star(cycle_graph(4)) is None
        assert is_star(path_graph(2)) is None  # k = 1 is excluded

    def test_leaf_election_on_stars(self):
        problem = LeafElectionInStars()
        graph = star_graph(3)
        assert problem.is_solution(graph, {0: 0, 1: 1, 2: 0, 3: 0})
        assert not problem.is_solution(graph, {0: 0, 1: 1, 2: 1, 3: 0})
        assert not problem.is_solution(graph, {0: 1, 1: 1, 2: 0, 3: 0})
        assert not problem.is_solution(graph, {0: 0, 1: 0, 2: 0, 3: 0})

    def test_leaf_election_unconstrained_off_stars(self):
        problem = LeafElectionInStars()
        graph = cycle_graph(4)
        assert problem.is_solution(graph, {node: 0 for node in graph.nodes})

    def test_odd_odd_unique_solution(self):
        problem = OddOddNeighbours()
        graph, first, second = odd_odd_gadget_pair()
        solutions = list(enumerate_solutions(problem, graph))
        assert len(solutions) == 1
        assert solutions[0][first] == 1 and solutions[0][second] == 0

    def test_in_matchless_family(self):
        assert in_matchless_family(figure9_graph())
        assert not in_matchless_family(cycle_graph(4))      # even-regular
        assert not in_matchless_family(complete_graph(4))   # has a perfect matching
        assert not in_matchless_family(path_graph(3))       # not regular

    def test_symmetry_breaking_problem(self):
        problem = SymmetryBreakingInMatchlessRegular()
        graph = figure9_graph()
        non_constant = {node: (1 if node == "z" else 0) for node in graph.nodes}
        constant = {node: 1 for node in graph.nodes}
        assert problem.is_solution(graph, non_constant)
        assert not problem.is_solution(graph, constant)
        # Off the family anything goes.
        assert problem.is_solution(cycle_graph(4), {node: 1 for node in cycle_graph(4).nodes})


class TestVerification:
    def test_leaf_election_solved_by_set_algorithm(self):
        graphs = [star_graph(2), star_graph(3), path_graph(4), cycle_graph(4)]
        assert solves(LeafElectionAlgorithm(), LeafElectionInStars(), graphs)

    def test_constant_algorithm_does_not_solve_leaf_election(self):
        graphs = [star_graph(3)]
        counterexample = find_counterexample(ConstantAlgorithm(0), LeafElectionInStars(), graphs)
        assert counterexample is not None
        graph, _numbering, outputs = counterexample
        assert outputs == {node: 0 for node in graph.nodes}

    def test_some_odd_neighbour_does_not_solve_odd_odd(self):
        graph = odd_odd_gadget_pair()[0]
        assert not solves(SomeOddNeighbourAlgorithm(), OddOddNeighbours(), [graph])

    def test_odd_odd_algorithm_solves_odd_odd(self):
        graphs = [path_graph(4), star_graph(3), cycle_graph(5), odd_odd_gadget_pair()[0]]
        assert solves(OddOddNeighboursAlgorithm(), OddOddNeighbours(), graphs)

    def test_degree_algorithm_solves_degree_labelling(self):
        graphs = [path_graph(3), star_graph(4), complete_graph(4)]
        assert solves(DegreeAlgorithm(), DegreeLabelling(), graphs)

    def test_non_halting_counts_as_failure(self):
        from repro.machines.algorithm import MultisetBroadcastAlgorithm

        class Forever(MultisetBroadcastAlgorithm):
            def initial_state(self, degree):
                return 0

            def broadcast(self, state):
                return "m"

            def transition(self, state, received):
                return state + 1

        counterexample = find_counterexample(
            Forever(), DegreeLabelling(), [cycle_graph(3)], max_rounds=5
        )
        assert counterexample is not None
        assert counterexample[2] is None
