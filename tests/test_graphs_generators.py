"""Unit tests for the graph generators, including the paper's witness graphs."""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    all_graphs_with_max_degree,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    double_cover_graph,
    figure9_graph,
    grid_graph,
    hypercube_graph,
    matchless_regular_graph,
    odd_odd_gadget_pair,
    path_graph,
    random_bounded_degree_graph,
    random_graph,
    random_lift,
    random_regular_graph,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.matching import has_perfect_matching
from repro.problems.separating import OddOddNeighbours


class TestStandardFamilies:
    def test_path(self):
        graph = path_graph(5)
        assert graph.number_of_edges == 4
        assert graph.degree(0) == 1 and graph.degree(2) == 2

    def test_path_degenerate(self):
        assert path_graph(0).number_of_nodes == 0
        assert path_graph(1).number_of_edges == 0
        with pytest.raises(ValueError):
            path_graph(-1)

    def test_cycle(self):
        graph = cycle_graph(6)
        assert graph.is_regular(2)
        assert graph.number_of_edges == 6
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        graph = star_graph(5)
        assert graph.degree(0) == 5
        assert all(graph.degree(leaf) == 1 for leaf in range(1, 6))
        with pytest.raises(ValueError):
            star_graph(0)

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.is_regular(4)
        assert graph.number_of_edges == 10

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(2, 3)
        assert graph.number_of_edges == 6
        assert graph.is_bipartite()

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.number_of_nodes == 12
        assert graph.number_of_edges == 3 * 3 + 2 * 4
        assert graph.is_bipartite()

    def test_hypercube(self):
        graph = hypercube_graph(3)
        assert graph.number_of_nodes == 8
        assert graph.is_regular(3)
        assert graph.is_bipartite()

    def test_random_regular(self):
        graph = random_regular_graph(3, 8, seed=1)
        assert graph.is_regular(3)
        assert graph.number_of_nodes == 8

    def test_random_graph_probability_extremes(self):
        assert random_graph(5, 0.0, seed=1).number_of_edges == 0
        assert random_graph(5, 1.0, seed=1).number_of_edges == 10

    def test_random_bounded_degree_respects_bound(self):
        for seed in range(5):
            graph = random_bounded_degree_graph(15, 3, seed=seed)
            assert graph.max_degree() <= 3


class TestCampaignFamilies:
    """The scenario-diversity generators added for the campaign registry."""

    def test_circulant_is_cycle_for_jump_one(self):
        assert circulant_graph(6, (1,)) == cycle_graph(6)

    def test_circulant_regularity_and_port_count(self):
        graph = circulant_graph(10, (1, 3))
        assert graph.is_regular(4)
        # total port count = sum of degrees = 2 * |E|
        assert sum(graph.degrees().values()) == 2 * graph.number_of_edges == 40

    def test_circulant_half_jump_contributes_single_edge(self):
        graph = circulant_graph(8, (4,))
        assert graph.is_regular(1)

    def test_circulant_rejects_bad_jumps(self):
        with pytest.raises(ValueError):
            circulant_graph(8, (5,))
        with pytest.raises(ValueError):
            circulant_graph(8, ())

    def test_torus_is_four_regular(self):
        graph = torus_graph(3, 5)
        assert graph.number_of_nodes == 15
        assert graph.is_regular(4)
        assert graph.is_connected()
        assert sum(graph.degrees().values()) == 2 * graph.number_of_edges

    def test_torus_rejects_degenerate_wraps(self):
        with pytest.raises(ValueError):
            torus_graph(2, 5)

    def test_random_tree_is_a_tree(self):
        for n in (1, 2, 3, 9, 20):
            tree = random_tree(n, seed=7)
            assert tree.number_of_nodes == n
            assert tree.number_of_edges == n - 1 if n > 1 else tree.number_of_edges == 0
            assert tree.is_connected()

    def test_random_tree_seed_deterministic(self):
        assert random_tree(15, seed=3) == random_tree(15, seed=3)
        assert random_tree(15, seed=3) != random_tree(15, seed=4)

    def test_double_cover_preserves_degrees(self):
        base = star_graph(4)
        cover = double_cover_graph(base)
        assert cover.number_of_nodes == 2 * base.number_of_nodes
        assert cover.is_bipartite()
        for node in base.nodes:
            assert cover.degree((node, 1)) == base.degree(node)
            assert cover.degree((node, 2)) == base.degree(node)

    def test_random_lift_preserves_degrees(self):
        base = circulant_graph(6, (1, 2))
        lift = random_lift(base, 3, seed=11)
        assert lift.number_of_nodes == 3 * base.number_of_nodes
        assert lift.number_of_edges == 3 * base.number_of_edges
        for node in base.nodes:
            for sheet in range(3):
                assert lift.degree((node, sheet)) == base.degree(node)

    def test_random_lift_seed_deterministic(self):
        base = cycle_graph(5)
        assert random_lift(base, 2, seed=9) == random_lift(base, 2, seed=9)


class TestFigure9Graph:
    def test_structure(self):
        graph = figure9_graph()
        assert graph.number_of_nodes == 16
        assert graph.is_regular(3)
        assert graph.is_connected()

    def test_no_perfect_matching(self):
        assert not has_perfect_matching(figure9_graph())

    def test_removing_centre_leaves_three_odd_components(self):
        graph = figure9_graph()
        without_centre = graph.subgraph(node for node in graph.nodes if node != "z")
        components = without_centre.connected_components()
        assert len(components) == 3
        assert all(len(component) % 2 == 1 for component in components)

    def test_generalisation_requires_odd_copies(self):
        with pytest.raises(ValueError):
            matchless_regular_graph(4)
        graph = matchless_regular_graph(5)
        assert graph.is_connected()
        assert not has_perfect_matching(graph)


class TestOddOddGadget:
    def test_witnesses_have_same_degree(self, odd_odd_witness):
        graph, first, second = odd_odd_witness
        assert graph.degree(first) == graph.degree(second) == 3

    def test_witnesses_require_different_outputs(self, odd_odd_witness):
        graph, first, second = odd_odd_witness
        problem = OddOddNeighbours()
        assert problem.expected_output(graph, first) != problem.expected_output(graph, second)

    def test_graph_has_two_components(self, odd_odd_witness):
        graph, _, _ = odd_odd_witness
        assert len(graph.connected_components()) == 2
        assert graph.max_degree() == 3


class TestExhaustiveEnumeration:
    def test_all_graphs_small(self):
        graphs = all_graphs_with_max_degree(3, 2)
        # 8 graphs on 3 labelled nodes; the triangle has max degree 2, so all qualify.
        assert len(graphs) == 8

    def test_all_graphs_respect_bound(self):
        for graph in all_graphs_with_max_degree(4, 1):
            assert graph.max_degree() <= 1
