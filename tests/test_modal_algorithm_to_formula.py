"""Tests for Theorem 2, parts 3-4: compiling finite-state algorithms into formulas."""

from __future__ import annotations

import pytest

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.logic.syntax import modal_depth
from repro.machines.models import ProblemClass
from repro.machines.state_machine import FiniteStateMachine, algorithm_from_machine
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.correspondence import algorithm_matches_formula

GRAPHS = (path_graph(2), path_graph(3), star_graph(2), cycle_graph(3), cycle_graph(4))


def _some_odd_neighbour_machine(delta: int = 2) -> FiniteStateMachine:
    """Broadcast parity, accept iff some neighbour is odd (an SB machine)."""

    def message(state, port):
        return "O" if state == "odd" else "E"

    def transition(state, vector):
        return 1 if "O" in set(vector) else 0

    return FiniteStateMachine(
        delta_bound=delta,
        intermediate_states=frozenset({"even", "odd"}),
        stopping_states=frozenset({0, 1}),
        messages=frozenset({"E", "O"}),
        initial_states={d: ("odd" if d % 2 else "even") for d in range(delta + 1)},
        message_table=message,
        transition_table=transition,
    )


def _odd_odd_machine(delta: int = 2) -> FiniteStateMachine:
    """Broadcast parity, accept iff the number of odd neighbours is odd (an MB machine)."""

    def message(state, port):
        return "O" if state == "odd" else "E"

    def transition(state, vector):
        return sum(1 for m in vector if m == "O") % 2

    return FiniteStateMachine(
        delta_bound=delta,
        intermediate_states=frozenset({"even", "odd"}),
        stopping_states=frozenset({0, 1}),
        messages=frozenset({"E", "O"}),
        initial_states={d: ("odd" if d % 2 else "even") for d in range(delta + 1)},
        message_table=message,
        transition_table=transition,
    )


def _leaf_election_machine(delta: int = 2) -> FiniteStateMachine:
    """Send the port number through each port; a leaf that hears 1 accepts (an SV machine)."""

    def message(state, port):
        return port

    def transition(state, vector):
        if state != "leaf":
            return 0
        return 1 if 1 in set(vector) else 0

    return FiniteStateMachine(
        delta_bound=delta,
        intermediate_states=frozenset({"leaf", "inner"}),
        stopping_states=frozenset({0, 1}),
        messages=frozenset(range(1, delta + 1)),
        initial_states={0: "inner", 1: "leaf", 2: "inner"},
        message_table=message,
        transition_table=transition,
    )


def _min_degree_parity_machine(delta: int = 2) -> FiniteStateMachine:
    """A Vector machine: accept iff the message received at port 1 is 'O'."""

    def message(state, port):
        return "O" if state == "odd" else "E"

    def transition(state, vector):
        return 1 if vector and vector[0] == "O" else 0

    return FiniteStateMachine(
        delta_bound=delta,
        intermediate_states=frozenset({"even", "odd"}),
        stopping_states=frozenset({0, 1}),
        messages=frozenset({"E", "O"}),
        initial_states={d: ("odd" if d % 2 else "even") for d in range(delta + 1)},
        message_table=message,
        transition_table=transition,
    )


class TestBasicProperties:
    def test_modal_depth_equals_running_time(self):
        machine = _some_odd_neighbour_machine()
        formula = formula_for_machine(machine, ProblemClass.SB, running_time=1)
        assert modal_depth(formula) == 1

    def test_time_zero_formula_is_propositional(self):
        machine = _some_odd_neighbour_machine()
        # With T = 0 no node has halted in an accepting state, so the formula
        # is unsatisfiable (but well-formed and of modal depth 0).
        formula = formula_for_machine(machine, ProblemClass.SB, running_time=0)
        assert modal_depth(formula) == 0

    def test_negative_running_time_rejected(self):
        with pytest.raises(ValueError):
            formula_for_machine(_some_odd_neighbour_machine(), ProblemClass.SB, running_time=-1)


class TestCorrectnessPerClass:
    @pytest.mark.parametrize(
        "factory, problem_class",
        [
            (_some_odd_neighbour_machine, ProblemClass.SB),
            (_odd_odd_machine, ProblemClass.MB),
            (_leaf_election_machine, ProblemClass.SV),
            (_leaf_election_machine, ProblemClass.MV),
            (_min_degree_parity_machine, ProblemClass.VB),
            (_min_degree_parity_machine, ProblemClass.VV),
        ],
        ids=["SB", "MB", "SV", "MV", "VB", "VV"],
    )
    def test_formula_matches_machine(self, factory, problem_class):
        machine = factory()
        formula = formula_for_machine(machine, problem_class, running_time=1)
        wrapped = algorithm_from_machine(machine.as_state_machine())
        assert algorithm_matches_formula(
            wrapped, formula, problem_class, GRAPHS, exhaustive_limit=120, samples=8
        )

    def test_formula_matches_machine_on_vvc(self):
        machine = _min_degree_parity_machine()
        formula = formula_for_machine(machine, ProblemClass.VVC, running_time=1)
        wrapped = algorithm_from_machine(machine.as_state_machine())
        assert algorithm_matches_formula(
            wrapped, formula, ProblemClass.VVC, GRAPHS, exhaustive_limit=60, samples=5
        )


class TestRoundTrip:
    def test_machine_formula_machine_round_trip(self):
        """Compile a machine to a formula, the formula back to an algorithm, compare."""
        from repro.execution.runner import run
        from repro.graphs.ports import random_port_numbering
        from repro.modal.formula_to_algorithm import algorithm_for_formula
        import random

        machine = _odd_odd_machine()
        formula = formula_for_machine(machine, ProblemClass.MB, running_time=1)
        recompiled = algorithm_for_formula(formula, ProblemClass.MB)
        original = algorithm_from_machine(machine.as_state_machine())
        rng = random.Random(7)
        for graph in GRAPHS:
            numbering = random_port_numbering(graph, rng)
            original_outputs = run(original, graph, numbering).outputs
            recompiled_outputs = run(recompiled, graph, numbering).outputs
            assert {n: v for n, v in original_outputs.items()} == {
                n: 1 if v == 1 else 0 for n, v in recompiled_outputs.items()
            }
