"""Differential tests: compiled logic engine vs the seed reference oracles.

The compiled bitset model checker and the signature-hash partition refinement
must be *identical* (not just equivalent) to the seed implementations kept in
``repro.logic.semantics`` / ``repro.logic.bisimulation``: same extensions,
same block numbering.  Randomized models exercise every formula constructor;
Fact 1 is cross-checked structurally against the truncated universal-cover
views of ``repro.graphs.covers``.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs.covers import view_classes
from repro.graphs.generators import random_bounded_degree_graph, random_regular_graph
from repro.logic.bisimulation import (
    are_bisimilar,
    bisimilarity_classes,
    bisimilarity_partition,
    bounded_bisimilarity_partition,
    reference_bisimilarity_partition,
    reference_bounded_bisimilarity_partition,
)
from repro.logic.engine import (
    CompiledKripke,
    check_many,
    check_sweep,
    compile_kripke,
)
from repro.logic.kripke import KripkeModel
from repro.logic.semantics import (
    equivalent_on,
    extension,
    reference_extension,
    satisfies,
)
from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    Formula,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
)
from repro.modal.encoding import KripkeVariant, kripke_encoding

PROPS = ("p", "q", "unknown-prop")


def random_model(seed: int) -> KripkeModel:
    rng = random.Random(seed)
    n = rng.randrange(1, 14)
    worlds = list(range(n))
    indices = ["a", "b"][: rng.randrange(1, 3)]
    density = rng.choice([0.05, 0.15, 0.4])
    relations = {
        index: [(v, w) for v in worlds for w in worlds if rng.random() < density]
        for index in indices
    }
    valuation = {
        prop: [w for w in worlds if rng.random() < 0.4] for prop in ("p", "q")
    }
    return KripkeModel(worlds, relations, valuation)


def random_formula(rng: random.Random, depth: int, indices: list) -> Formula:
    if depth == 0:
        return rng.choice([Prop(rng.choice(PROPS)), Top(), Bottom()])

    def sub() -> Formula:
        return random_formula(rng, depth - 1, indices)

    kind = rng.randrange(8)
    if kind == 0:
        return Not(sub())
    if kind == 1:
        return And(sub(), sub())
    if kind == 2:
        return Or(sub(), sub())
    if kind == 3:
        return Implies(sub(), sub())
    index = rng.choice(indices)
    if kind == 4:
        return Diamond(sub(), index=index)
    if kind == 5:
        return Box(sub(), index=index)
    if kind == 6:
        return GradedDiamond(sub(), grade=rng.randrange(4), index=index)
    return Prop(rng.choice(PROPS))


def formula_indices(model: KripkeModel) -> list:
    indices = sorted(model.indices, key=repr)
    # Unindexed modalities are only legal on unimodal models; an index
    # absent from the model exercises the empty-relation paths.
    extra = [None] if len(indices) == 1 else []
    return indices + ["missing-index"] + extra


class TestDifferentialModelChecking:
    @pytest.mark.parametrize("seed", range(25))
    def test_extension_matches_reference_on_random_models(self, seed):
        model = random_model(seed)
        rng = random.Random(1000 + seed)
        indices = formula_indices(model)
        for depth in range(4):
            formula = random_formula(rng, depth, indices)
            assert extension(model, formula) == reference_extension(model, formula)

    @pytest.mark.parametrize("seed", range(10))
    def test_satisfies_matches_reference_on_random_models(self, seed):
        model = random_model(seed)
        rng = random.Random(2000 + seed)
        formula = random_formula(rng, 3, formula_indices(model))
        truth = reference_extension(model, formula)
        for world in model.worlds:
            assert satisfies(model, world, formula) == (world in truth)

    @pytest.mark.parametrize("seed", range(10))
    def test_check_many_matches_per_formula_extensions(self, seed):
        model = random_model(seed)
        rng = random.Random(3000 + seed)
        formulas = [random_formula(rng, 2, formula_indices(model)) for _ in range(6)]
        batched = check_many(model, formulas)
        assert batched == [reference_extension(model, f) for f in formulas]
        assert batched == check_many(model, formulas, engine="reference")

    def test_check_sweep_runs_many_models(self):
        models = [random_model(seed) for seed in range(4)]
        formulas = [Prop("p"), Diamond(Prop("q"), index="a"), Box(Prop("p"), index="a")]
        sweep = check_sweep(models, formulas)
        assert sweep == [
            [reference_extension(model, f) for f in formulas] for model in models
        ]

    def test_unknown_engine_rejected(self):
        model = random_model(0)
        with pytest.raises(ValueError):
            extension(model, Prop("p"), engine="quantum")
        with pytest.raises(ValueError):
            bisimilarity_partition(model, engine="quantum")

    def test_none_is_a_legal_relation_index_on_unimodal_models(self):
        # ``None`` is both the "unindexed modality" marker and a perfectly
        # legal relation index; a unimodal model keyed by ``None`` must not
        # be mistaken for a multimodal one.
        model = KripkeModel(
            ("a", "b", "c"), {None: [("a", "b"), ("b", "c")]}, {"p": ["c"]}
        )
        for formula in (
            Diamond(Prop("p")),
            Box(Prop("p")),
            GradedDiamond(Prop("p"), grade=1),
        ):
            assert extension(model, formula) == reference_extension(model, formula)
        assert extension(model, Diamond(Prop("p"))) == frozenset({"b"})
        assert satisfies(model, "b", Diamond(Prop("p")))

    def test_unindexed_modality_on_multimodal_model_rejected_by_both_engines(self):
        model = KripkeModel(["x"], {"a": [], "b": []}, {})
        with pytest.raises(ValueError):
            extension(model, Diamond(Prop("p")))
        with pytest.raises(ValueError):
            extension(model, Diamond(Prop("p")), engine="reference")


class TestDifferentialRefinement:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("graded", [False, True], ids=["plain", "graded"])
    def test_partition_identical_to_reference(self, seed, graded):
        model = random_model(seed)
        assert bisimilarity_partition(model, graded=graded) == (
            reference_bisimilarity_partition(model, graded=graded)
        )

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("graded", [False, True], ids=["plain", "graded"])
    def test_bounded_partition_identical_to_reference(self, seed, graded):
        model = random_model(seed)
        for rounds in range(4):
            assert bounded_bisimilarity_partition(model, rounds, graded=graded) == (
                reference_bounded_bisimilarity_partition(model, rounds, graded=graded)
            )

    def test_partition_identical_on_kripke_encodings(self):
        for seed in range(3):
            graph = random_bounded_degree_graph(12, 3, seed=seed)
            for variant in KripkeVariant:
                encoding = kripke_encoding(graph, variant=variant)
                for graded in (False, True):
                    assert bisimilarity_partition(encoding, graded=graded) == (
                        reference_bisimilarity_partition(encoding, graded=graded)
                    )

    def test_are_bisimilar_agrees_across_engines(self):
        one = KripkeModel(["r", "c1"], {"R": [("r", "c1")]}, {"p": ["c1"]})
        two = KripkeModel(
            ["r", "c1", "c2"], {"R": [("r", "c1"), ("r", "c2")]}, {"p": ["c1", "c2"]}
        )
        for graded in (False, True):
            assert are_bisimilar(one, "r", two, "r", graded=graded) == are_bisimilar(
                one, "r", two, "r", graded=graded, engine="reference"
            )

    def test_engine_knob_reference_roundtrip(self):
        model = random_model(7)
        assert bisimilarity_partition(model, engine="reference") == (
            bisimilarity_partition(model, engine="compiled")
        )


class TestCompiledKripke:
    def test_compiled_form_is_cached_on_the_model(self):
        model = random_model(3)
        assert compile_kripke(model) is compile_kripke(model)

    def test_world_interning_matches_reference_order(self):
        model = random_model(4)
        compiled = compile_kripke(model)
        assert list(compiled.worlds) == sorted(model.worlds, key=repr)
        round_trip = compiled.to_worlds(compiled.to_bits(model.worlds))
        assert round_trip == model.worlds

    def test_compiled_repr_mentions_sizes(self):
        compiled = CompiledKripke(random_model(5))
        assert "CompiledKripke" in repr(compiled)

    def test_satisfies_is_localized_not_full_extension(self):
        # A long chain: checking <R><R>p at world 0 must only visit the
        # worlds reachable within the modal depth, not the whole model (the
        # seed implementation computed the full extension for every query).
        n = 500
        model = KripkeModel(
            worlds=range(n),
            relations={"R": [(i, i + 1) for i in range(n - 1)]},
            valuation={"p": [2]},
        )
        compiled = compile_kripke(model)
        trace: list = []
        assert compiled.satisfies(0, Diamond(Diamond(Prop("p"))), _trace=trace)
        visited_worlds = {world for _, world in trace}
        assert len(visited_worlds) <= 4
        assert len(trace) <= 10

    def test_satisfies_short_circuits_graded_counting(self):
        model = KripkeModel(
            worlds=range(6),
            relations={"R": [(0, j) for j in range(1, 6)]},
            valuation={"p": [1, 2, 3, 4, 5]},
        )
        compiled = compile_kripke(model)
        trace: list = []
        assert compiled.satisfies(0, GradedDiamond(Prop("p"), grade=2), _trace=trace)
        # Counting stops at the grade: only 2 successors are ever evaluated.
        assert sum(1 for phi, _ in trace if isinstance(phi, Prop)) == 2


class TestExtensionCacheRegression:
    """The ``_cache`` dict is owned by one model; foreign reuse must fail."""

    def test_cache_reuse_across_models_raises(self):
        first = KripkeModel([0, 1], {"R": [(0, 1)]}, {"p": [0]})
        second = KripkeModel([0, 1], {"R": [(0, 1)]}, {"p": [1]})
        cache: dict = {}
        assert extension(first, Prop("p"), _cache=cache) == frozenset({0})
        with pytest.raises(ValueError):
            extension(second, Prop("p"), _cache=cache)
        with pytest.raises(ValueError):
            reference_extension(second, Prop("p"), cache)

    def test_cache_reuse_on_same_model_is_allowed_and_correct(self):
        model = KripkeModel([0, 1, 2], {"R": [(0, 1), (1, 2)]}, {"p": [2]})
        cache: dict = {}
        formula = Diamond(Prop("p"))
        first = extension(model, formula, _cache=cache)
        assert extension(model, formula, _cache=cache) == first == frozenset({1})
        # An equal (but not identical) model may share the cache: cached
        # extensions are identical on equal models.
        twin = KripkeModel([0, 1, 2], {"R": [(0, 1), (1, 2)]}, {"p": [2]})
        assert extension(twin, formula, _cache=cache) == first

    def test_reference_cache_still_memoises_subformulas(self):
        model = KripkeModel([0, 1], {"R": [(0, 1)]}, {"p": [1]})
        cache: dict = {}
        reference_extension(model, Diamond(Prop("p")), cache)
        assert cache[Prop("p")] == frozenset({1})

    def test_equivalent_on_agrees_across_engines(self):
        for seed in range(8):
            model = random_model(seed)
            rng = random.Random(4000 + seed)
            indices = formula_indices(model)
            first = random_formula(rng, 2, indices)
            second = random_formula(rng, 2, indices)
            assert equivalent_on(model, first, second) == equivalent_on(
                model, first, second, engine="reference"
            )


class TestFact1CrossCheck:
    """Engine bisimilarity classes == truncated universal-cover view classes.

    In the K-,- encoding, two nodes have equal radius-``r`` views exactly
    when they are ``r``-round (graded with counting, plain without)
    bisimilar -- the graph-theoretic half of Fact 1 / Theorem 2.
    """

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("counting", [False, True], ids=["set", "multiset"])
    def test_view_classes_match_bounded_bisimilarity(self, seed, counting):
        graph = random_bounded_degree_graph(14, 3, seed=seed)
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        for radius in range(4):
            views = view_classes(graph, radius, counting=counting)
            partition = bounded_bisimilarity_partition(
                encoding, radius, graded=counting
            )
            view_blocks = {frozenset(nodes) for nodes in views.values()}
            refinement_blocks: dict[int, set] = {}
            for node, block in partition.items():
                refinement_blocks.setdefault(block, set()).add(node)
            assert view_blocks == {
                frozenset(nodes) for nodes in refinement_blocks.values()
            }

    def test_regular_graph_views_collapse_like_bisimilarity(self):
        graph = random_regular_graph(3, 16, seed=1)
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        classes = bisimilarity_classes(encoding, graded=True)
        # On a regular graph every node looks alike to MB/SB algorithms.
        assert len(classes) == 1
        assert len(view_classes(graph, 8, counting=True)) == 1
