"""Tests for the campaign work-queue service and its socket protocol.

The acceptance property is digest identity: a spec submitted to the service
-- whatever mixture of store hits, cross-campaign in-flight hits and fresh
execution answers its scenarios, over either backend -- must finish with the
byte-identical manifest digest a serial ``run_campaign`` produces.  The
dedup-accounting tests pin down *how* each scenario was answered; the
streaming tests pin the service's folded report to the batch aggregation of
the stored records.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaign import (
    CampaignService,
    CampaignServiceServer,
    CampaignSpec,
    GraphGrid,
    ResultStore,
    ServiceClient,
    ServiceError,
    builtin_spec,
    campaign_result,
    load_records,
    run_campaign,
)
from repro.campaign.service import handle_request


def exec_spec(name: str = "svc", sizes: list[int] | None = None) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="execution",
        graphs=[GraphGrid.of("cycle", {"n": sizes or [4, 5, 6]})],
        port_strategies=["consistent"],
        model_classes=["SB", "MB"],
        seeds=[0],
    )


def logic_spec(name: str = "svc-logic") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="logic",
        graphs=[GraphGrid.of("cycle", {"n": [4, 5]})],
        model_classes=["SB"],
        formula_sets=["ml-basic"],
        seeds=[0],
    )


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(str(tmp_path / "store"))
    yield svc
    svc.shutdown(wait=False)


class TestServiceLifecycle:
    def test_submit_runs_to_done_with_the_serial_digest(self, service, tmp_path):
        spec = exec_spec()
        serial = run_campaign(spec, ResultStore(tmp_path / "serial"), log=None)
        job = service.submit(spec)
        assert service.wait(job, timeout=120)
        status = service.status(job)
        assert status["status"] == "done"
        assert status["executed"] == status["total"] == len(spec.expand())
        assert status["store_hits"] == status["inflight_hits"] == 0
        assert status["manifest_digest"] == serial.manifest_digest

    def test_resubmission_is_all_store_hits(self, service):
        spec = exec_spec()
        first = service.submit(spec)
        assert service.wait(first, timeout=120)
        again = service.submit(spec)
        assert service.wait(again, timeout=120)
        status = service.status(again)
        assert status["status"] == "done"
        assert status["executed"] == 0
        assert status["store_hits"] == status["total"]
        assert status["manifest_digest"] == service.status(first)["manifest_digest"]

    def test_concurrent_overlapping_jobs_dedup_in_flight(self, service):
        spec = exec_spec()
        first = service.submit(spec)
        second = service.submit(spec)  # identical scenarios, still in flight
        assert service.wait(timeout=120)
        s1, s2 = service.status(first), service.status(second)
        assert s1["status"] == s2["status"] == "done"
        assert s1["manifest_digest"] == s2["manifest_digest"]
        # Every scenario executed exactly once, for the first job; the
        # second job's scenarios were answered without re-execution.
        assert s1["executed"] == s1["total"]
        assert s2["executed"] == 0
        assert s2["store_hits"] + s2["inflight_hits"] == s2["total"]

    def test_partial_overlap_executes_only_the_new_scenarios(self, service):
        small = exec_spec("small", sizes=[4, 5])
        large = exec_spec("large", sizes=[4, 5, 6, 7])
        first = service.submit(small)
        second = service.submit(large)
        assert service.wait(timeout=120)
        s1, s2 = service.status(first), service.status(second)
        overlap = {s.content_hash() for s in small.expand()} & {
            s.content_hash() for s in large.expand()
        }
        assert s1["executed"] == s1["total"]
        assert s2["executed"] == s2["total"] - len(overlap)
        assert s2["store_hits"] + s2["inflight_hits"] == len(overlap)

    def test_mixed_kind_jobs_coexist(self, service):
        jobs = [service.submit(exec_spec()), service.submit(logic_spec())]
        assert service.wait(timeout=120)
        for job in jobs:
            assert service.status(job)["status"] == "done"

    def test_streaming_rollups_equal_batch_rollups_exactly(self, service):
        spec = logic_spec()
        job = service.submit(spec)
        assert service.wait(job, timeout=120)
        streamed = service.result(job).to_dict()
        stored_spec, records = load_records(service.store, spec.name)
        batch = campaign_result(stored_spec, records).to_dict()
        assert streamed == batch

    def test_result_of_unfinished_job_is_an_error(self, service):
        with pytest.raises(ServiceError, match="unknown job"):
            service.status("job-999")
        job = service.submit(exec_spec())
        service.cancel(job)
        service.wait(job, timeout=120)
        with pytest.raises(ServiceError, match="results exist only"):
            service.result(job)

    def test_cancel_stops_a_job_and_spares_the_other(self, service):
        spec = exec_spec()
        keep = service.submit(spec)
        drop = service.submit(exec_spec("other", sizes=[8, 9, 10]))
        assert service.cancel(drop)
        assert service.wait(timeout=120)
        assert service.status(keep)["status"] == "done"
        dropped = service.status(drop)
        assert dropped["status"] == "cancelled"
        assert dropped["manifest_digest"] is None
        assert not service.cancel(drop)  # already terminal

    def test_no_resume_job_reexecutes_everything(self, service):
        spec = exec_spec()
        first = service.submit(spec)
        assert service.wait(first, timeout=120)
        forced = service.submit(spec, resume=False)
        assert service.wait(forced, timeout=120)
        status = service.status(forced)
        assert status["executed"] == status["total"]
        assert status["store_hits"] == status["inflight_hits"] == 0
        assert status["manifest_digest"] == service.status(first)["manifest_digest"]

    def test_shard_failure_fails_the_job_with_a_reason(self, tmp_path, monkeypatch):
        from repro.campaign import service as service_module

        def boom(scenarios):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(service_module, "evaluate_scenarios", boom)
        svc = CampaignService(str(tmp_path / "store"))
        try:
            job = svc.submit(exec_spec())
            assert svc.wait(job, timeout=60)
            status = svc.status(job)
            assert status["status"] == "failed"
            assert "engine exploded" in status["error"]
        finally:
            svc.shutdown(wait=False)

    def test_submit_after_shutdown_is_refused(self, tmp_path):
        svc = CampaignService(str(tmp_path / "store"))
        svc.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            svc.submit(exec_spec())


class TestDigestIdentityAcrossPaths:
    def test_every_path_yields_one_manifest_digest(self, tmp_path):
        """Serial, sharded, service x {json, sqlite}: one digest."""
        spec = exec_spec()
        digests = {}
        digests["json-serial"] = run_campaign(
            spec, ResultStore(tmp_path / "a"), log=None
        ).manifest_digest
        digests["json-sharded"] = run_campaign(
            spec, ResultStore(tmp_path / "b"), workers=2, log=None
        ).manifest_digest
        digests["sqlite-serial"] = run_campaign(
            spec, ResultStore(f"sqlite:{tmp_path / 'c.db'}"), log=None
        ).manifest_digest
        for scheme, uri in (
            ("json-service", str(tmp_path / "d")),
            ("sqlite-service", f"sqlite:{tmp_path / 'e.db'}"),
        ):
            svc = CampaignService(uri, workers=2)
            try:
                job = svc.submit(spec)
                assert svc.wait(job, timeout=120)
                digests[scheme] = svc.status(job)["manifest_digest"]
            finally:
                svc.shutdown(wait=False)
        assert len(set(digests.values())) == 1, digests


class TestProtocol:
    def test_handle_request_dispatch(self, service):
        assert handle_request(service, {"cmd": "ping"}) == {"ok": True, "pong": True}
        submitted = handle_request(
            service, {"cmd": "submit", "spec": exec_spec().to_dict()}
        )
        assert submitted["ok"]
        assert service.wait(submitted["job"], timeout=120)
        status = handle_request(service, {"cmd": "status"})
        assert status["ok"] and len(status["jobs"]) == 1
        assert status["records"] == service.store.count_records()

    def test_handle_request_errors_do_not_raise(self, service):
        assert handle_request(service, {"cmd": "nope"})["ok"] is False
        assert "unknown builtin" in handle_request(
            service, {"cmd": "submit", "spec": "no-such-campaign"}
        )["error"]
        assert handle_request(service, {"cmd": "status", "job": "job-7"})["ok"] is False

    def test_tcp_round_trip(self, tmp_path):
        svc = CampaignService(str(tmp_path / "store"))
        server = CampaignServiceServer(svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.address
            with ServiceClient(host, port) as client:
                assert client.ping()
                job = client.submit(exec_spec())
                final = client.wait(job, timeout=120)
                assert final["status"] == "done"
                report = client.report(job)
                assert all(row["matches"] for row in report["rows"])
                with pytest.raises(ServiceError, match="unknown job"):
                    client.cancel("job-404")
                overview = client.status()
                assert overview["backend"] == "json"
                assert len(overview["jobs"]) == 1
        finally:
            server.shutdown()
            server.server_close()
            svc.shutdown(wait=False)

    def test_builtin_submission_by_name(self, tmp_path):
        svc = CampaignService(str(tmp_path / "store"))
        try:
            response = handle_request(svc, {"cmd": "submit", "spec": "smoke"})
            assert response["ok"] and response["campaign"] == "smoke"
            assert svc.wait(response["job"], timeout=120)
            digest = svc.status(response["job"])["manifest_digest"]
            serial = run_campaign(
                builtin_spec("smoke"), ResultStore(tmp_path / "serial"), log=None
            )
            assert digest == serial.manifest_digest
        finally:
            svc.shutdown(wait=False)
