"""Property-based tests for the Theorem 2 compilation (random formulas).

For random formulas of each signature, the compiled local algorithm must agree
with the model checker on the matching Kripke encoding for every node of a
random bounded-degree graph -- Theorem 2's "formula -> algorithm" half as a
hypothesis property.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.execution.runner import run
from repro.graphs.generators import random_bounded_degree_graph
from repro.graphs.ports import random_port_numbering
from repro.logic.semantics import extension
from repro.logic.syntax import And, Bottom, Diamond, GradedDiamond, Not, Or, Prop, Top
from repro.machines.models import ProblemClass
from repro.modal.encoding import kripke_encoding, variant_for_class
from repro.modal.formula_to_algorithm import algorithm_for_formula

import random


@st.composite
def sb_formulas(draw, depth: int = 2):
    """Random ML formulas over the SB signature (index (*, *))."""
    if depth == 0:
        return draw(st.sampled_from([Prop("deg1"), Prop("deg2"), Prop("deg3"), Top(), Bottom()]))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(sb_formulas(depth=0))
    if kind == 1:
        return Not(draw(sb_formulas(depth=depth - 1)))
    if kind == 2:
        return And(draw(sb_formulas(depth=depth - 1)), draw(sb_formulas(depth=depth - 1)))
    if kind == 3:
        return Or(draw(sb_formulas(depth=depth - 1)), draw(sb_formulas(depth=depth - 1)))
    return Diamond(draw(sb_formulas(depth=depth - 1)), index=("*", "*"))


@st.composite
def mb_formulas(draw, depth: int = 2):
    """Random GML formulas over the MB signature."""
    if depth == 0:
        return draw(st.sampled_from([Prop("deg1"), Prop("deg2"), Prop("deg3"), Top()]))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(mb_formulas(depth=0))
    if kind == 1:
        return Not(draw(mb_formulas(depth=depth - 1)))
    if kind == 2:
        return And(draw(mb_formulas(depth=depth - 1)), draw(mb_formulas(depth=depth - 1)))
    return GradedDiamond(
        draw(mb_formulas(depth=depth - 1)), grade=draw(st.integers(0, 3)), index=("*", "*")
    )


@st.composite
def sv_formulas(draw, depth: int = 2):
    """Random MML formulas over the SV signature (indices (*, j))."""
    if depth == 0:
        return draw(st.sampled_from([Prop("deg1"), Prop("deg2"), Prop("deg3"), Top()]))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(sv_formulas(depth=0))
    if kind == 1:
        return Not(draw(sv_formulas(depth=depth - 1)))
    if kind == 2:
        return And(draw(sv_formulas(depth=depth - 1)), draw(sv_formulas(depth=depth - 1)))
    return Diamond(draw(sv_formulas(depth=depth - 1)), index=("*", draw(st.integers(1, 3))))


def _check(problem_class: ProblemClass, formula, graph_seed: int, numbering_seed: int) -> None:
    graph = random_bounded_degree_graph(6, 3, seed=graph_seed)
    numbering = random_port_numbering(graph, random.Random(numbering_seed))
    algorithm = algorithm_for_formula(formula, problem_class)
    outputs = run(algorithm, graph, numbering).outputs
    encoding = kripke_encoding(graph, numbering, variant=variant_for_class(problem_class))
    truth = extension(encoding, formula)
    for node in graph.nodes:
        assert (outputs[node] == 1) == (node in truth)


@given(sb_formulas(), st.integers(0, 10_000), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_sb_compilation_matches_semantics(formula, graph_seed, numbering_seed):
    _check(ProblemClass.SB, formula, graph_seed, numbering_seed)


@given(mb_formulas(), st.integers(0, 10_000), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_mb_compilation_matches_semantics(formula, graph_seed, numbering_seed):
    _check(ProblemClass.MB, formula, graph_seed, numbering_seed)


@given(sv_formulas(), st.integers(0, 10_000), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_sv_compilation_matches_semantics(formula, graph_seed, numbering_seed):
    _check(ProblemClass.SV, formula, graph_seed, numbering_seed)
