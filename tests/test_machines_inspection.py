"""Unit tests for the empirical algorithm-class membership checks."""

from __future__ import annotations

import pytest

from repro.machines.inspection import (
    is_broadcast_machine,
    respects_multiset_semantics,
    respects_set_semantics,
)
from repro.machines.state_machine import FiniteStateMachine, machine_from_algorithm
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.parity import OddOddNeighboursAlgorithm


def _machine(transition, message=None, delta=2, messages=frozenset({"a", "b"})):
    return FiniteStateMachine(
        delta_bound=delta,
        intermediate_states=frozenset({"run"}),
        stopping_states=frozenset({0, 1, 2, 3}),
        messages=messages,
        initial_states={d: "run" for d in range(delta + 1)},
        message_table=message or (lambda state, port: "a"),
        transition_table=transition,
    )


class TestMultisetSemantics:
    def test_counting_machine_is_multiset(self):
        machine = _machine(lambda state, vector: min(3, sum(1 for m in vector if m == "a")))
        assert respects_multiset_semantics(machine)

    def test_order_sensitive_machine_is_not_multiset(self):
        machine = _machine(lambda state, vector: 1 if vector[0] == "a" else 0)
        assert not respects_multiset_semantics(machine)

    def test_set_machine_is_also_multiset(self):
        machine = _machine(lambda state, vector: 1 if "a" in set(vector) else 0)
        assert respects_multiset_semantics(machine)


class TestSetSemantics:
    def test_membership_machine_is_set(self):
        machine = _machine(lambda state, vector: 1 if "a" in set(vector) else 0)
        assert respects_set_semantics(machine)

    def test_counting_machine_is_not_set(self):
        # With Delta = 3 the vectors (a, a, b) and (a, b, b) have the same set
        # but different counts, so a counting transition is not set-invariant.
        machine = _machine(
            lambda state, vector: min(3, sum(1 for m in vector if m == "a")), delta=3
        )
        assert not respects_set_semantics(machine)


class TestBroadcast:
    def test_uniform_sender_is_broadcast(self):
        machine = _machine(lambda state, vector: 0)
        assert is_broadcast_machine(machine)

    def test_port_dependent_sender_is_not_broadcast(self):
        machine = _machine(lambda state, vector: 0, message=lambda state, port: ("m", port))
        assert not is_broadcast_machine(machine)


class TestAdaptedAlgorithms:
    def test_leaf_election_is_set_invariant(self):
        # Check invariance on realisable inputs: a full-degree node receiving
        # any permutation of real messages.  (Vectors where padding positions
        # carry real messages never occur in an execution.)
        machine = machine_from_algorithm(LeafElectionAlgorithm(), delta_bound=2)
        states = [machine.initial_state(2)]
        vectors = [(1, 2), (2, 1), (1, 1), (2, 2)]
        assert respects_set_semantics(machine, states=states, message_vectors=vectors)
        assert respects_multiset_semantics(machine, states=states, message_vectors=vectors)

    def test_leaf_election_is_not_broadcast(self):
        machine = machine_from_algorithm(LeafElectionAlgorithm(), delta_bound=2)
        states = [machine.initial_state(2)]
        assert not is_broadcast_machine(machine, states=states)

    def test_odd_odd_is_multiset_but_not_set(self):
        machine = machine_from_algorithm(OddOddNeighboursAlgorithm(), delta_bound=3)
        states = [machine.initial_state(3)]
        vectors = [("odd", "odd", "even"), ("odd", "even", "odd"), ("odd", "even", "even")]
        assert respects_multiset_semantics(machine, states=states, message_vectors=vectors)
        assert not respects_set_semantics(machine, states=states, message_vectors=vectors)

    def test_odd_odd_is_broadcast(self):
        machine = machine_from_algorithm(OddOddNeighboursAlgorithm(), delta_bound=3)
        states = [machine.initial_state(d) for d in (1, 2, 3)]
        assert is_broadcast_machine(machine, states=states)

    def test_generic_machine_requires_explicit_samples(self):
        machine = machine_from_algorithm(LeafElectionAlgorithm(), delta_bound=2)
        with pytest.raises(ValueError):
            respects_set_semantics(machine)
