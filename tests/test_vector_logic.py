"""Differential tests: the packed-uint64 vector logic kernel vs compiled/seed.

``engine="vector"`` model checking must be extension-identical to the
compiled bitset engine and the seed reference checker on random Kripke
models -- including models crossing the 64-bit word boundary, graded
modalities, multimodal indices, unknown propositions and empty relations.
Skipped wholesale when NumPy is not installed.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from test_logic_engine import formula_indices, random_formula, random_model  # noqa: E402

from repro.logic.engine import check_many, check_sweep, compile_kripke  # noqa: E402
from repro.logic.kripke import KripkeModel  # noqa: E402
from repro.logic.semantics import (  # noqa: E402
    equivalent_on,
    extension,
    reference_extension,
    satisfies,
)
from repro.logic.syntax import (  # noqa: E402
    And,
    Bottom,
    Box,
    Diamond,
    GradedDiamond,
    Not,
    Prop,
    Top,
)
from repro.logic.vector import VectorKripke, vector_check_many, vector_kripke  # noqa: E402


def big_model(n=150, seed=99):
    """A random bimodal model wide enough to cross the uint64 word boundary."""
    rng = random.Random(seed)
    worlds = list(range(n))
    relations = {
        "a": frozenset((u, v) for u in worlds for v in worlds if rng.random() < 0.03),
        "b": frozenset((u, v) for u in worlds for v in worlds if rng.random() < 0.01),
    }
    valuation = {
        "p": frozenset(w for w in worlds if rng.random() < 0.4),
        "q": frozenset(w for w in worlds if rng.random() < 0.2),
    }
    return KripkeModel(
        worlds=frozenset(worlds), relations=relations, valuation=valuation
    )


BIG_FORMULAS = [
    Diamond(Prop("p"), index="a"),
    Box(Prop("q"), index="b"),
    GradedDiamond(Prop("p"), 3, index="a"),
    GradedDiamond(Prop("q"), 0, index="a"),
    GradedDiamond(Not(Prop("q")), 2, index="b"),
    And(
        Diamond(Box(Prop("p"), index="a"), index="b"),
        Not(GradedDiamond(Top(), 2, index="a")),
    ),
    Bottom(),
    Top(),
    Prop("r"),  # unknown proposition: empty extension
]


class TestRandomModelsDifferential:
    @pytest.mark.parametrize("seed", range(25))
    def test_check_many_identical_to_compiled_and_reference(self, seed):
        model = random_model(seed)
        rng = random.Random(seed + 1000)
        indices = formula_indices(model)
        formulas = [
            random_formula(rng, rng.randrange(0, 5), indices) for _ in range(12)
        ]
        vectored = check_many(model, formulas, engine="vector")
        assert vectored == check_many(model, formulas)
        assert vectored == check_many(model, formulas, engine="reference")

    @pytest.mark.parametrize("seed", range(0, 25, 5))
    def test_extension_satisfies_equivalent_on(self, seed):
        model = random_model(seed)
        rng = random.Random(seed + 2000)
        indices = formula_indices(model)
        first = random_formula(rng, 4, indices)
        second = random_formula(rng, 4, indices)
        assert extension(model, first, engine="vector") == extension(model, first)
        assert equivalent_on(model, first, second, engine="vector") == equivalent_on(
            model, first, second
        )
        assert equivalent_on(model, first, first, engine="vector")
        for world in sorted(model.worlds, key=repr)[:3]:
            assert satisfies(model, world, first, engine="vector") == satisfies(
                model, world, first
            )

    def test_shared_cache_amortises_and_stays_correct(self):
        model = random_model(3)
        rng = random.Random(17)
        indices = formula_indices(model)
        formula = random_formula(rng, 5, indices)
        cache: dict = {}
        first = extension(model, formula, _cache=cache, engine="vector")
        second = extension(model, formula, _cache=cache, engine="vector")
        assert first == second == reference_extension(model, formula)

    def test_cache_rejects_foreign_model(self):
        cache: dict = {}
        extension(random_model(1), Prop("p"), _cache=cache, engine="vector")
        with pytest.raises(ValueError, match="different model"):
            extension(random_model(2), Prop("p"), _cache=cache, engine="vector")


class TestWordBoundaryAndEdgeCases:
    def test_model_crossing_word_boundary(self):
        model = big_model()
        vectored = check_many(model, BIG_FORMULAS, engine="vector")
        assert vectored == check_many(model, BIG_FORMULAS)
        assert vectored == check_many(model, BIG_FORMULAS, engine="reference")

    def test_packed_rows_decode_to_compiled_bitsets(self):
        model = big_model(n=70, seed=5)
        compiled = compile_kripke(model)
        vector = vector_kripke(model)
        assert isinstance(vector, VectorKripke)
        cache: dict = {}
        for formula in BIG_FORMULAS:
            assert vector.extension_bits(formula, cache) == compiled.extension_bits(
                formula, {}
            )

    def test_vector_form_cached_on_compiled_form(self):
        model = random_model(4)
        assert vector_kripke(model) is vector_kripke(model)
        assert vector_kripke(model) is vector_kripke(compile_kripke(model))

    def test_empty_relation_index(self):
        model = KripkeModel(
            worlds=frozenset([0, 1]),
            relations={"a": frozenset()},
            valuation={"p": frozenset([0])},
        )
        formulas = [
            Diamond(Prop("p"), index="a"),
            Box(Prop("p"), index="a"),
            GradedDiamond(Top(), 1, index="a"),
        ]
        assert check_many(model, formulas, engine="vector") == check_many(
            model, formulas
        )

    def test_single_world_model(self):
        model = KripkeModel(
            worlds=frozenset(["w"]),
            relations={"a": frozenset([("w", "w")])},
            valuation={"p": frozenset(["w"])},
        )
        formulas = [Diamond(Prop("p"), index="a"), GradedDiamond(Prop("p"), 2, index="a")]
        assert check_many(model, formulas, engine="vector") == check_many(
            model, formulas
        )

    def test_check_sweep_vector_engine(self):
        models = [random_model(s) for s in range(5)]
        rng = random.Random(7)
        shared = [
            random_formula(rng, 3, formula_indices(models[0])) for _ in range(6)
        ]
        assert check_sweep(models, shared, engine="vector") == check_sweep(
            models, shared
        )

    def test_vector_check_many_entry_point(self):
        model = random_model(6)
        rng = random.Random(8)
        formulas = [random_formula(rng, 3, formula_indices(model)) for _ in range(4)]
        assert vector_check_many(model, formulas) == check_many(model, formulas)

    def test_graded_grades_across_popcount_paths(self):
        # grade 0 (trivially true), grade 1 (diamond path) and grades that
        # force the popcount path must all agree with the oracles.
        model = big_model(n=90, seed=21)
        formulas = [
            GradedDiamond(Top(), grade, index="a") for grade in (0, 1, 2, 3, 5, 64)
        ]
        vectored = check_many(model, formulas, engine="vector")
        assert vectored == check_many(model, formulas)
        assert vectored == check_many(model, formulas, engine="reference")
