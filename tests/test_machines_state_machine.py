"""Unit tests for the formal state machine and the Algorithm adapters."""

from __future__ import annotations

import pytest

from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.parity import OddOddNeighboursAlgorithm
from repro.execution.runner import run
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.machines.algorithm import NO_MESSAGE, Output
from repro.machines.state_machine import (
    FiniteStateMachine,
    algorithm_from_machine,
    machine_from_algorithm,
)


def _parity_machine(delta: int = 2) -> FiniteStateMachine:
    """A finite-state SB-style machine: output 1 iff some neighbour has odd degree."""

    def message(state, port):
        return "O" if state == "odd" else "E"

    def transition(state, vector):
        return 1 if "O" in set(vector) else 0

    return FiniteStateMachine(
        delta_bound=delta,
        intermediate_states=frozenset({"even", "odd"}),
        stopping_states=frozenset({0, 1}),
        messages=frozenset({"E", "O"}),
        initial_states={d: ("odd" if d % 2 else "even") for d in range(delta + 1)},
        message_table=message,
        transition_table=transition,
    )


class TestFiniteStateMachine:
    def test_overlapping_state_sets_rejected(self):
        with pytest.raises(ValueError):
            FiniteStateMachine(
                delta_bound=1,
                intermediate_states=frozenset({"s"}),
                stopping_states=frozenset({"s"}),
                messages=frozenset({"m"}),
                initial_states={0: "s", 1: "s"},
                message_table=lambda state, port: "m",
                transition_table=lambda state, vector: "s",
            )

    def test_unknown_initial_state_rejected(self):
        with pytest.raises(ValueError):
            FiniteStateMachine(
                delta_bound=1,
                intermediate_states=frozenset({"s"}),
                stopping_states=frozenset(),
                messages=frozenset({"m"}),
                initial_states={0: "mystery", 1: "s"},
                message_table=lambda state, port: "m",
                transition_table=lambda state, vector: "s",
            )

    def test_all_states(self):
        machine = _parity_machine()
        assert machine.all_states() == frozenset({"even", "odd", 0, 1})

    def test_as_state_machine_behaviour(self):
        generic = _parity_machine().as_state_machine()
        assert generic.outgoing("odd", 1) == "O"
        assert generic.outgoing(1, 1) == generic.no_message  # halted nodes send m0
        assert generic.padded_transition("even", ("O",)) == 1
        assert generic.padded_transition("even", ("E",)) == 0
        assert generic.padded_transition(0, ("O",)) == 0  # halted nodes do not move

    def test_padded_transition_rejects_oversized_vectors(self):
        generic = _parity_machine(delta=1).as_state_machine()
        with pytest.raises(ValueError):
            generic.padded_transition("even", ("O", "O"))


class TestMachineAsAlgorithm:
    def test_wrapped_machine_runs(self):
        algorithm = algorithm_from_machine(_parity_machine(delta=2).as_state_machine())
        result = run(algorithm, path_graph(3))
        # Ends of the path have a degree-2 neighbour (even), middle has two odd ones.
        assert result.outputs == {0: 0, 1: 1, 2: 0}

    def test_wrapped_machine_label(self):
        algorithm = algorithm_from_machine(
            _parity_machine().as_state_machine(), label="parity"
        )
        assert algorithm.name == "parity"


class TestAlgorithmAsMachine:
    def test_round_trip_preserves_outputs(self):
        graphs = [star_graph(3), cycle_graph(4), path_graph(4)]
        for original in (LeafElectionAlgorithm(), OddOddNeighboursAlgorithm()):
            for graph in graphs:
                machine = machine_from_algorithm(original, delta_bound=graph.max_degree())
                wrapped = algorithm_from_machine(machine, label=original.name)
                assert run(wrapped, graph).outputs == run(original, graph).outputs

    def test_machine_pads_with_no_message(self):
        machine = machine_from_algorithm(LeafElectionAlgorithm(), delta_bound=3)
        state = machine.initial_state(1)
        # A degree-1 node receiving only padding must not be elected.
        next_state = machine.padded_transition(state, (NO_MESSAGE, NO_MESSAGE, NO_MESSAGE))
        assert machine.is_stopping(next_state)
        assert machine.output(next_state) == 0

    def test_halted_adapter_state_is_stable(self):
        machine = machine_from_algorithm(LeafElectionAlgorithm(), delta_bound=2)
        state = machine.initial_state(1)
        halted = machine.padded_transition(state, (1, NO_MESSAGE))
        assert machine.is_stopping(halted)
        again = machine.padded_transition(halted, (NO_MESSAGE, NO_MESSAGE))
        assert again == halted
        assert machine.outgoing(halted, 1) == NO_MESSAGE


class TestOutputProtocol:
    def test_output_wrapper(self):
        algorithm = LeafElectionAlgorithm()
        assert algorithm.is_stopping(Output(1))
        assert not algorithm.is_stopping("running")
        assert algorithm.output(Output("value")) == "value"

    def test_output_of_non_stopping_state_raises(self):
        with pytest.raises(ValueError):
            LeafElectionAlgorithm().output("running")
