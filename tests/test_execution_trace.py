"""Unit tests for traces and message-size accounting."""

from __future__ import annotations

from repro.algorithms.basic import GatherDegreesAlgorithm, RoundCounterAlgorithm
from repro.execution.runner import run
from repro.execution.trace import Trace, message_size
from repro.graphs.generators import cycle_graph, star_graph
from repro.machines.multiset import FrozenMultiset


class TestMessageSize:
    def test_atom(self):
        assert message_size("x") == 1
        assert message_size(42) == 1
        assert message_size(None) == 1

    def test_flat_containers(self):
        assert message_size((1, 2, 3)) == 4
        assert message_size([1, 2]) == 3
        assert message_size(frozenset({1, 2})) == 3

    def test_nested_containers(self):
        assert message_size(((1, 2), 3)) == 5
        assert message_size({"k": (1, 2)}) == 5

    def test_multiset_counts_multiplicity(self):
        assert message_size(FrozenMultiset(["a", "a", "b"])) == 4

    def test_empty_containers(self):
        assert message_size(()) == 1
        assert message_size({}) == 1


class TestTraceQueries:
    def test_states_at_and_rounds(self):
        result = run(RoundCounterAlgorithm(2), cycle_graph(3), record_trace=True)
        trace = result.trace
        assert trace.rounds == 2
        assert set(trace.states_at(0).values()) == {0}

    def test_messages_received_by(self):
        result = run(GatherDegreesAlgorithm(), star_graph(3), record_trace=True)
        trace = result.trace
        centre_messages = trace.messages_received_by(0, 1)
        assert set(centre_messages.keys()) == {1, 2, 3}
        assert set(centre_messages.values()) == {1}

    def test_volume_and_max_size(self):
        result = run(GatherDegreesAlgorithm(), star_graph(3), record_trace=True)
        trace = result.trace
        assert trace.max_message_size() == 1
        # 3 messages to the centre + 1 to each leaf.
        assert trace.total_message_volume() == 6

    def test_empty_trace(self):
        trace = Trace()
        assert trace.rounds == 0
        assert trace.max_message_size() == 0
        assert trace.total_message_volume() == 0
