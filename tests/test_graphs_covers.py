"""Unit tests for double covers, symmetric port numberings and local views."""

from __future__ import annotations

import pytest

from repro.graphs.covers import (
    bipartite_double_cover,
    local_view,
    symmetric_port_numbering,
    view_classes,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    figure9_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.logic.bisimulation import bisimilar_within, bounded_bisimilarity_partition
from repro.modal.encoding import KripkeVariant, kripke_encoding


class TestBipartiteDoubleCover:
    def test_node_and_edge_counts(self):
        graph = cycle_graph(5)
        double = bipartite_double_cover(graph)
        assert double.number_of_nodes == 2 * graph.number_of_nodes
        assert double.number_of_edges == 2 * graph.number_of_edges

    def test_double_cover_is_bipartite_and_regular(self):
        double = bipartite_double_cover(complete_graph(4))
        assert double.is_bipartite()
        assert double.is_regular(3)

    def test_double_cover_of_odd_cycle_is_even_cycle(self):
        double = bipartite_double_cover(cycle_graph(5))
        assert double.is_connected()
        assert double.is_regular(2)
        assert double.number_of_nodes == 10


class TestSymmetricPortNumbering:
    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(4), cycle_graph(5), complete_graph(4), hypercube_graph(3), figure9_graph()],
        ids=["C4", "C5", "K4", "Q3", "figure9"],
    )
    def test_all_nodes_bisimilar_in_full_encoding(self, graph):
        numbering = symmetric_port_numbering(graph)
        encoding = kripke_encoding(graph, numbering, variant=KripkeVariant.FULL)
        assert bisimilar_within(encoding, graph.nodes)

    def test_diagonal_relations_only(self):
        graph = complete_graph(4)
        numbering = symmetric_port_numbering(graph)
        encoding = kripke_encoding(graph, numbering, variant=KripkeVariant.FULL)
        for i, j in encoding.indices:
            pairs = encoding.relation((i, j))
            if i == j:
                assert len(pairs) == graph.number_of_nodes
            else:
                assert pairs == frozenset()

    def test_requires_regular_graph(self):
        with pytest.raises(ValueError):
            symmetric_port_numbering(star_graph(3))

    def test_matchless_graph_numbering_is_inconsistent(self):
        assert not symmetric_port_numbering(figure9_graph()).is_consistent()

    def test_even_cycle_numbering_is_valid_port_numbering(self):
        graph = cycle_graph(6)
        numbering = symmetric_port_numbering(graph)
        mapping = numbering.as_mapping()
        assert set(mapping.values()) == set(numbering.ports())


class TestLocalViews:
    def test_radius_zero_is_degree(self):
        graph = star_graph(3)
        assert local_view(graph, 0, 0) == (3,)
        assert local_view(graph, 1, 0) == (1,)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            local_view(path_graph(2), 0, -1)

    def test_cycle_nodes_share_views_at_all_radii(self):
        graph = cycle_graph(6)
        for radius in range(4):
            assert len(view_classes(graph, radius)) == 1

    def test_path_endpoints_versus_middle(self):
        graph = path_graph(5)
        assert local_view(graph, 0, 1) != local_view(graph, 2, 1)

    def test_counting_versus_set_views(self):
        # A node with two degree-1 neighbours versus one degree-1 neighbour:
        # the set-view cannot tell them apart at radius 1, the counting view can.
        star = star_graph(2)
        path = path_graph(2)
        counting_star = local_view(star, 0, 1, counting=True)
        counting_path = local_view(path, 0, 1, counting=True)
        set_star = local_view(star, 0, 1, counting=False)
        set_path = local_view(path, 0, 1, counting=False)
        assert counting_star != counting_path
        assert set_star != set_path  # degrees differ, so even the root labels differ
        # Same-degree example: the Theorem 13 witnesses.
        from repro.graphs.generators import odd_odd_gadget_pair

        graph, first, second = odd_odd_gadget_pair()
        assert local_view(graph, first, 1, counting=False) == local_view(
            graph, second, 1, counting=False
        )
        assert local_view(graph, first, 1, counting=True) != local_view(
            graph, second, 1, counting=True
        )

    def test_large_radius_views_are_feasible_after_memoization(self):
        # Regression: the naive recursion rebuilt identical subtrees once per
        # tree position (3^12 positions at radius 12 on a 3-regular graph);
        # the memoized builder does n * (radius + 1) subtree constructions.
        from repro.graphs.generators import random_regular_graph

        graph = random_regular_graph(3, 50, seed=42)
        views = {node: local_view(graph, node, 12) for node in graph.nodes}
        assert len(views) == 50
        # Grouping at the same radius agrees with the per-node views.
        classes = view_classes(graph, 12)
        for nodes in classes.values():
            representative = views[next(iter(nodes))]
            assert all(views[node] == representative for node in nodes)

    def test_memoized_views_equal_naive_views_at_small_radius(self):
        def naive(graph, current, depth, counting):
            if depth == 0:
                return (graph.degree(current),)
            children = sorted(
                naive(graph, n, depth - 1, counting) for n in graph.neighbors(current)
            )
            if not counting:
                children = [
                    child
                    for position, child in enumerate(children)
                    if position == 0 or children[position - 1] != child
                ]
            return (graph.degree(current), tuple(children))

        graph = figure9_graph()
        for counting in (False, True):
            for radius in range(4):
                for node in graph.nodes:
                    assert local_view(graph, node, radius, counting=counting) == naive(
                        graph, node, radius, counting
                    )

    def test_views_match_bounded_bisimilarity(self):
        graph = figure9_graph()
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        for radius in (1, 2):
            partition = bounded_bisimilarity_partition(encoding, radius, graded=True)
            views = view_classes(graph, radius, counting=True)
            # Two nodes share a view exactly when they share a partition block.
            for nodes in views.values():
                blocks = {partition[node] for node in nodes}
                assert len(blocks) == 1
            assert len(views) == len(set(partition.values()))
