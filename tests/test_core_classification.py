"""Tests for the evidence objects and the assembled classification (E3)."""

from __future__ import annotations

from repro.core.classification import ClassificationReport, ContainmentEvidence, SeparationEvidence
from repro.core.simulations import simulate_multiset_with_set
from repro.algorithms.basic import GatherDegreesAlgorithm
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.execution.runner import run
from repro.experiments.e03_hierarchy import build_classification
from repro.graphs.generators import path_graph, star_graph
from repro.graphs.ports import consistent_port_numbering
from repro.machines.models import ProblemClass
from repro.problems.separating import LeafElectionInStars


class TestContainmentEvidence:
    def test_valid_simulation_verifies(self):
        inner = GatherDegreesAlgorithm()
        evidence = ContainmentEvidence(
            smaller=ProblemClass.MV,
            larger=ProblemClass.SV,
            description="Theorem 4",
            simulate=lambda alg: simulate_multiset_with_set(alg, delta=3),
        )

        def outputs_valid(graph, numbering, outputs):
            return outputs == run(inner, graph, numbering).outputs

        assert evidence.verify([inner], [star_graph(3), path_graph(3)], outputs_valid)

    def test_broken_simulation_fails_verification(self):
        inner = GatherDegreesAlgorithm()
        evidence = ContainmentEvidence(
            smaller=ProblemClass.MV,
            larger=ProblemClass.SV,
            description="identity (not a simulation of anything)",
            simulate=lambda alg: alg,
        )

        def outputs_valid(graph, numbering, outputs):
            return all(value == "impossible" for value in outputs.values())

        assert not evidence.verify([inner], [path_graph(3)], outputs_valid)


class TestSeparationEvidence:
    def _evidence(self) -> SeparationEvidence:
        graph = star_graph(3)
        return SeparationEvidence(
            smaller=ProblemClass.VB,
            larger=ProblemClass.SV,
            problem_name="leaf election",
            solver=LeafElectionAlgorithm(),
            witness_graph=graph,
            witness_nodes=(1, 2, 3),
            is_valid_solution=LeafElectionInStars().is_solution,
            numbering=consistent_port_numbering(graph),
        )

    def test_verify_components(self):
        evidence = self._evidence()
        assert evidence.witness_bisimilar()
        assert evidence.solutions_must_distinguish()
        assert evidence.solver_succeeds([evidence.witness_graph])
        assert evidence.verify()

    def test_wrong_witness_set_fails_bisimilarity(self):
        graph = star_graph(3)
        evidence = SeparationEvidence(
            smaller=ProblemClass.SV,  # the strong encoding separates the leaves
            larger=ProblemClass.SV,
            problem_name="leaf election",
            solver=LeafElectionAlgorithm(),
            witness_graph=graph,
            witness_nodes=(1, 2, 3),
            is_valid_solution=LeafElectionInStars().is_solution,
            numbering=consistent_port_numbering(graph),
        )
        assert not evidence.witness_bisimilar()

    def test_unconstrained_problem_fails_distinguish_check(self):
        graph = star_graph(3)
        evidence = SeparationEvidence(
            smaller=ProblemClass.VB,
            larger=ProblemClass.SV,
            problem_name="anything goes",
            solver=LeafElectionAlgorithm(),
            witness_graph=graph,
            witness_nodes=(1, 2, 3),
            is_valid_solution=lambda g, s: True,
            numbering=consistent_port_numbering(graph),
        )
        assert not evidence.solutions_must_distinguish()


class TestAssembledClassification:
    def test_full_report_verifies(self):
        report = build_classification()
        assert isinstance(report, ClassificationReport)
        assert report.all_verified()
        assert len(report.containments) == 3
        assert len(report.separations) == 3

    def test_rows_cover_all_claims(self):
        report = build_classification()
        rows = report.rows()
        assert len(rows) == 6
        claims = {claim for claim, _, _ in rows}
        assert "MV ⊆ SV" in claims
        assert "VVc ⊄ VV" in claims
