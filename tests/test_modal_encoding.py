"""Unit tests for the Kripke encodings of port-numbered graphs (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.ports import consistent_port_numbering, random_port_numbering
from repro.machines.models import ProblemClass
from repro.modal.encoding import (
    STAR,
    KripkeVariant,
    degree_proposition,
    kripke_encoding,
    signature_indices,
    variant_for_class,
)


class TestSignature:
    def test_indices_per_variant(self):
        assert signature_indices(KripkeVariant.FULL, 2) == frozenset(
            {(1, 1), (1, 2), (2, 1), (2, 2)}
        )
        assert signature_indices(KripkeVariant.NO_INPUT_PORTS, 2) == frozenset(
            {(STAR, 1), (STAR, 2)}
        )
        assert signature_indices(KripkeVariant.NO_OUTPUT_PORTS, 2) == frozenset(
            {(1, STAR), (2, STAR)}
        )
        assert signature_indices(KripkeVariant.NEITHER, 5) == frozenset({(STAR, STAR)})

    def test_variant_for_class(self):
        assert variant_for_class(ProblemClass.VVC) is KripkeVariant.FULL
        assert variant_for_class(ProblemClass.VV) is KripkeVariant.FULL
        assert variant_for_class(ProblemClass.MV) is KripkeVariant.NO_INPUT_PORTS
        assert variant_for_class(ProblemClass.SV) is KripkeVariant.NO_INPUT_PORTS
        assert variant_for_class(ProblemClass.VB) is KripkeVariant.NO_OUTPUT_PORTS
        assert variant_for_class(ProblemClass.MB) is KripkeVariant.NEITHER
        assert variant_for_class(ProblemClass.SB) is KripkeVariant.NEITHER


class TestValuation:
    def test_degree_propositions(self):
        graph = star_graph(3)
        encoding = kripke_encoding(graph)
        assert encoding.valuation_of(degree_proposition(3)) == frozenset({0})
        assert encoding.valuation_of(degree_proposition(1)) == frozenset({1, 2, 3})
        assert encoding.valuation_of(degree_proposition(2)) == frozenset()


class TestRelations:
    def test_full_relations_reconstruct_the_numbering(self):
        graph = path_graph(3)
        numbering = consistent_port_numbering(graph)
        encoding = kripke_encoding(graph, numbering, variant=KripkeVariant.FULL)
        # (u, v) in R(i, j) iff p((v, j)) = (u, i).
        for v in graph.nodes:
            for j in range(1, graph.degree(v) + 1):
                u, i = numbering.apply(v, j)
                assert (u, v) in encoding.relation((i, j))

    def test_total_number_of_pairs_is_twice_the_edges(self):
        graph = cycle_graph(5)
        numbering = random_port_numbering(graph)
        for variant in KripkeVariant:
            encoding = kripke_encoding(graph, numbering, variant=variant)
            total = sum(len(encoding.relation(index)) for index in encoding.indices)
            assert total == 2 * graph.number_of_edges

    def test_neither_variant_is_the_adjacency_relation(self):
        graph = cycle_graph(4)
        encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
        pairs = encoding.relation((STAR, STAR))
        expected = {(u, v) for u, v in graph.edges} | {(v, u) for u, v in graph.edges}
        assert pairs == frozenset(expected)

    def test_neither_variant_is_numbering_independent(self, rng):
        graph = cycle_graph(5)
        first = kripke_encoding(graph, random_port_numbering(graph, rng), KripkeVariant.NEITHER)
        second = kripke_encoding(graph, random_port_numbering(graph, rng), KripkeVariant.NEITHER)
        assert first == second

    def test_full_variant_depends_on_the_numbering(self, rng):
        graph = star_graph(3)
        numberings = [random_port_numbering(graph, rng) for _ in range(5)]
        encodings = {kripke_encoding(graph, p, KripkeVariant.FULL) for p in numberings}
        assert len(encodings) > 1

    def test_star_leaves_bisimilar_in_no_output_encoding(self):
        from repro.logic.bisimulation import bisimilar_within

        graph = star_graph(4)
        numbering = random_port_numbering(graph)
        encoding = kripke_encoding(graph, numbering, variant=KripkeVariant.NO_OUTPUT_PORTS)
        assert bisimilar_within(encoding, [1, 2, 3, 4])

    def test_star_leaves_not_all_bisimilar_in_no_input_encoding(self):
        from repro.logic.bisimulation import bisimilar_within

        graph = star_graph(3)
        numbering = consistent_port_numbering(graph)
        encoding = kripke_encoding(graph, numbering, variant=KripkeVariant.NO_INPUT_PORTS)
        assert not bisimilar_within(encoding, [1, 2, 3])


class TestErrors:
    def test_numbering_of_other_graph_rejected(self):
        with pytest.raises(ValueError):
            kripke_encoding(path_graph(3), consistent_port_numbering(path_graph(4)))

    def test_explicit_delta_extends_signature(self):
        graph = path_graph(2)
        encoding = kripke_encoding(graph, variant=KripkeVariant.FULL, delta=3)
        assert (3, 3) in encoding.indices
        assert encoding.relation((3, 3)) == frozenset()
