"""Unit tests for the model checker (truth definition of Section 4.1)."""

from __future__ import annotations

import pytest

from repro.logic.kripke import KripkeModel
from repro.logic.semantics import equivalent_on, extension, satisfies
from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
)


@pytest.fixture
def chain() -> KripkeModel:
    """A 4-world chain 0 -> 1 -> 2 -> 3 with p true at even worlds."""
    return KripkeModel(
        worlds=[0, 1, 2, 3],
        relations={"R": [(0, 1), (1, 2), (2, 3)]},
        valuation={"p": [0, 2], "q": [3]},
    )


@pytest.fixture
def branching() -> KripkeModel:
    """A root with three children, two of which satisfy p."""
    return KripkeModel(
        worlds=["root", "a", "b", "c"],
        relations={"R": [("root", "a"), ("root", "b"), ("root", "c")]},
        valuation={"p": ["a", "b"]},
    )


class TestBooleanConnectives:
    def test_constants(self, chain):
        assert extension(chain, Top()) == chain.worlds
        assert extension(chain, Bottom()) == frozenset()

    def test_proposition(self, chain):
        assert extension(chain, Prop("p")) == frozenset({0, 2})

    def test_negation(self, chain):
        assert extension(chain, Not(Prop("p"))) == frozenset({1, 3})

    def test_conjunction_disjunction(self, chain):
        assert extension(chain, And(Prop("p"), Prop("q"))) == frozenset()
        assert extension(chain, Or(Prop("p"), Prop("q"))) == frozenset({0, 2, 3})

    def test_implication(self, chain):
        # p -> q is false exactly where p holds and q fails.
        assert extension(chain, Implies(Prop("p"), Prop("q"))) == frozenset({1, 3})


class TestModalities:
    def test_diamond(self, chain):
        # <>p holds where some successor satisfies p: 1 -> 2.
        assert extension(chain, Diamond(Prop("p"))) == frozenset({1})

    def test_box(self, chain):
        # []p holds where every successor satisfies p (including dead ends).
        assert extension(chain, Box(Prop("p"))) == frozenset({1, 3})

    def test_box_diamond_duality(self, chain):
        assert equivalent_on(chain, Box(Prop("p")), Not(Diamond(Not(Prop("p")))))

    def test_nested_modalities(self, chain):
        # <><>q holds two steps before q.
        assert extension(chain, Diamond(Diamond(Prop("q")))) == frozenset({1})

    def test_graded_diamond(self, branching):
        assert extension(branching, GradedDiamond(Prop("p"), grade=1)) == frozenset({"root"})
        assert extension(branching, GradedDiamond(Prop("p"), grade=2)) == frozenset({"root"})
        assert extension(branching, GradedDiamond(Prop("p"), grade=3)) == frozenset()

    def test_graded_zero_is_trivially_true(self, branching):
        assert extension(branching, GradedDiamond(Prop("p"), grade=0)) == branching.worlds

    def test_graded_diamond_generalises_diamond(self, branching):
        assert equivalent_on(branching, Diamond(Prop("p")), GradedDiamond(Prop("p"), grade=1))


class TestMultimodal:
    def test_indexed_diamonds_use_their_relation(self):
        model = KripkeModel(
            worlds=["x", "y"],
            relations={"a": [("x", "y")], "b": []},
            valuation={"p": ["y"]},
        )
        assert extension(model, Diamond(Prop("p"), index="a")) == frozenset({"x"})
        assert extension(model, Diamond(Prop("p"), index="b")) == frozenset()

    def test_unindexed_diamond_on_multimodal_model_rejected(self):
        model = KripkeModel(
            worlds=["x"],
            relations={"a": [], "b": []},
            valuation={},
        )
        with pytest.raises(ValueError):
            extension(model, Diamond(Prop("p")))


class TestSatisfies:
    def test_satisfies(self, chain):
        assert satisfies(chain, 0, Prop("p"))
        assert not satisfies(chain, 1, Prop("p"))

    def test_unknown_world_rejected(self, chain):
        with pytest.raises(ValueError):
            satisfies(chain, 99, Prop("p"))
