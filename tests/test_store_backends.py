"""Tests for the pluggable storage backends: URIs, parity, migration, crashes.

The backend contract is digest interchangeability: the same records and spec
must produce byte-identical manifests whichever backend holds them.  The
parity tests run every store operation against both backends; the migration
tests verify the digest chain survives a backend conversion; the concurrency
tests check that two processes writing one store (either backend) lose
nothing, and that a sqlite writer killed mid-transaction leaves a store that
resumes cleanly.
"""

from __future__ import annotations

import multiprocessing
import os
import sqlite3
import subprocess
import sys

import pytest

from repro.campaign import (
    CampaignSpec,
    GraphGrid,
    JsonBackend,
    ResultStore,
    SqliteBackend,
    StoreBackend,
    StoreError,
    migrate_store,
    open_backend,
    parse_store_uri,
    run_campaign,
)
from repro.campaign.store import record_digest

BACKEND_URIS = {
    "json": lambda tmp: f"json:{tmp / 'store'}",
    "sqlite": lambda tmp: f"sqlite:{tmp / 'store.db'}",
}


def small_spec(name: str = "bk") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="execution",
        graphs=[GraphGrid.of("cycle", {"n": [4, 5, 6]})],
        port_strategies=["consistent"],
        model_classes=["SB"],
        seeds=[0],
    )


def fake_record(tag: int) -> dict:
    scenario = {
        "kind": "execution",
        "family": "cycle",
        "graph_params": [["n", 4 + tag]],
        "seed": 0,
        "port_strategy": "consistent",
        "model_class": "SB",
        "algorithm": "leader-detect",
        "formula_set": None,
        "machine": None,
        "engine": "sweep",
        "max_rounds": 64,
    }
    return {
        "hash": f"{tag:064x}",
        "scenario": scenario,
        "kind": "execution",
        "result": {"output_digest": f"d{tag}", "halted": True, "rounds": tag},
        "elapsed_s": 0.5,
    }


@pytest.fixture(params=sorted(BACKEND_URIS))
def backend(request, tmp_path):
    return ResultStore(BACKEND_URIS[request.param](tmp_path))


class TestStoreUris:
    def test_explicit_schemes(self, tmp_path):
        assert parse_store_uri("json:some/dir") == ("json", "some/dir")
        assert parse_store_uri("sqlite:camp.db") == ("sqlite", "camp.db")

    def test_bare_directory_is_json(self, tmp_path):
        assert parse_store_uri(str(tmp_path / "store"))[0] == "json"

    def test_bare_db_suffix_is_sqlite(self, tmp_path):
        for suffix in (".db", ".sqlite", ".sqlite3"):
            assert parse_store_uri(str(tmp_path / f"s{suffix}"))[0] == "sqlite"

    def test_existing_regular_file_is_sqlite(self, tmp_path):
        path = tmp_path / "store"  # no telling suffix
        SqliteBackend(path).put(fake_record(1))
        assert parse_store_uri(str(path))[0] == "sqlite"

    def test_unknown_scheme_is_an_error(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            parse_store_uri("postgres:somewhere")

    def test_empty_path_is_an_error(self):
        with pytest.raises(ValueError, match="empty path"):
            parse_store_uri("sqlite:")

    def test_open_backend_dispatch(self, tmp_path):
        assert isinstance(open_backend(f"json:{tmp_path / 'a'}"), JsonBackend)
        assert isinstance(open_backend(f"sqlite:{tmp_path / 'a.db'}"), SqliteBackend)
        backend = open_backend(f"sqlite:{tmp_path / 'b.db'}")
        assert open_backend(backend) is backend

    def test_resultstore_dispatches_on_uri(self, tmp_path):
        json_store = ResultStore(tmp_path / "plain")
        sqlite_store = ResultStore(f"sqlite:{tmp_path / 'c.db'}")
        assert isinstance(json_store, ResultStore)  # the json compat class
        assert isinstance(sqlite_store, SqliteBackend)
        assert not isinstance(sqlite_store, ResultStore)
        assert ResultStore(sqlite_store) is sqlite_store
        for store in (json_store, sqlite_store):
            assert isinstance(store, StoreBackend)
            assert store.uri.startswith(f"{store.scheme}:")


class TestBackendParity:
    """Every operation behaves identically on both backends."""

    def test_put_get_roundtrip(self, backend):
        record = fake_record(1)
        assert not backend.has(record["hash"])
        assert backend.put(record)
        assert backend.has(record["hash"])
        assert backend.get(record["hash"]) == record
        assert backend.record_digest_of(record["hash"]) == record_digest(record)

    def test_put_is_idempotent_and_existing_wins(self, backend):
        record = fake_record(1)
        assert backend.put(record)
        changed = dict(record, result=dict(record["result"], rounds=99))
        assert not backend.put(changed)
        assert backend.get(record["hash"])["result"]["rounds"] == record["result"]["rounds"]
        assert backend.put(changed, overwrite=True) or backend.scheme == "sqlite"
        assert backend.get(record["hash"])["result"]["rounds"] == 99

    def test_volatile_fields_do_not_change_the_digest(self, backend):
        record = fake_record(1)
        slower = dict(record, elapsed_s=99.0)
        assert record_digest(record) == record_digest(slower)

    def test_put_many_counts_only_new_records(self, backend):
        first = [fake_record(i) for i in range(4)]
        assert backend.put_many(first) == 4
        assert backend.put_many(first + [fake_record(9)]) == 1
        assert backend.count_records() == 5

    def test_batch_reads(self, backend):
        records = [fake_record(i) for i in range(7)]
        backend.put_many(records)
        hashes = [r["hash"] for r in records]
        assert backend.has_many(hashes + ["f" * 64]) == set(hashes)
        assert list(backend.get_many(reversed(hashes))) == list(reversed(records))
        assert backend.record_digests_of(hashes) == [record_digest(r) for r in records]

    def test_missing_records_raise_keyerror(self, backend):
        backend.put(fake_record(1))
        with pytest.raises(KeyError):
            backend.get("f" * 64)
        with pytest.raises(KeyError):
            list(backend.get_many([fake_record(1)["hash"], "f" * 64]))
        with pytest.raises(KeyError):
            backend.record_digests_of(["f" * 64])

    def test_iter_records_streams_everything(self, backend):
        records = [fake_record(i) for i in range(5)]
        backend.put_many(records)
        streamed = {r["hash"]: r for r in backend.iter_records()}
        assert streamed == {r["hash"]: r for r in records}

    def test_manifest_roundtrip_and_digest_identity(self, tmp_path):
        """The same spec + records produce byte-identical manifests on both."""
        spec = small_spec()
        scenarios = spec.expand()
        from repro.campaign.executor import evaluate_scenarios

        records = evaluate_scenarios(scenarios)
        manifests = {}
        for scheme, make in BACKEND_URIS.items():
            store = ResultStore(make(tmp_path / scheme))
            store.put_many(records)
            _, digest = store.write_manifest(spec, scenarios)
            manifests[scheme] = (digest, store.read_manifest_text(spec.name))
            assert store.list_campaigns() == [spec.name]
        assert manifests["json"] == manifests["sqlite"]

    def test_missing_manifest_names_known_campaigns(self, backend):
        with pytest.raises(KeyError, match="no manifest"):
            backend.read_manifest("ghost")

    def test_read_only_construction_creates_nothing(self, tmp_path):
        for scheme, make in BACKEND_URIS.items():
            store = ResultStore(make(tmp_path / scheme))
            assert not store.has("a" * 64)
            assert store.has_many(["a" * 64]) == set()
            assert store.count_records() == 0
            assert store.list_campaigns() == []
            assert list(store.iter_records()) == []
            assert list((tmp_path / scheme).glob("**/*") if (tmp_path / scheme).exists() else []) == []

    def test_backends_survive_pickling(self, backend):
        import pickle

        backend.put(fake_record(1))
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.has(fake_record(1)["hash"])
        assert clone.uri == backend.uri


class TestCorruption:
    def test_truncated_json_object_reads_as_missing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = fake_record(1)
        store.put(record)
        path = store._object_path(record["hash"])
        path.write_text(path.read_text()[:-10])  # truncate the tail
        assert not store.has(record["hash"])  # treated as missing...
        with pytest.raises(StoreError, match=str(path)):
            store.get(record["hash"])  # ...but a direct read names the file

    def test_put_replaces_a_corrupt_object(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = fake_record(1)
        store.put(record)
        store._object_path(record["hash"]).write_text("{broken")
        assert store.put(record)
        assert store.get(record["hash"]) == record

    def test_resume_reevaluates_corrupt_records(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "store")
        run_campaign(spec, store, log=None)
        victim = spec.expand()[0].content_hash()
        store._object_path(victim).write_text("{broken")
        rerun = run_campaign(spec, ResultStore(tmp_path / "store"), log=None)
        assert rerun.executed == 1  # only the corrupt record re-ran
        assert ResultStore(tmp_path / "store").get(victim)["hash"] == victim

    def test_corrupt_sqlite_row_raises_storeerror_naming_the_store(self, tmp_path):
        store = ResultStore(f"sqlite:{tmp_path / 's.db'}")
        record = fake_record(1)
        store.put(record)
        store.close()
        with sqlite3.connect(tmp_path / "s.db") as conn:
            conn.execute("UPDATE objects SET record = '{broken'")
        with pytest.raises(StoreError, match="s.db"):
            ResultStore(f"sqlite:{tmp_path / 's.db'}").get(record["hash"])

    def test_empty_put_many_writes_nothing(self, backend, monkeypatch):
        flushes = []
        monkeypatch.setattr(
            type(backend), "save_index", lambda self: flushes.append(1), raising=False
        )
        assert backend.put_many([]) == 0
        assert flushes == []

    def test_all_hit_put_many_skips_the_index_flush(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        records = [fake_record(i) for i in range(3)]
        store.put_many(records)
        flushes = []
        monkeypatch.setattr(ResultStore, "save_index", lambda self: flushes.append(1))
        assert store.put_many(records) == 0  # every record already present
        assert flushes == []


class TestMigration:
    def _seeded_store(self, uri: str):
        spec = small_spec()
        store = ResultStore(uri)
        run_campaign(spec, store, log=None)
        return spec, store

    @pytest.mark.parametrize(
        "src_scheme, dst_scheme", [("json", "sqlite"), ("sqlite", "json")]
    )
    def test_migrate_preserves_the_digest_chain(self, tmp_path, src_scheme, dst_scheme):
        spec, src = self._seeded_store(BACKEND_URIS[src_scheme](tmp_path))
        dst_uri = BACKEND_URIS[dst_scheme](tmp_path / "dst")
        report = migrate_store(src, dst_uri)
        assert report["records_copied"] == src.count_records()
        assert report["records_already_present"] == 0
        assert report["campaigns"] == [
            {
                "campaign": spec.name,
                "manifest_digest": src.read_manifest(spec.name)["manifest_digest"],
            }
        ]
        dst = ResultStore(dst_uri)
        assert dst.read_manifest_text(spec.name) == src.read_manifest_text(spec.name)
        # The migrated store is a drop-in: resuming against it runs nothing.
        rerun = run_campaign(spec, dst, log=None)
        assert rerun.executed == 0
        assert rerun.manifest_digest == report["campaigns"][0]["manifest_digest"]

    def test_migrate_is_resumable_and_merges(self, tmp_path):
        _, src = self._seeded_store(BACKEND_URIS["json"](tmp_path))
        dst_uri = BACKEND_URIS["sqlite"](tmp_path / "dst")
        migrate_store(src, dst_uri)
        again = migrate_store(src, dst_uri)
        assert again["records_copied"] == 0
        assert again["records_already_present"] == src.count_records()

    def test_migrate_rejects_the_same_store(self, tmp_path):
        _, src = self._seeded_store(BACKEND_URIS["json"](tmp_path))
        with pytest.raises(ValueError, match="same store"):
            migrate_store(src, src.uri)

    def test_migrate_detects_tampered_records(self, tmp_path):
        spec, src = self._seeded_store(BACKEND_URIS["json"](tmp_path))
        dst_uri = f"sqlite:{tmp_path / 'dst.db'}"
        dst = ResultStore(dst_uri)
        # Pre-seed the destination with a record whose digest disagrees.
        victim = spec.expand()[0].content_hash()
        tampered = src.get(victim)
        tampered["result"]["rounds"] += 1
        dst.put(tampered)
        with pytest.raises(StoreError, match="digest"):
            migrate_store(src, dst)


class TestCli:
    def _run(self, tmp_path, spec_name: str, uri: str) -> None:
        from repro.campaign.__main__ import main as campaign_main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec(spec_name).to_json())
        assert campaign_main(["--store", uri, "run", str(spec_path), "--json"]) == 0

    def test_list_shows_record_counts_and_backend(self, tmp_path, capsys):
        from repro.campaign.__main__ import main as campaign_main

        uri = f"sqlite:{tmp_path / 'store.db'}"
        self._run(tmp_path, "listed", uri)
        capsys.readouterr()
        assert campaign_main(["--store", uri, "list"]) == 0
        out = capsys.readouterr().out
        total = len(small_spec().expand())
        assert "sqlite backend" in out
        assert f"{total} records" in out
        assert f"{total:5d}/{total} records" in out

    def test_migrate_verb_converts_and_verifies(self, tmp_path, capsys):
        from repro.campaign.__main__ import main as campaign_main

        src = f"json:{tmp_path / 'src'}"
        dst = f"sqlite:{tmp_path / 'dst.db'}"
        self._run(tmp_path, "mig", src)
        capsys.readouterr()
        assert campaign_main(["--store", src, "migrate", src, dst]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert campaign_main(["--store", dst, "report", "mig", "--json"]) == 0

    def test_migrate_verb_rejects_bad_uris(self, tmp_path):
        from repro.campaign.__main__ import main as campaign_main

        with pytest.raises(SystemExit, match="unknown store backend"):
            campaign_main(["migrate", f"json:{tmp_path}", "postgres:x"])


def _writer(uri: str, tags: list[int]) -> None:
    store = ResultStore(uri)
    store.put_many([fake_record(tag) for tag in tags])


class TestConcurrentWriters:
    @pytest.mark.parametrize("scheme", sorted(BACKEND_URIS))
    def test_two_processes_lose_nothing(self, tmp_path, scheme):
        uri = BACKEND_URIS[scheme](tmp_path)
        # Overlapping tag ranges: the overlap exercises the existing-record-
        # wins path under contention, the disjoint parts must all land.
        first, second = list(range(0, 40)), list(range(20, 60))
        procs = [
            multiprocessing.Process(target=_writer, args=(uri, tags))
            for tags in (first, second)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = ResultStore(uri)
        expected = [fake_record(tag) for tag in sorted(set(first + second))]
        assert store.count_records() == len(expected)
        assert store.record_digests_of([r["hash"] for r in expected]) == [
            record_digest(r) for r in expected
        ]

    def test_sqlite_killed_mid_transaction_resumes_cleanly(self, tmp_path):
        uri = f"sqlite:{tmp_path / 'store.db'}"
        store = ResultStore(uri)
        store.put_many([fake_record(i) for i in range(5)])
        store.close()
        # A writer that dies inside an open transaction: rows inserted but
        # never committed.  WAL recovery must roll them back on the next open.
        script = f"""
import sqlite3, os
conn = sqlite3.connect({str(tmp_path / 'store.db')!r}, isolation_level=None)
conn.execute("BEGIN IMMEDIATE")
conn.execute("INSERT INTO objects (hash, digest, record) VALUES ('x'*64, 'd', '{{}}')")
os._exit(1)
"""
        result = subprocess.run([sys.executable, "-c", script], env=os.environ)
        assert result.returncode == 1
        fresh = ResultStore(uri)
        assert fresh.count_records() == 5  # the uncommitted row rolled back
        assert not fresh.has("x" * 64)
        assert fresh.put_many([fake_record(9)]) == 1  # the store still writes
