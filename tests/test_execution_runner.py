"""Unit tests for the synchronous execution engine (Section 1.3)."""

from __future__ import annotations

import pytest

from repro.algorithms.basic import (
    ConstantAlgorithm,
    DegreeAlgorithm,
    GatherDegreesAlgorithm,
    NeighbourDegreeSumAlgorithm,
    PortEchoAlgorithm,
    RoundCounterAlgorithm,
)
from repro.execution.runner import ExecutionError, run
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.ports import PortNumbering, consistent_port_numbering
from repro.machines.algorithm import MultisetBroadcastAlgorithm, Output, VectorAlgorithm


class TestBasicExecution:
    def test_constant_algorithm_halts_in_zero_rounds(self):
        result = run(ConstantAlgorithm(7), cycle_graph(4))
        assert result.rounds == 0
        assert result.halted
        assert set(result.outputs.values()) == {7}

    def test_degree_algorithm(self):
        result = run(DegreeAlgorithm(), star_graph(4))
        assert result.outputs[0] == 4
        assert result.outputs[1] == 1

    def test_round_counter_runs_exact_number_of_rounds(self):
        for rounds in (1, 3, 7):
            result = run(RoundCounterAlgorithm(rounds), cycle_graph(3))
            assert result.rounds == rounds
            assert set(result.outputs.values()) == {rounds}

    def test_neighbour_degree_sum(self):
        result = run(NeighbourDegreeSumAlgorithm(), star_graph(3))
        assert result.outputs[0] == 3  # three leaves of degree 1
        assert result.outputs[1] == 3  # the centre has degree 3

    def test_gather_degrees(self):
        result = run(GatherDegreesAlgorithm(), path_graph(3))
        assert result.outputs[0] == (2,)
        assert result.outputs[1] == (1, 1)

    def test_empty_graph(self):
        result = run(ConstantAlgorithm(0), Graph())
        assert result.outputs == {}
        assert result.halted

    def test_isolated_nodes(self):
        graph = Graph(nodes=["lonely"], edges=[])
        result = run(NeighbourDegreeSumAlgorithm(), graph)
        assert result.outputs == {"lonely": 0}


class TestPortNumberingSensitivity:
    def test_port_echo_depends_on_numbering(self):
        graph = star_graph(2)
        base = consistent_port_numbering(graph)
        swapped = PortNumbering(graph, {0: (2, 1), 1: (0,), 2: (0,)})
        out_base = run(PortEchoAlgorithm(), graph, base).outputs
        out_swapped = run(PortEchoAlgorithm(), graph, swapped).outputs
        assert out_base[1] != out_swapped[1]

    def test_numbering_of_wrong_graph_rejected(self):
        graph = path_graph(3)
        other = path_graph(4)
        with pytest.raises(ValueError):
            run(ConstantAlgorithm(), graph, consistent_port_numbering(other))

    def test_default_numbering_is_consistent_canonical(self):
        graph = cycle_graph(4)
        explicit = run(PortEchoAlgorithm(), graph, consistent_port_numbering(graph)).outputs
        default = run(PortEchoAlgorithm(), graph).outputs
        assert explicit == default


class TestMessageDelivery:
    def test_messages_travel_along_the_numbering(self):
        graph = path_graph(2)

        class SendName(VectorAlgorithm):
            def initial_state(self, degree):
                return degree

            def send(self, state, port):
                return ("from-degree", state)

            def transition(self, state, received):
                return Output(received[0])

        result = run(SendName(), graph)
        assert result.outputs[0] == ("from-degree", 1)
        assert result.outputs[1] == ("from-degree", 1)

    def test_halted_nodes_send_no_message(self):
        class HaltThenListen(MultisetBroadcastAlgorithm):
            """Degree-1 nodes halt immediately; others report what they hear."""

            def initial_state(self, degree):
                return Output("leaf") if degree == 1 else "listening"

            def broadcast(self, state):
                return "alive"

            def transition(self, state, received):
                return Output(sorted(received))

        result = run(HaltThenListen(), star_graph(2))
        from repro.machines.algorithm import NO_MESSAGE

        assert result.outputs[0] == sorted([NO_MESSAGE, NO_MESSAGE])
        assert result.outputs[1] == "leaf"


class TestTermination:
    def test_non_halting_algorithm_raises(self):
        class Forever(MultisetBroadcastAlgorithm):
            def initial_state(self, degree):
                return 0

            def broadcast(self, state):
                return "m"

            def transition(self, state, received):
                return state + 1

        with pytest.raises(ExecutionError):
            run(Forever(), cycle_graph(3), max_rounds=10)

    def test_non_halting_algorithm_reported_when_not_required(self):
        class Forever(MultisetBroadcastAlgorithm):
            def initial_state(self, degree):
                return 0

            def broadcast(self, state):
                return "m"

            def transition(self, state, received):
                return state + 1

        result = run(Forever(), cycle_graph(3), max_rounds=5, require_halt=False)
        assert not result.halted
        assert result.rounds == 5
        assert result.outputs == {}


class TestTraces:
    def test_trace_records_states_and_messages(self):
        result = run(RoundCounterAlgorithm(3), cycle_graph(4), record_trace=True)
        trace = result.trace
        assert trace is not None
        assert trace.rounds == 3
        assert len(trace.state_history) == 4
        # Every round delivers one message per port: 8 ports in a 4-cycle.
        assert all(len(per_round) == 8 for per_round in trace.received_messages[1:])

    def test_trace_not_recorded_by_default(self):
        assert run(ConstantAlgorithm(), path_graph(2)).trace is None
