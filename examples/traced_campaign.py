"""A campaign run under full telemetry: metrics, span trace, exporters.

This is the programmatic face of ``python -m repro.campaign run ...
--metrics --trace``: enable the process-wide metrics registry and a
JSON-lines span trace, run a sharded campaign (the counters fold back from
the worker processes via snapshot deltas), then read everything back --
the metrics table, the Prometheus exposition, and the per-span aggregate
table ``python -m repro.obs report`` renders from the trace file.

The closing assertions are the telemetry contract: the counters, the span
attributes and the campaign's own manifest must agree on how much work
happened (scenario count, records written, dedup accounting).

Run with ``python examples/traced_campaign.py`` (after ``pip install -e .``
or ``export PYTHONPATH=src``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import obs
from repro.campaign import CampaignSpec, GraphGrid, ResultStore, run_campaign

spec = CampaignSpec(
    name="traced-survey",
    kind="execution",
    description="cycle survey under telemetry",
    graphs=[GraphGrid.of("cycle", {"n": [4, 5, 6, 7]})],
    port_strategies=["consistent", "random"],
    model_classes=["SB", "MV"],
    engines=["sweep"],
    seeds=[0],
)

with tempfile.TemporaryDirectory() as root:
    trace_file = Path(root) / "trace.jsonl"
    obs.configure_logging("info")
    obs.enable()  # metrics: a no-op boolean check everywhere until this call
    obs.configure_tracing(path=str(trace_file))

    store = ResultStore(Path(root) / "store")
    summary = run_campaign(spec, store, workers=2)
    obs.stop_tracing()  # close the sink so the file is complete

    snapshot = obs.snapshot()
    print(obs.format_metrics_table(snapshot))
    print()

    # The same snapshot, rendered for a Prometheus scrape endpoint.
    prometheus = obs.prometheus_text(snapshot)
    print("\n".join(line for line in prometheus.splitlines() if "sweep" in line))
    print()

    # The trace file, aggregated per span name -- what the CLI renders via
    # ``python -m repro.obs report <trace-file>``.
    aggregates = obs.aggregate_spans(obs.load_trace(str(trace_file)))
    print(obs.format_span_table(aggregates))

    # The telemetry contract: counters, span attrs and the manifest agree.
    counters = snapshot["counters"]
    total = len(store.read_manifest(spec.name)["scenarios"])
    assert summary.executed == total
    assert counters["campaign.scenarios.execution"] == total
    assert counters["store.json.records_written"] == total == store.count_records()
    assert aggregates["campaign.run"]["attrs"]["executed"] == total
    assert aggregates["store.put_many"]["attrs"]["written"] == total

    naive = counters["sweep.occurrences"] + counters.get("sweep.replicated_occurrences", 0)
    evaluations = counters["sweep.evaluations"]
    assert naive == aggregates["engine.sweep.run"]["attrs"]["naive_occurrences"]
    print(
        f"\ntelemetry agrees with the manifest: {total} scenarios, "
        f"superposition dedup {naive / max(evaluations, 1):.1f}x"
    )
