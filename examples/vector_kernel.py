"""Tour of ``engine="vector"``: the NumPy kernel behind the engine registry.

Three stops:

1. the registry -- discovery (`available_engines`), resolution
   (`resolve_engine`) and the capability/availability error taxonomy;
2. a vectorised adversarial sweep -- hundreds of random port numberings of
   one 3-regular graph executed as batched array operations, checked
   node-for-node against the superposed sweep engine and timed;
3. a vectorised ``check_many`` batch -- a modal/graded formula batch over a
   large sparse Kripke model on the CSR kernel, checked bit-for-bit against
   the compiled bitset engine and timed.

Run with ``python examples/vector_kernel.py`` (after ``pip install -e .``
or ``export PYTHONPATH=src``).  NumPy is required here -- that is the point
of the example -- but the library itself treats it as optional: on a box
without it this script exits early, showing exactly the error a user would
see.
"""

from __future__ import annotations

import random
import sys
import time

from repro.engines import available_engines, resolve_engine
from repro.engines.registry import EngineCapabilityError, EngineUnavailableError

# ----------------------------------------------------------------------- #
# 1. The registry: one place to ask what can run here
# ----------------------------------------------------------------------- #

print("available engines:", ", ".join(available_engines()))
print("engines that model-check:", ", ".join(available_engines(requires={"logic"})))

try:
    spec = resolve_engine("vector")
except EngineUnavailableError as err:
    # numpy is missing: the registry degrades to a precise, actionable error
    # (it is both an ImportError and a ValueError).
    print(f"vector engine unavailable: {err}")
    sys.exit(0)

print(f"vector spec: batched={spec.batched}, capabilities={sorted(spec.capabilities)}")

# Capability mismatches are diagnosed at the same choke point: the sweep
# executor has no model checker, and asking for one says so by name.
from repro.logic.engine import check_many  # noqa: E402
from repro.logic.kripke import KripkeModel  # noqa: E402
from repro.logic.syntax import Box, Diamond, GradedDiamond, Prop  # noqa: E402

tiny = KripkeModel(
    worlds=frozenset([0, 1]),
    relations={"a": frozenset([(0, 1)])},
    valuation={"p": frozenset([1])},
)
try:
    check_many(tiny, [Prop("p")], engine="sweep")
except EngineCapabilityError as err:
    print(f"capability error, as expected: {err}")

# ----------------------------------------------------------------------- #
# 2. A vectorised adversarial sweep
# ----------------------------------------------------------------------- #

from repro.execution.engine import compile_instance  # noqa: E402
from repro.execution.sweep import run_sweep  # noqa: E402
from repro.execution.vector import run_vector  # noqa: E402
from repro.graphs.generators import random_regular_graph  # noqa: E402
from repro.graphs.ports import random_port_numbering  # noqa: E402
from repro.machines import MultisetAlgorithm  # noqa: E402


class CyclicPhase(MultisetAlgorithm):
    """A finite-state machine: a phase counter ticking modulo 5."""

    def initial_state(self, degree):
        return (0, degree)

    def send(self, state, port):
        return (state[0], port)

    def transition(self, state, received):
        return ((state[0] + 1) % 5, state[1])


graph = random_regular_graph(3, 128, seed=1)
rng = random.Random(0)
instances = [
    compile_instance((graph, random_port_numbering(graph, rng=rng)))
    for _ in range(120)
]

algorithm = CyclicPhase()
# Warm both engines' tables, then time the steady state.
run_vector(algorithm, instances, require_halt=False, max_rounds=32)
run_sweep(algorithm, instances, require_halt=False, max_rounds=32)

tick = time.perf_counter()
vectored = run_vector(algorithm, instances, require_halt=False, max_rounds=32)
vector_s = time.perf_counter() - tick
tick = time.perf_counter()
swept = run_sweep(algorithm, instances, require_halt=False, max_rounds=32)
sweep_s = time.perf_counter() - tick

assert [r.outputs for r in vectored] == [r.outputs for r in swept]
print(
    f"adversarial sweep ({len(instances)} numberings x 32 rounds): "
    f"sweep {sweep_s * 1000:.0f}ms, vector {vector_s * 1000:.0f}ms "
    f"({sweep_s / vector_s:.1f}x), outputs identical"
)

# ----------------------------------------------------------------------- #
# 3. A vectorised check_many batch
# ----------------------------------------------------------------------- #

world_count = 5000
model_rng = random.Random(7)
edges = frozenset(
    (u, model_rng.randrange(world_count))
    for u in range(world_count)
    for _ in range(6)
)
model = KripkeModel(
    worlds=frozenset(range(world_count)),
    relations={"a": edges},
    valuation={
        "p": frozenset(w for w in range(world_count) if model_rng.random() < 0.5)
    },
)
formulas = [
    Diamond(Prop("p"), index="a"),
    Box(Prop("p"), index="a"),
    GradedDiamond(Prop("p"), 3, index="a"),
    Diamond(Box(Prop("p"), index="a"), index="a"),
]

# Warm the compiled and vector forms (both cached on the model).
check_many(model, formulas, engine="compiled")
check_many(model, formulas, engine="vector")

tick = time.perf_counter()
compiled = check_many(model, formulas, engine="compiled")
compiled_s = time.perf_counter() - tick
tick = time.perf_counter()
vectored = check_many(model, formulas, engine="vector")
vector_s = time.perf_counter() - tick

assert vectored == compiled
print(
    f"check_many ({world_count} worlds x {len(formulas)} formulas): "
    f"compiled {compiled_s * 1000:.1f}ms, vector {vector_s * 1000:.1f}ms "
    f"({compiled_s / vector_s:.1f}x), extensions identical"
)
