"""Declare a scenario sweep, run it sharded, resume it, aggregate it.

This is the programmatic face of ``python -m repro.campaign``: build a
:class:`~repro.campaign.CampaignSpec` grid, run it through the sharded
executor into a content-addressed store, then re-run it to show that every
scenario resumes from the store and the manifest digest is unchanged.

Run with ``python examples/campaign_sweep.py`` (after ``pip install -e .``
or ``export PYTHONPATH=src``).
"""

from __future__ import annotations

import tempfile

from repro.campaign import (
    CampaignSpec,
    GraphGrid,
    ResultStore,
    campaign_result,
    load_records,
    run_campaign,
)
from repro.experiments.report import format_report

# A custom sweep: how do the representative workloads of four problem
# classes behave on tori, circulants and random trees when the adversary
# varies the port numbering?  Param values that are lists sweep; note the
# nested list for circulant jumps (one swept value that is itself a list).
spec = CampaignSpec(
    name="demo-sweep",
    kind="execution",
    description="per-class workloads on tori, circulants and random trees",
    graphs=[
        GraphGrid.of("torus", {"rows": 3, "cols": [3, 4]}),
        GraphGrid.of("circulant", {"n": [8, 10], "jumps": [[1, 2]]}),
        GraphGrid.of("random-tree", {"n": [6, 9]}),
    ],
    port_strategies=["consistent", "random"],
    model_classes=["SB", "MB", "MV", "VV"],
    seeds=[0, 1],
    expectations={
        # The weak-model workloads cannot see the numbering...
        "some-odd-neighbour": True,
        "neighbour-degree-sum": True,
        "gather-degrees": True,
        # ...the Vector workload genuinely uses it (the hierarchy's gap).
        "port-echo": False,
    },
)

with tempfile.TemporaryDirectory() as root:
    store = ResultStore(root)

    print(f"expanded {len(spec.expand())} scenarios, first few:")
    for scenario in spec.expand()[:3]:
        print(f"  {scenario.content_hash()[:12]}  {scenario.describe()}")

    print("\n-- cold run, sharded over 2 workers --")
    cold = run_campaign(spec, store, workers=2, log=print)

    print("\n-- identical re-run: everything resumes from the store --")
    warm = run_campaign(spec, store, log=print)
    assert warm.executed == 0 and warm.store_hit_rate == 1.0
    assert warm.manifest_digest == cold.manifest_digest

    print("\n-- aggregated per-workload report --")
    stored_spec, records = load_records(store, spec.name)
    print(format_report([campaign_result(stored_spec, records)]))
