#!/usr/bin/env python3
"""Distributed vertex cover in the port-numbering model (Section 3.3).

The paper's motivation for studying the weak models is that non-trivial
optimisation is possible even without identifiers: a 2-approximate vertex
cover is computable in MB(1).  This example runs the library's double-cover
matching algorithm (class VVc) on a family of bounded-degree graphs, verifies
that the output is a cover under adversarial consistent port numberings and
reports the measured approximation ratio against the exact optimum.

Run with::

    python examples/vertex_cover.py
"""

from __future__ import annotations

from repro import run
from repro.algorithms.vertex_cover import DoubleCoverMatchingVertexCover, cover_from_outputs
from repro.execution.adversary import port_numberings_to_check
from repro.graphs.generators import (
    cycle_graph,
    figure9_graph,
    grid_graph,
    random_bounded_degree_graph,
    star_graph,
)
from repro.graphs.matching import is_vertex_cover, minimum_vertex_cover


def evaluate(label, graph) -> None:
    algorithm = DoubleCoverMatchingVertexCover()
    optimum = len(minimum_vertex_cover(graph))
    worst = 0
    valid = True
    for numbering in port_numberings_to_check(
        graph, consistent_only=True, exhaustive_limit=30, samples=5
    ):
        result = run(algorithm, graph, numbering)
        cover = cover_from_outputs(result.outputs)
        valid = valid and is_vertex_cover(graph, cover)
        worst = max(worst, len(cover))
    ratio = worst / optimum if optimum else 1.0
    print(
        f"{label:<26} nodes={graph.number_of_nodes:>3}  cover={worst:>3}  "
        f"optimum={optimum:>3}  ratio={ratio:4.2f}  always a cover={valid}"
    )


def main() -> None:
    print("Distributed vertex cover via maximal matching of the bipartite double cover")
    print("(class VVc; ratios are measured against the exact minimum cover)\n")
    evaluate("path-like grid 2x5", grid_graph(2, 5))
    evaluate("cycle of 9", cycle_graph(9))
    evaluate("star with 6 leaves", star_graph(6))
    evaluate("Figure 9 graph", figure9_graph())
    for seed in (1, 2, 3):
        evaluate(f"random (14 nodes, deg<=3) #{seed}", random_bounded_degree_graph(14, 3, seed=seed))
    print("\nThe paper's MB(1) algorithm of [3] guarantees ratio 2; the simpler")
    print("construction used here stays close to 2 on these inputs and never")
    print("exceeds 3 (see experiment E11 / benchmarks/bench_vertex_cover.py).")


if __name__ == "__main__":
    main()
