#!/usr/bin/env python3
"""Distributed algorithms as modal formulas and back (Theorem 2, Table 3).

The example walks through the paper's Section 4 correspondence:

* a port-numbered graph becomes a Kripke model (four encodings, one per
  amount of port information);
* a modal formula is compiled into a local algorithm of the matching class and
  the two are shown to agree on every node;
* a finite-state algorithm is compiled back into a formula whose modal depth
  equals the running time.

Run with::

    python examples/modal_logic.py
"""

from __future__ import annotations

from repro import ProblemClass, cycle_graph, run, star_graph
from repro.graphs.generators import odd_odd_gadget_pair
from repro.logic.parser import parse_formula
from repro.logic.semantics import extension
from repro.logic.syntax import modal_depth
from repro.machines.state_machine import FiniteStateMachine, algorithm_from_machine
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.correspondence import formula_output
from repro.modal.encoding import kripke_encoding, variant_for_class
from repro.modal.formula_to_algorithm import algorithm_for_formula
from repro.graphs.ports import consistent_port_numbering


def formula_to_algorithm_demo() -> None:
    print("=== formula -> algorithm (Theorem 2, first half) ===")
    # "I have degree 1 and my neighbour reaches me through its port 1":
    # the SV(1) leaf-election condition of Theorem 11, written in MML.
    formula = parse_formula("deg1 & <*,1> true")
    print("formula:     ", formula)
    print("modal depth: ", modal_depth(formula))

    algorithm = algorithm_for_formula(formula, ProblemClass.SV)
    graph = star_graph(3)
    numbering = consistent_port_numbering(graph)

    outputs = run(algorithm, graph, numbering).outputs
    truth = formula_output(graph, numbering, formula, ProblemClass.SV)
    print("algorithm outputs:", outputs)
    print("formula extension:", truth)
    print("agree on every node:", outputs == truth)
    print()


def algorithm_to_formula_demo() -> None:
    print("=== algorithm -> formula (Theorem 2, second half) ===")

    # A one-round MB machine: accept iff the number of odd-degree neighbours is odd.
    def message(state, port):
        return "O" if state == "odd" else "E"

    def transition(state, vector):
        return sum(1 for m in vector if m == "O") % 2

    machine = FiniteStateMachine(
        delta_bound=3,
        intermediate_states=frozenset({"even", "odd"}),
        stopping_states=frozenset({0, 1}),
        messages=frozenset({"E", "O"}),
        initial_states={d: ("odd" if d % 2 else "even") for d in range(4)},
        message_table=message,
        transition_table=transition,
    )
    formula = formula_for_machine(machine, ProblemClass.MB, running_time=1)
    print("running time of the machine:  1")
    print("modal depth of the formula:  ", modal_depth(formula))

    graph, first, second = odd_odd_gadget_pair()
    numbering = consistent_port_numbering(graph)
    encoding = kripke_encoding(graph, numbering, variant=variant_for_class(ProblemClass.MB))
    truth = extension(encoding, formula)
    outputs = run(algorithm_from_machine(machine.as_state_machine()), graph, numbering).outputs
    agree = all((node in truth) == (outputs[node] == 1) for node in graph.nodes)
    print("formula and machine agree on the Theorem 13 witness graph:", agree)
    print(f"the two distinguished nodes get outputs {outputs[first]} and {outputs[second]}")
    print()


def encodings_demo() -> None:
    print("=== the four Kripke encodings of one port-numbered graph ===")
    graph = cycle_graph(4)
    numbering = consistent_port_numbering(graph)
    for problem_class in (ProblemClass.VV, ProblemClass.SV, ProblemClass.VB, ProblemClass.SB):
        encoding = kripke_encoding(graph, numbering, variant=variant_for_class(problem_class))
        print(
            f"  class {str(problem_class):3}  ->  indices {sorted(encoding.indices, key=repr)}"
        )
    print()


def main() -> None:
    formula_to_algorithm_demo()
    algorithm_to_formula_demo()
    encodings_demo()


if __name__ == "__main__":
    main()
