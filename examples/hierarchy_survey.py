#!/usr/bin/env python3
"""Re-derive the paper's main theorem and print the full experiment report.

The script does three things:

1. prints the trivial containments of Figure 5a and the proven linear order of
   Figure 5b straight from :mod:`repro.core.hierarchy`;
2. mechanically re-verifies the classification (simulations for the
   containments, bisimulation witnesses for the separations) via experiment E3;
3. runs the complete experiment suite (E1-E12) and prints the
   paper-vs-measured report that EXPERIMENTS.md is based on.

Run with::

    python examples/hierarchy_survey.py            # E3 only (fast)
    python examples/hierarchy_survey.py --all      # all twelve experiments
"""

from __future__ import annotations

import sys

from repro import ProblemClass
from repro.core.hierarchy import LEVEL_NAMES, distinct_levels, is_contained_in, summary
from repro.experiments import format_report
from repro.experiments.registry import run_all_experiments, run_experiment


def print_hierarchy() -> None:
    print("Trivial containments (Figure 5a) vs the proven order (Figure 5b)")
    print("-" * 68)
    for smaller in ProblemClass:
        for larger in ProblemClass:
            if smaller is larger:
                continue
            trivially = larger.trivially_contains(smaller)
            proven = is_contained_in(smaller, larger)
            if proven and not trivially:
                print(f"  {smaller} ⊆ {larger}   (new: only after the paper's collapse results)")
    print()
    print("The four distinct levels, weakest first:")
    for level, name in zip(distinct_levels(), LEVEL_NAMES):
        print(f"  {' = '.join(str(cls) for cls in level):<14}  {name}")
    print()
    print("Linear order:", summary().describe())
    print()


def main() -> None:
    print_hierarchy()

    if "--all" in sys.argv[1:]:
        results = run_all_experiments()
    else:
        results = [run_experiment("E3")]
    print(format_report(results))


if __name__ == "__main__":
    main()
