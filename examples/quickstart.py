#!/usr/bin/env python3
"""Quickstart: write a distributed algorithm, run it, inspect the weak models.

This example covers the basic workflow of the library:

1. build a graph and a port numbering (Section 1.2 of the paper),
2. write a deterministic anonymous algorithm in one of the weak models
   (Section 1.5) by subclassing an ``Algorithm`` base class,
3. execute it synchronously with :func:`repro.run` and read the outputs,
4. see how the same incoming traffic looks in the Vector / Multiset / Set
   receive modes (Figure 3).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FrozenMultiset,
    MultisetBroadcastAlgorithm,
    Output,
    ReceiveMode,
    consistent_port_numbering,
    cycle_graph,
    random_port_numbering,
    run,
    star_graph,
)


class CountOddNeighbours(MultisetBroadcastAlgorithm):
    """Each node outputs how many of its neighbours have odd degree.

    The algorithm lives in the class ``Multiset ∩ Broadcast`` (MB): it
    broadcasts a single message (its degree parity) and only needs the
    *multiset* of received messages -- no port numbers at all.
    """

    def initial_state(self, degree: int):
        return "odd" if degree % 2 == 1 else "even"

    def broadcast(self, state):
        return state

    def transition(self, state, received: FrozenMultiset):
        return Output(received.count("odd"))


def main() -> None:
    # A 5-cycle: every node has two even-degree neighbours.
    graph = cycle_graph(5)
    result = run(CountOddNeighbours(), graph)
    print("cycle of 5 nodes, outputs:", result.outputs)
    print("rounds used:", result.rounds)

    # A star: the centre sees 4 odd-degree leaves, every leaf sees the centre.
    graph = star_graph(4)
    result = run(CountOddNeighbours(), graph)
    print("\n4-star outputs:", result.outputs)

    # Port numberings are the adversary's choice.  An MB algorithm cannot even
    # notice the difference -- the output is identical for every numbering.
    numbering = random_port_numbering(graph)
    print("consistent numbering? ", consistent_port_numbering(graph).is_consistent())
    print("random numbering consistent? ", numbering.is_consistent())
    print("outputs under the random numbering:",
          run(CountOddNeighbours(), graph, numbering).outputs)

    # Figure 3 of the paper in one line each: the same three messages seen
    # through the three receive modes.
    raw = ("a", "b", "a")
    print("\nvector view:  ", ReceiveMode.VECTOR.project(raw))
    print("multiset view:", ReceiveMode.MULTISET.project(raw))
    print("set view:     ", ReceiveMode.SET.project(raw))


if __name__ == "__main__":
    main()
