"""The campaign work-queue service: submit, dedup, cancel, migrate.

This is the programmatic face of ``python -m repro.campaign serve|submit|
status|cancel``: start a :class:`~repro.campaign.CampaignService` on a
sqlite store, submit two overlapping campaigns (the second is answered
entirely by store hits and the first job's in-flight scenarios -- nothing
runs twice), cancel a third, read the streamed report, and finish by
migrating the store to the json layout with digest verification.

Run with ``python examples/campaign_service.py`` (after ``pip install -e .``
or ``export PYTHONPATH=src``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignService,
    CampaignSpec,
    GraphGrid,
    ResultStore,
    migrate_store,
    run_campaign,
)
from repro.experiments.report import format_report


def survey(name: str, sizes: list[int]) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="execution",
        description=f"cycle survey {sizes}",
        graphs=[GraphGrid.of("cycle", {"n": sizes})],
        port_strategies=["consistent", "random"],
        model_classes=["SB", "MV"],
        seeds=[0, 1],
    )


with tempfile.TemporaryDirectory() as root:
    store_uri = f"sqlite:{Path(root) / 'campaigns.db'}"

    with CampaignService(store_uri, workers=2) as service:
        print(f"service on {service.store.uri} ({service.store.scheme} backend)")

        # Two overlapping submissions, back to back: every scenario the
        # second campaign shares with the first is deduplicated against the
        # store or the first job's in-flight shards.
        small = service.submit(survey("small-survey", [4, 5, 6]))
        large = service.submit(survey("large-survey", [4, 5, 6, 7, 8]))
        third = service.submit(survey("doomed-survey", [10, 11, 12]))
        service.cancel(third)

        service.wait()
        for job_id in (small, large, third):
            status = service.status(job_id)
            print(
                f"  {status['job']} {status['campaign']:15} {status['status']:10}"
                f" executed={status['executed']} store_hits={status['store_hits']}"
                f" inflight_hits={status['inflight_hits']}"
            )
        overlap = service.status(large)
        assert overlap["store_hits"] + overlap["inflight_hits"] > 0
        assert service.status(third)["status"] == "cancelled"

        # The report streamed out of the per-job rollup: no record reloads.
        print(format_report([service.result(large)]))
        service_digest = service.status(large)["manifest_digest"]

    # The service path is digest-compatible with the one-shot executor.
    serial = run_campaign(
        survey("large-survey", [4, 5, 6, 7, 8]), ResultStore(Path(root) / "serial")
    )
    assert serial.manifest_digest == service_digest
    print(f"service == serial manifest digest: {service_digest[:12]}")

    # Backend migration, digest-verified: sqlite -> loose-object json.
    report = migrate_store(store_uri, f"json:{Path(root) / 'json-store'}")
    print(
        f"migrated {report['records_copied']} records to {report['destination']}; "
        f"verified campaigns: {[c['campaign'] for c in report['campaigns']]}"
    )
