#!/usr/bin/env python3
"""A guided tour of the three separation witnesses (Theorems 11, 13, 17).

For each strict inclusion of the linear order the script shows both halves of
the argument on the actual witness graph:

* membership -- runs the solving algorithm of the *larger* class and checks
  the output against the problem specification;
* impossibility -- computes the bisimilarity classes of the *smaller* class's
  Kripke encoding and shows the witness nodes fall into one class, so no
  algorithm of that class can tell them apart (Corollary 3).

Run with::

    python examples/separations_tour.py
"""

from __future__ import annotations

from repro import run
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.local_types import LocalTypeSymmetryBreaking
from repro.algorithms.parity import OddOddNeighboursAlgorithm
from repro.graphs.covers import symmetric_port_numbering
from repro.graphs.generators import figure9_graph, odd_odd_gadget_pair, star_graph
from repro.graphs.matching import has_perfect_matching
from repro.logic.bisimulation import bisimilarity_classes
from repro.modal.encoding import KripkeVariant, kripke_encoding
from repro.separations import matchless_separation, odd_odd_separation, star_separation


def theorem_11() -> None:
    print("=== Theorem 11: leaf election separates VB from SV ===")
    graph = star_graph(4)
    outputs = run(LeafElectionAlgorithm(), graph).outputs
    elected = [node for node, value in outputs.items() if value == 1]
    print("SV algorithm on the 4-star elects leaf:", elected)

    encoding = kripke_encoding(graph, variant=KripkeVariant.NO_OUTPUT_PORTS)
    classes = bisimilarity_classes(encoding)
    print("bisimilarity classes in K+,- (broadcast view):",
          [sorted(block, key=str) for block in classes])
    print("=> all leaves are interchangeable for any VB algorithm")
    print("certificate verifies:", star_separation(4).verify())
    print()


def theorem_13() -> None:
    print("=== Theorem 13: counting separates SB from MB ===")
    graph, first, second = odd_odd_gadget_pair()
    outputs = run(OddOddNeighboursAlgorithm(), graph).outputs
    print(f"MB algorithm outputs: node {first} -> {outputs[first]}, node {second} -> {outputs[second]}")

    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    classes = bisimilarity_classes(encoding)
    together = next(block for block in classes if first in block)
    print("the two witnesses share a (plain) bisimilarity class:", second in together)
    print("certificate verifies:", odd_odd_separation().verify())
    print()


def theorem_17() -> None:
    print("=== Theorem 17: consistency separates VV from VVc ===")
    graph = figure9_graph()
    print("Figure 9 graph: 3-regular =", graph.is_regular(3),
          ", perfect matching =", has_perfect_matching(graph))

    outputs = run(LocalTypeSymmetryBreaking(), graph).outputs  # canonical consistent numbering
    print("VVc algorithm output values under a consistent numbering:",
          sorted(set(outputs.values())))

    symmetric = symmetric_port_numbering(graph)
    print("Lemma 15 numbering is consistent?", symmetric.is_consistent())
    encoding = kripke_encoding(graph, symmetric, variant=KripkeVariant.FULL)
    print("number of bisimilarity classes under it:", len(bisimilarity_classes(encoding)))
    outputs_symmetric = run(LocalTypeSymmetryBreaking(), graph, symmetric).outputs
    print("the same algorithm under the symmetric numbering outputs:",
          sorted(set(outputs_symmetric.values())), "(constant => fails, as it must)")
    print("certificate verifies:", matchless_separation().verify())
    print()


def main() -> None:
    theorem_11()
    theorem_13()
    theorem_17()


if __name__ == "__main__":
    main()
