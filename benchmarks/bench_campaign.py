"""Benchmark the campaign subsystem: store temperature and sharding.

Two questions, both on the built-in E3 hierarchy survey spec:

* ``test_full_sweep_store_temperature`` -- how much does the
  content-addressed store buy?  The ``cold`` side runs the full sweep into a
  fresh store every round; the ``warm`` side re-runs the identical spec
  against a fully-populated store (100% hits: expansion + index lookups +
  manifest rewrite only).  ``run_all.py`` pairs the two sides into the
  warm-store speedup figure of ``BENCH_<date>.json``; the >= 5x acceptance
  bar itself is asserted in tier-1 (``tests/test_campaign.py``).
* ``test_cold_sweep_sharding`` -- serial vs multiprocessing-sharded cold
  runs.  On the tiny per-scenario workloads of E3 the pool overhead usually
  wins; the numbers document the break-even point rather than a speedup.

Set ``REPRO_BENCH_SMOKE=1`` for the tiny CI size budget.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import pytest

from repro.campaign import builtin_spec, run_campaign
from repro.campaign.store import ResultStore

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
ROUNDS = 1 if SMOKE else 3


def sweep_spec():
    spec = builtin_spec("e3-hierarchy")
    if SMOKE:
        spec.seeds = [0]
        spec.port_strategies = ["consistent", "random"]
    return spec


@pytest.fixture
def scratch_dir():
    path = tempfile.mkdtemp(prefix="bench-campaign-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


@pytest.mark.parametrize("store_state", ["cold", "warm"])
def test_full_sweep_store_temperature(benchmark, scratch_dir, store_state):
    spec = sweep_spec()
    benchmark.extra_info["scenarios"] = len(spec.expand())

    if store_state == "warm":
        store = ResultStore(os.path.join(scratch_dir, "warm"))
        run_campaign(spec, store)

        result = benchmark.pedantic(
            run_campaign, args=(spec, store), rounds=ROUNDS, iterations=1
        )
        assert result.store_hit_rate >= 0.95
        assert result.executed == 0
    else:
        counter = iter(range(10_000))

        def fresh_store():
            return (spec, ResultStore(os.path.join(scratch_dir, f"cold-{next(counter)}"))), {}

        result = benchmark.pedantic(
            run_campaign, setup=fresh_store, rounds=ROUNDS, iterations=1
        )
        assert result.store_hit_rate == 0.0
        assert result.executed == result.total


@pytest.mark.parametrize("sharding", ["serial", "sharded"])
def test_cold_sweep_sharding(benchmark, scratch_dir, sharding):
    spec = sweep_spec()
    workers = 4 if sharding == "sharded" else None
    benchmark.extra_info["scenarios"] = len(spec.expand())
    benchmark.extra_info["workers"] = workers or 1
    counter = iter(range(10_000))

    def fresh_store():
        store = ResultStore(os.path.join(scratch_dir, f"{sharding}-{next(counter)}"))
        return (spec, store), {"workers": workers}

    result = benchmark.pedantic(run_campaign, setup=fresh_store, rounds=ROUNDS, iterations=1)
    assert result.executed == result.total
