"""Benchmark E1 -- port numbering construction and enumeration (Figures 1-2).

Regenerates the Section 1.2 artefacts: builds consistent and random port
numberings of increasingly large graphs and enumerates all consistent
numberings of small witness graphs (the basis of every adversarial check in
the reproduction).
"""

from __future__ import annotations

import random

import pytest

from repro.graphs.generators import cycle_graph, random_regular_graph, star_graph
from repro.graphs.ports import (
    all_port_numberings,
    consistent_port_numbering,
    random_port_numbering,
)


@pytest.mark.parametrize("size", [16, 64, 256], ids=lambda n: f"n{n}")
def test_consistent_numbering_construction(benchmark, size):
    graph = random_regular_graph(3, size, seed=1)
    numbering = benchmark(consistent_port_numbering, graph)
    assert numbering.is_consistent()


@pytest.mark.parametrize("size", [16, 64, 256], ids=lambda n: f"n{n}")
def test_random_numbering_construction(benchmark, size):
    graph = cycle_graph(size)
    rng = random.Random(7)
    numbering = benchmark(random_port_numbering, graph, rng)
    assert len(numbering.ports()) == 2 * size


def test_exhaustive_enumeration_of_star(benchmark):
    graph = star_graph(4)

    def enumerate_all():
        return sum(1 for _ in all_port_numberings(graph, consistent_only=True))

    count = benchmark(enumerate_all)
    assert count == 24


def test_consistency_check(benchmark):
    graph = random_regular_graph(3, 128, seed=3)
    numbering = consistent_port_numbering(graph)
    assert benchmark(numbering.is_consistent)
