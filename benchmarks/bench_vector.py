"""Benchmark the NumPy vector kernel against the sweep and compiled engines.

Two workload families, mirroring the two halves of the vector backend:

* **E9-shaped adversarial sweeps** -- finite-state cyclic machines (the
  shape where configuration tables saturate and the kernel's sort-free
  packed-key fast path pays off) over hundreds of random port numberings
  of one 3-regular graph, ``run_vector`` vs :func:`run_sweep`.  Broadcast
  classes are deliberately absent: on no-input sweeps they collapse to a
  handful of delivery-signature representatives, leaving nothing to
  vectorise.
* **10^4-world ``check_many`` batches** -- a modal/graded-heavy formula
  batch over one sparse random Kripke model, ``engine="vector"`` (CSR
  gather + cumsum modal operators) vs the compiled bitset checker.

``benchmarks/run_all.py`` turns these pairs into ``vector_sweep_pairs`` /
``vector_check_pairs`` and the ``geomean_vector_*_speedup`` headline
numbers in ``BENCH_<date>.json``; CI asserts floors on the smoke-size
geomeans (>= 3x sweeps, >= 5x check_many).  Skipped wholesale when NumPy
is not installed -- the numpy-free CI lane proves the fallback story
instead.  Set ``REPRO_BENCH_SMOKE=1`` for the tiny CI budget.
"""

from __future__ import annotations

import os
import random

import pytest

np = pytest.importorskip("numpy")

from repro.execution.engine import compile_instance  # noqa: E402
from repro.execution.sweep import SweepStats, run_sweep  # noqa: E402
from repro.execution.vector import run_vector  # noqa: E402
from repro.graphs.generators import random_regular_graph  # noqa: E402
from repro.graphs.ports import random_port_numbering  # noqa: E402
from repro.logic.engine import check_many  # noqa: E402
from repro.logic.kripke import KripkeModel  # noqa: E402
from repro.logic.syntax import (  # noqa: E402
    And,
    Box,
    Diamond,
    GradedDiamond,
    Not,
    Or,
    Prop,
)
from repro.machines import MultisetAlgorithm, SetAlgorithm  # noqa: E402

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Sampled numberings / graph size / round budget of the sweep pairs.
SWEEP_NODES = 96 if SMOKE else 256
SWEEP_SAMPLES = 150 if SMOKE else 100
SWEEP_ROUNDS = 32 if SMOKE else 48

#: The check_many batch keeps its defining 10^4-world size even under
#: smoke: the compiled side is only ~75ms/iteration and the speedup floor
#: is calibrated at exactly this scale.
CHECK_WORLDS = 10_000


class _CyclicMixin:
    """Finite-state machine: the honest sweep-benchmark shape.

    A cyclic phase counter saturates the configuration tables after one
    period, so both engines run memoised; the contest is pure per-round
    dispatch.  (Probes that intern a fresh state every round defeat
    memoisation in *both* engines and measure interning, not execution.)
    """

    PERIOD = 5

    def initial_state(self, degree):
        return (0, degree)

    def send(self, state, port):
        return (state[0], port)

    def transition(self, state, received):
        return ((state[0] + 1) % self.PERIOD, state[1])


class CyclicMultisetAlgorithm(_CyclicMixin, MultisetAlgorithm):
    pass


class CyclicSetAlgorithm(_CyclicMixin, SetAlgorithm):
    pass


SWEEP_RUNNERS = ("vector", "sweep")

SWEEP_ALGORITHMS = {
    "MV (CyclicMultiset)": CyclicMultisetAlgorithm(),
    "SV (CyclicSet)": CyclicSetAlgorithm(),
}

_GRAPH = random_regular_graph(3, SWEEP_NODES, seed=1)
_rng = random.Random(0)
SWEEP_INSTANCES = [
    compile_instance((_GRAPH, random_port_numbering(_GRAPH, rng=_rng)))
    for _ in range(SWEEP_SAMPLES)
]


def _run_sweep_side(runner: str, algorithm, instances):
    if runner == "vector":
        return run_vector(
            algorithm, instances, require_halt=False, max_rounds=SWEEP_ROUNDS
        )
    return run_sweep(
        algorithm, instances, require_halt=False, max_rounds=SWEEP_ROUNDS
    )


@pytest.mark.parametrize("runner", SWEEP_RUNNERS, ids=SWEEP_RUNNERS)
@pytest.mark.parametrize("label", list(SWEEP_ALGORITHMS), ids=list(SWEEP_ALGORITHMS))
def test_vector_adversarial_sweep(benchmark, label, runner):
    algorithm = SWEEP_ALGORITHMS[label]
    stats = SweepStats()
    run_sweep(
        algorithm,
        SWEEP_INSTANCES,
        require_halt=False,
        max_rounds=SWEEP_ROUNDS,
        stats=stats,
    )
    # Warm both sides' tables so the pair measures steady-state dispatch.
    _run_sweep_side(runner, algorithm, SWEEP_INSTANCES)
    benchmark.extra_info["instances"] = len(SWEEP_INSTANCES)
    benchmark.extra_info["occurrences"] = stats.naive_occurrences
    benchmark.extra_info["evaluations"] = stats.evaluations

    results = benchmark(_run_sweep_side, runner, algorithm, SWEEP_INSTANCES)
    assert len(results) == len(SWEEP_INSTANCES)
    assert all(result.rounds == SWEEP_ROUNDS for result in results)


# --------------------------------------------------------------------------- #
# 10^4-world check_many batches: vector CSR kernel vs compiled bitsets
# --------------------------------------------------------------------------- #


def _sparse_random_model(n: int, seed: int = 3, out_deg: int = 6) -> KripkeModel:
    rng = random.Random(seed)
    worlds = range(n)
    rel_a, rel_b = set(), set()
    for u in worlds:
        for _ in range(out_deg):
            rel_a.add((u, rng.randrange(n)))
        for _ in range(out_deg // 2):
            rel_b.add((u, rng.randrange(n)))
    valuation = {
        "p": frozenset(w for w in worlds if rng.random() < 0.5),
        "q": frozenset(w for w in worlds if rng.random() < 0.25),
        "r": frozenset(w for w in worlds if rng.random() < 0.1),
    }
    return KripkeModel(
        worlds=frozenset(worlds),
        relations={"a": frozenset(rel_a), "b": frozenset(rel_b)},
        valuation=valuation,
    )


def _formula_batch() -> list:
    p, q, r = Prop("p"), Prop("q"), Prop("r")
    batch = []
    for idx in ("a", "b"):
        batch += [
            Diamond(p, index=idx),
            Box(Or(p, q), index=idx),
            GradedDiamond(p, 2, index=idx),
            GradedDiamond(Not(q), 3, index=idx),
            Diamond(Box(p, index=idx), index=idx),
            And(Diamond(q, index=idx), Not(GradedDiamond(r, 1, index=idx))),
            Box(Diamond(Or(q, r), index=idx), index=idx),
            GradedDiamond(Diamond(p, index=idx), 4, index=idx),
        ]
    return batch


CHECK_RUNNERS = ("vector", "compiled")
CHECK_MODEL = _sparse_random_model(CHECK_WORLDS)
CHECK_FORMULAS = _formula_batch()


@pytest.mark.parametrize("runner", CHECK_RUNNERS, ids=CHECK_RUNNERS)
def test_vector_check_many_batch(benchmark, runner):
    # Warm both compiled forms (cached on the model) so the pair measures
    # evaluation, not one-time compilation.
    expected = check_many(CHECK_MODEL, CHECK_FORMULAS, engine="compiled")
    assert check_many(CHECK_MODEL, CHECK_FORMULAS, engine="vector") == expected
    benchmark.extra_info["worlds"] = CHECK_WORLDS
    benchmark.extra_info["formulas"] = len(CHECK_FORMULAS)

    # Explicit pedantic rounds: the smoke budget's max-time would otherwise
    # sample so few rounds that one cold outlier owns the median.
    results = benchmark.pedantic(
        check_many,
        args=(CHECK_MODEL, CHECK_FORMULAS),
        kwargs={"engine": runner},
        warmup_rounds=2,
        rounds=10,
    )
    assert results == expected
