"""Benchmark E5 -- the Multiset-to-Set simulation (Theorem 4).

Sweeps the maximum degree Delta and compares the direct execution of a
Multiset algorithm against its Set simulation; the simulation's extra cost is
the 2*Delta symmetry-breaking rounds and the nested beta-tags, which dominate
the running time exactly as the theorem's O(Delta) overhead predicts.
"""

from __future__ import annotations

import pytest

from repro.algorithms.basic import GatherDegreesAlgorithm
from repro.core.simulations import simulate_multiset_with_set
from repro.execution.runner import run
from repro.graphs.generators import random_regular_graph

SIZES = {2: 40, 3: 40, 4: 40}


@pytest.mark.parametrize("degree", sorted(SIZES), ids=lambda d: f"delta{d}")
def test_direct_multiset_execution(benchmark, degree):
    graph = random_regular_graph(degree, SIZES[degree], seed=degree)
    result = benchmark(run, GatherDegreesAlgorithm(), graph)
    assert result.rounds == 1


@pytest.mark.parametrize("degree", sorted(SIZES), ids=lambda d: f"delta{d}")
def test_set_simulation_of_multiset(benchmark, degree):
    graph = random_regular_graph(degree, SIZES[degree], seed=degree)
    inner = GatherDegreesAlgorithm()
    simulation = simulate_multiset_with_set(inner, degree)

    result = benchmark(run, simulation, graph)
    assert result.rounds <= 1 + 2 * degree + 1
    assert result.outputs == run(inner, graph).outputs
