"""Benchmark -- the compiled logic engine vs the seed implementations.

Times the two logic-layer workhorses on identical workloads under both
backends (the ``runner`` parameter selects ``compiled`` vs ``reference``):

* **model checking** -- a batch of formulas covering every constructor,
  evaluated over the K-,- encoding of a random bounded-degree graph with one
  shared subformula cache (:func:`repro.logic.engine.check_many`);
* **partition refinement** -- plain, graded and bounded bisimilarity on the
  same encodings (:func:`repro.logic.bisimulation.bisimilarity_partition`).

``benchmarks/run_all.py`` pairs the two runners per workload into the
logic-layer speedup figures of ``BENCH_<date>.json`` (``logic_bound_pairs`` /
``geomean_logic_speedup``), alongside the execution runner's pairs.

Set ``REPRO_BENCH_SMOKE=1`` for the tiny CI size budget.
"""

from __future__ import annotations

import os

import pytest

from repro.graphs.generators import random_bounded_degree_graph, random_regular_graph
from repro.logic.bisimulation import bisimilarity_partition, bounded_bisimilarity_partition
from repro.logic.engine import check_many
from repro.logic.syntax import And, Box, Diamond, GradedDiamond, Implies, Not, Or, Prop
from repro.modal.encoding import KripkeVariant, kripke_encoding

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

CHECK_SIZES = (40, 120) if SMOKE else (100, 400, 800)
REFINE_SIZES = (40, 120) if SMOKE else (100, 400)
BOUNDED_ROUNDS = (2,) if SMOKE else (2, 6)
BOUNDED_NODES = 80 if SMOKE else 300

#: This module is the compiled-vs-seed pair; the NumPy kernel has its own
#: module (``bench_vector.py``) so the numpy-free lane can still run this one.
RUNNERS = ("compiled", "reference")

_INDEX = ("*", "*")


def _formula_suite() -> list:
    """A batch exercising every constructor, with shared subformulas."""
    deg1, deg2, deg3 = Prop("deg1"), Prop("deg2"), Prop("deg3")
    some_deg3 = Diamond(deg3, index=_INDEX)
    formulas = [
        some_deg3,
        Box(Or(deg2, deg3), index=_INDEX),
        GradedDiamond(deg3, grade=2, index=_INDEX),
        GradedDiamond(some_deg3, grade=2, index=_INDEX),
        Diamond(And(deg2, Not(some_deg3)), index=_INDEX),
        Implies(deg1, Diamond(Diamond(deg1, index=_INDEX), index=_INDEX)),
        Not(Box(Not(And(deg3, some_deg3)), index=_INDEX)),
        Diamond(Box(Implies(deg2, some_deg3), index=_INDEX), index=_INDEX),
    ]
    return formulas


def _encoding(size: int, seed: int):
    graph = random_bounded_degree_graph(size, 3, seed=seed)
    return kripke_encoding(graph, variant=KripkeVariant.NEITHER)


@pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS)
@pytest.mark.parametrize("size", CHECK_SIZES, ids=lambda n: f"n{n}")
def test_model_checking_batch(benchmark, runner, size):
    model = _encoding(size, seed=size)
    formulas = _formula_suite()
    benchmark.extra_info["nodes"] = size
    extensions = benchmark(check_many, model, formulas, engine=runner)
    assert len(extensions) == len(formulas)


@pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS)
@pytest.mark.parametrize("size", REFINE_SIZES, ids=lambda n: f"n{n}")
def test_partition_refinement(benchmark, runner, size):
    model = _encoding(size, seed=size)
    benchmark.extra_info["nodes"] = size
    partition = benchmark(bisimilarity_partition, model, False, runner)
    assert len(partition) == len(model.worlds)


@pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS)
@pytest.mark.parametrize("size", REFINE_SIZES, ids=lambda n: f"n{n}")
def test_graded_partition_refinement(benchmark, runner, size):
    model = _encoding(size, seed=size)
    benchmark.extra_info["nodes"] = size
    partition = benchmark(bisimilarity_partition, model, True, runner)
    assert len(partition) == len(model.worlds)


@pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS)
@pytest.mark.parametrize("rounds", BOUNDED_ROUNDS, ids=lambda r: f"k{r}")
def test_bounded_graded_refinement(benchmark, runner, rounds):
    graph = random_regular_graph(3, BOUNDED_NODES, seed=9)
    model = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    benchmark.extra_info["nodes"] = BOUNDED_NODES
    partition = benchmark(bounded_bisimilarity_partition, model, rounds, True, runner)
    assert len(partition) == BOUNDED_NODES
