"""Benchmark E11 -- distributed vertex cover (Section 3.3 motivation).

Runs the double-cover-matching vertex cover on bounded-degree graphs of
increasing size and records the measured approximation ratio against the exact
optimum (computed only for the smaller instances).
"""

from __future__ import annotations

import pytest

from repro.algorithms.vertex_cover import DoubleCoverMatchingVertexCover, cover_from_outputs
from repro.execution.runner import run
from repro.graphs.generators import random_bounded_degree_graph
from repro.graphs.matching import is_vertex_cover, maximum_matching, minimum_vertex_cover


@pytest.mark.parametrize("size", [20, 60, 120], ids=lambda n: f"n{n}")
def test_vertex_cover_algorithm(benchmark, size):
    graph = random_bounded_degree_graph(size, 3, seed=size)
    algorithm = DoubleCoverMatchingVertexCover()

    result = benchmark(run, algorithm, graph)
    cover = cover_from_outputs(result.outputs)
    assert is_vertex_cover(graph, cover)
    # The matching lower bound gives a cheap ratio certificate on any size.
    lower_bound = max(1, len(maximum_matching(graph)))
    benchmark.extra_info["cover_size"] = len(cover)
    benchmark.extra_info["matching_lower_bound"] = lower_bound
    benchmark.extra_info["ratio_upper_bound"] = len(cover) / lower_bound
    assert len(cover) <= 3 * lower_bound


def test_exact_minimum_cover_baseline(benchmark):
    graph = random_bounded_degree_graph(18, 3, seed=5)
    cover = benchmark(minimum_vertex_cover, graph)
    assert is_vertex_cover(graph, cover)
