"""Benchmark E9 -- symmetric port numberings of regular graphs (Lemma 15, Figure 8).

Times the whole Lemma 15 pipeline (bipartite double cover, 1-factorisation,
port assignment) as the graph grows.
"""

from __future__ import annotations

import pytest

from repro.graphs.covers import bipartite_double_cover, symmetric_port_numbering
from repro.graphs.generators import random_regular_graph
from repro.graphs.matching import one_factorisation


@pytest.mark.parametrize("size", [16, 48, 96], ids=lambda n: f"n{n}")
def test_symmetric_port_numbering_construction(benchmark, size):
    graph = random_regular_graph(3, size, seed=size)
    numbering = benchmark(symmetric_port_numbering, graph)
    assert len(numbering.ports()) == 3 * size


@pytest.mark.parametrize("size", [16, 48, 96], ids=lambda n: f"n{n}")
def test_one_factorisation_of_double_cover(benchmark, size):
    double = bipartite_double_cover(random_regular_graph(3, size, seed=size))
    factors = benchmark(one_factorisation, double)
    assert len(factors) == 3
