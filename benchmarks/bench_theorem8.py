"""Benchmark E6 -- the history simulations (Theorems 8 and 9).

Sweeps the running time T of the wrapped algorithm and measures the cost of
the history-carrying simulation; the message volume grows linearly in T
(quadratically for the whole execution), which is the open "message size
overhead" question of Section 5.4 made measurable.
"""

from __future__ import annotations

import pytest

from repro.core.simulations import (
    simulate_broadcast_with_multiset_broadcast,
    simulate_vector_with_multiset,
)
from repro.execution.runner import run
from repro.graphs.generators import cycle_graph
from repro.machines.algorithm import BroadcastAlgorithm, Output, VectorAlgorithm

GRAPH = cycle_graph(60)


class VectorCounter(VectorAlgorithm):
    def __init__(self, rounds: int) -> None:
        self._rounds = rounds

    def initial_state(self, degree: int):
        return 0 if self._rounds else Output(0)

    def send(self, state, port):
        return (state, port)

    def transition(self, state, received):
        state += 1
        return Output(state) if state >= self._rounds else state


class BroadcastCounter(BroadcastAlgorithm):
    def __init__(self, rounds: int) -> None:
        self._rounds = rounds

    def initial_state(self, degree: int):
        return 0 if self._rounds else Output(0)

    def broadcast(self, state):
        return state

    def transition(self, state, received):
        state += 1
        return Output(state) if state >= self._rounds else state


@pytest.mark.parametrize("rounds", [2, 8, 16], ids=lambda r: f"T{r}")
def test_vector_to_multiset_simulation(benchmark, rounds):
    simulation = simulate_vector_with_multiset(VectorCounter(rounds))
    result = benchmark(run, simulation, GRAPH)
    assert result.rounds <= rounds + 1


@pytest.mark.parametrize("rounds", [2, 8, 16], ids=lambda r: f"T{r}")
def test_broadcast_to_mb_simulation(benchmark, rounds):
    simulation = simulate_broadcast_with_multiset_broadcast(BroadcastCounter(rounds))
    result = benchmark(run, simulation, GRAPH)
    assert result.rounds <= rounds + 1


@pytest.mark.parametrize("rounds", [2, 8, 16], ids=lambda r: f"T{r}")
def test_direct_vector_execution_baseline(benchmark, rounds):
    result = benchmark(run, VectorCounter(rounds), GRAPH)
    assert result.rounds == rounds
