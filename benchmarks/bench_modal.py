"""Benchmark E4 -- the modal-logic correspondence (Theorem 2, Table 3).

Times the three moving parts of the capture theorem: evaluating a formula on
the Kripke encoding of a port-numbered graph (model checking), executing the
compiled algorithm on the same graph, and compiling a finite-state machine
into a formula.
"""

from __future__ import annotations

import pytest

from repro.execution.runner import run
from repro.graphs.generators import random_regular_graph
from repro.logic.semantics import extension
from repro.logic.syntax import And, Diamond, GradedDiamond, Not, Prop
from repro.machines.models import ProblemClass
from repro.machines.state_machine import FiniteStateMachine
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.encoding import KripkeVariant, kripke_encoding
from repro.modal.formula_to_algorithm import algorithm_for_formula

GRAPH = random_regular_graph(3, 100, seed=4)

FORMULAS = {
    "SB-depth2": (
        ProblemClass.SB,
        Diamond(And(Prop("deg3"), Not(Diamond(Prop("deg1"), index=("*", "*")))), index=("*", "*")),
    ),
    "MB-graded": (
        ProblemClass.MB,
        GradedDiamond(Diamond(Prop("deg3"), index=("*", "*")), grade=2, index=("*", "*")),
    ),
    "SV-ports": (
        ProblemClass.SV,
        Diamond(Diamond(Prop("deg3"), index=("*", 2)), index=("*", 1)),
    ),
}


@pytest.mark.parametrize("label", list(FORMULAS), ids=list(FORMULAS))
def test_model_checking(benchmark, label):
    problem_class, formula = FORMULAS[label]
    from repro.modal.encoding import variant_for_class

    encoding = kripke_encoding(GRAPH, variant=variant_for_class(problem_class))
    result = benchmark(extension, encoding, formula)
    assert result is not None


@pytest.mark.parametrize("label", list(FORMULAS), ids=list(FORMULAS))
def test_compiled_algorithm_execution(benchmark, label):
    problem_class, formula = FORMULAS[label]
    algorithm = algorithm_for_formula(formula, problem_class)
    result = benchmark(run, algorithm, GRAPH)
    assert result.halted


def test_machine_to_formula_compilation(benchmark):
    def message(state, port):
        return "O" if state == "odd" else "E"

    def transition(state, vector):
        return 1 if "O" in set(vector) else 0

    machine = FiniteStateMachine(
        delta_bound=3,
        intermediate_states=frozenset({"even", "odd"}),
        stopping_states=frozenset({0, 1}),
        messages=frozenset({"E", "O"}),
        initial_states={d: ("odd" if d % 2 else "even") for d in range(4)},
        message_table=message,
        transition_table=transition,
    )
    formula = benchmark(formula_for_machine, machine, ProblemClass.SB, 1)
    from repro.logic.syntax import modal_depth

    assert modal_depth(formula) == 1
