"""Benchmark -- the Theorem 2 correspondence pipeline, compiled vs seed.

Two families of measurements:

* **round trips** -- :func:`repro.modal.correspondence.machine_roundtrip_report`
  for the library machine of each problem class over an adversarial
  numbering sweep, under both backends (the ``runner`` parameter selects
  ``compiled`` -- packed-int formula-algorithm + bitset model checker +
  compiled execution engine -- vs ``reference`` -- the seed construction on
  the seed checker and runner).  ``run_all.py`` pairs them into the
  ``correspondence_pairs`` / ``geomean_correspondence_speedup`` figures of
  ``BENCH_<date>.json``.
* **construction sizes** -- :func:`formula_for_machine` emission into the
  hash-consed pool, recording ``tree_size`` vs ``dag_size`` per class in
  ``extra_info`` (the DAG-compression table of the README), including the
  two-round Vector instance whose fully expanded tree exceeds ``10^6`` nodes
  -- infeasible to materialise as a tree, routine as a DAG.

Set ``REPRO_BENCH_SMOKE=1`` for the tiny CI size budget.
"""

from __future__ import annotations

import os

import pytest

from repro.graphs.generators import path_graph, star_graph
from repro.logic.syntax import dag_size, modal_depth, tree_size
from repro.machines.library import reference_machine
from repro.machines.models import ProblemClass
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.correspondence import machine_roundtrip_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Classes paired compiled-vs-reference.  The smoke budget keeps one class
#: per receive mode; the full run covers all seven.
ROUNDTRIP_CLASSES = ("SB", "MV", "VV") if SMOKE else tuple(c.value for c in ProblemClass)
SIZE_CLASSES = tuple(c.value for c in ProblemClass)

DELTA = 3
GRAPHS = (star_graph(3), path_graph(3)) if SMOKE else (star_graph(3), path_graph(4))
EXHAUSTIVE_LIMIT = 8 if SMOKE else 24
SAMPLES = 4 if SMOKE else 8


@pytest.mark.parametrize("problem_class", ROUNDTRIP_CLASSES)
@pytest.mark.parametrize("runner", ("compiled", "reference"))
def test_machine_roundtrip(benchmark, problem_class: str, runner: str) -> None:
    """One full round trip (machine == formula == recompiled algorithm)."""
    pclass = ProblemClass(problem_class)
    machine = reference_machine(pclass, DELTA)
    formula = formula_for_machine(machine, pclass, 1)

    def work():
        return machine_roundtrip_report(
            machine,
            pclass,
            1,
            graphs=GRAPHS,
            engine=runner,
            cross_check=False,
            exhaustive_limit=EXHAUSTIVE_LIMIT,
            samples=SAMPLES,
            formula=formula,
        )

    report = benchmark(work)
    assert report.agree
    benchmark.extra_info["instances"] = report.instances
    benchmark.extra_info["dag_size"] = report.dag_size


@pytest.mark.parametrize("problem_class", SIZE_CLASSES)
def test_formula_construction(benchmark, problem_class: str) -> None:
    """Table 4/5 emission into the pool; records the DAG-vs-tree compression."""
    pclass = ProblemClass(problem_class)
    machine = reference_machine(pclass, DELTA)
    formula = benchmark(lambda: formula_for_machine(machine, pclass, 1))
    benchmark.extra_info["tree_size"] = tree_size(formula)
    benchmark.extra_info["dag_size"] = dag_size(formula)
    assert dag_size(formula) <= tree_size(formula)


def test_infeasible_tree_feasible_dag(benchmark) -> None:
    """The two-round VV instance: tree size > 10^6, DAG in the thousands.

    The seed representation would materialise one node per tree occurrence
    -- hundreds of millions for this coordinate -- so the instance was
    previously infeasible; the hash-consed emission completes in well under
    a second and the compiled pipeline evaluates it directly.
    """
    pclass = ProblemClass.VV
    machine = reference_machine(pclass, DELTA, rounds=2)
    formula = benchmark(
        lambda: formula_for_machine(machine, pclass, 2, max_formula_nodes=2_000_000)
    )
    benchmark.extra_info["tree_size"] = tree_size(formula)
    benchmark.extra_info["dag_size"] = dag_size(formula)
    assert tree_size(formula) > 10**6
    assert dag_size(formula) < 100_000
    assert modal_depth(formula) == 2
