#!/usr/bin/env python3
"""Run every benchmark and emit a machine-readable ``BENCH_<date>.json``.

The emitted file records, per benchmark module, the wall time of the pytest
run and the per-test timing statistics, plus two derived sections:

* ``pairs`` -- every engine-vs-seed benchmark pair (same test, same
  parameters, only the runner differs) with its speedup ``seed_mean /
  engine_mean``; and
* ``summary`` -- headline numbers: the speedups of the dedicated
  runner-bound pairs and rounds/second throughput for the multi-round
  execution benchmarks (tests exporting ``sync_rounds`` in ``extra_info``).

Usage::

    python benchmarks/run_all.py                    # full sizes
    python benchmarks/run_all.py --smoke            # tiny CI budget
    python benchmarks/run_all.py --out BENCH.json   # explicit output path

CI runs the smoke mode on every PR and uploads the JSON as an artifact, so
the performance trajectory is tracked from PR to PR.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: Engine/seed parameter spellings used by the paired benchmarks; the
#: cold/warm spellings pair the campaign store-temperature benchmarks the
#: same way (warm store = the optimised side).
_NEW_VALUES = {"engine", "compiled", "warm"}
_OLD_VALUES = {"seed", "reference", "cold"}

#: Per-file overrides of the pairing sides.  bench_sweep pairs the superposed
#: sweep engine *against* the compiled engine (which is the "new" side
#: everywhere else), so its spellings are remapped locally.
_FILE_SIDES = {
    "bench_sweep": ({"sweep"}, {"compiled", "reference"}),
    # bench_vector pairs the NumPy kernel against whichever engine is the
    # relevant oracle: sweep for the execution pairs, compiled for the
    # check_many pairs.
    "bench_vector": ({"vector"}, {"sweep", "compiled", "reference"}),
    # bench_store pairs the sqlite backend against the loose-object json
    # layout on identical record sets.
    "bench_store": ({"sqlite"}, {"json"}),
    # bench_plan pairs warm plan-cache tables against cold rebuilds, plus
    # the one-invocation padded arena against grouped per-family batches.
    "bench_plan": ({"warm", "arena"}, {"cold", "grouped"}),
}

#: The modules the CI smoke path exercises (``--quick``): one engine-bound,
#: one logic-bound, the campaign and the correspondence benchmarks -- every
#: summary section stays populated while the wall time stays in CI budget.
QUICK_MODULES = (
    "bench_campaign",
    "bench_correspondence",
    "bench_execution",
    "bench_logic",
    "bench_plan",
    "bench_store",
    "bench_sweep",
    "bench_vector",
)


def discover_benchmarks() -> list[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def run_benchmark_file(path: Path, smoke: bool) -> tuple[dict, float]:
    """Run one benchmark module under pytest-benchmark, return (json, wall_s)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(path),
        "-q",
        "--benchmark-only",
        f"--benchmark-json={json_path}",
        "--benchmark-warmup=off",
    ]
    if smoke:
        command += ["--benchmark-min-rounds=1", "--benchmark-max-time=0.1"]
    else:
        command += ["--benchmark-min-rounds=5", "--benchmark-max-time=2"]
    started = time.perf_counter()
    proc = subprocess.run(command, cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    wall = time.perf_counter() - started
    if proc.returncode == 5:
        # "No tests collected": the whole module skipped itself (e.g.
        # bench_vector on a numpy-free box).  That is a valid outcome, not
        # a failure -- report it as an empty module.
        print(f"[run_all] {path.name}: skipped (no tests collected)", flush=True)
        if os.path.exists(json_path):
            os.unlink(json_path)
        return {"benchmarks": []}, wall
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"benchmark {path.name} failed (exit {proc.returncode})")
    try:
        with open(json_path) as fh:
            data = json.load(fh)
    finally:
        os.unlink(json_path)
    return data, wall


def summarize_file(name: str, data: dict, wall: float) -> dict:
    tests = []
    for bench in data.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "name": bench["name"],
            "params": bench.get("params") or {},
            "mean_s": stats["mean"],
            "median_s": stats["median"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        extra = bench.get("extra_info") or {}
        if "sync_rounds" in extra:
            entry["sync_rounds"] = extra["sync_rounds"]
            entry["rounds_per_sec"] = extra["sync_rounds"] / stats["mean"]
        for key in (
            "nodes",
            "tree_size",
            "dag_size",
            "instances",
            "occurrences",
            "evaluations",
            "executed_instances",
        ):
            if key in extra:
                entry[key] = extra[key]
        tests.append(entry)
    return {"wall_time_s": round(wall, 3), "tests": tests}


def _pair_key(test: dict, new_values: set, old_values: set) -> tuple:
    """Identity of a benchmark modulo the engine/seed parameter."""
    params = {
        key: value
        for key, value in test["params"].items()
        if value not in new_values | old_values
    }
    base_name = test["name"].split("[")[0]
    return base_name, tuple(sorted(params.items()))


def derive_pairs(benches: dict) -> list[dict]:
    pairs = []
    for file_name, payload in benches.items():
        new_values, old_values = _FILE_SIDES.get(file_name, (_NEW_VALUES, _OLD_VALUES))
        grouped: dict[tuple, dict[str, dict]] = {}
        for test in payload["tests"]:
            runner_values = [
                value
                for value in test["params"].values()
                if value in new_values | old_values
            ]
            if not runner_values:
                continue
            side = "new" if runner_values[0] in new_values else "old"
            grouped.setdefault(_pair_key(test, new_values, old_values), {})[side] = test
        for (base_name, params), sides in sorted(grouped.items()):
            if "new" in sides and "old" in sides:
                new, old = sides["new"], sides["old"]
                pairs.append(
                    {
                        "file": file_name,
                        "benchmark": base_name,
                        "params": dict(params),
                        "engine_mean_s": new["mean_s"],
                        "seed_mean_s": old["mean_s"],
                        "engine_median_s": new["median_s"],
                        "seed_median_s": old["median_s"],
                        # medians: robust to noisy-neighbour outlier rounds
                        "speedup": round(old["median_s"] / new["median_s"], 2),
                        "speedup_mean": round(old["mean_s"] / new["mean_s"], 2),
                    }
                )
    return pairs


def _geomean(values: list[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1 / len(values))


def derive_summary(benches: dict, pairs: list[dict]) -> dict:
    # The dedicated runner-bound pairs: pure execution workloads where the
    # only variable is the runner (multi-round loops, adversarial sweeps).
    runner_bound = [
        pair
        for pair in pairs
        if pair["benchmark"]
        in (
            "test_multi_round_execution_scales_linearly",
            "test_adversarial_numbering_sweep",
            "test_containment_execution_sweep",
        )
    ]
    # The logic-layer pairs: model checking and partition refinement, where
    # the only variable is the logic engine (compiled bitsets vs seed).
    logic_bound = [pair for pair in pairs if pair["file"] == "bench_logic"]
    throughput = []
    for file_name, payload in benches.items():
        for test in payload["tests"]:
            if "rounds_per_sec" in test:
                runner = [v for v in test["params"].values() if v in _NEW_VALUES | _OLD_VALUES]
                if runner and runner[0] in _OLD_VALUES:
                    continue
                throughput.append(
                    {
                        "file": file_name,
                        "name": test["name"],
                        "rounds_per_sec": round(test["rounds_per_sec"], 1),
                    }
                )
    speedups = [pair["speedup"] for pair in runner_bound]
    summary: dict = {
        "runner_bound_pairs": runner_bound,
        "logic_bound_pairs": logic_bound,
        "rounds_per_sec": throughput,
    }
    if speedups:
        summary["min_runner_speedup"] = min(speedups)
        summary["max_runner_speedup"] = max(speedups)
        summary["geomean_runner_speedup"] = round(_geomean(speedups), 2)
    logic_speedups = [pair["speedup"] for pair in logic_bound]
    if logic_speedups:
        summary["min_logic_speedup"] = min(logic_speedups)
        summary["max_logic_speedup"] = max(logic_speedups)
        summary["geomean_logic_speedup"] = round(_geomean(logic_speedups), 2)
    # The campaign pairs: cold full sweep vs warm content-addressed store.
    campaign_pairs = [pair for pair in pairs if pair["file"] == "bench_campaign"]
    if campaign_pairs:
        summary["campaign_pairs"] = campaign_pairs
        summary["geomean_warm_store_speedup"] = round(
            _geomean([pair["speedup"] for pair in campaign_pairs]), 2
        )
    # The storage backends: sqlite vs json on identical record sets (cold
    # put / warm resume / report fold at campaign scale).
    store_pairs = [pair for pair in pairs if pair["file"] == "bench_store"]
    if store_pairs:
        store_speedups = [pair["speedup"] for pair in store_pairs]
        summary["store_pairs"] = store_pairs
        summary["min_store_speedup"] = min(store_speedups)
        summary["max_store_speedup"] = max(store_speedups)
        summary["geomean_store_speedup"] = round(_geomean(store_speedups), 2)
    # The kernel plan cache: warm (store-loaded / shm-mapped) tables vs
    # cold rebuilds, and the padded mega-batch arena vs grouped per-family
    # vector invocations.  CI floors the warm-only geomean at 1.5x.
    plan_pairs = [pair for pair in pairs if pair["file"] == "bench_plan"]
    if plan_pairs:
        plan_speedups = [pair["speedup"] for pair in plan_pairs]
        summary["plan_pairs"] = plan_pairs
        summary["min_plan_speedup"] = min(plan_speedups)
        summary["max_plan_speedup"] = max(plan_speedups)
        summary["geomean_plan_speedup"] = round(_geomean(plan_speedups), 2)
        warm_plan = [
            pair for pair in plan_pairs if "arena" not in pair["benchmark"]
        ]
        if warm_plan:
            summary["geomean_warm_plan_speedup"] = round(
                _geomean([pair["speedup"] for pair in warm_plan]), 2
            )
        arena_plan = [pair for pair in plan_pairs if "arena" in pair["benchmark"]]
        if arena_plan:
            summary["geomean_arena_batch_speedup"] = round(
                _geomean([pair["speedup"] for pair in arena_plan]), 2
            )
    # The Theorem 2 pipeline: compiled vs seed round trips, plus the
    # DAG-vs-tree compression of the hash-consed Table 4/5 formulas.
    correspondence_pairs = [
        pair for pair in pairs if pair["file"] == "bench_correspondence"
    ]
    if correspondence_pairs:
        summary["correspondence_pairs"] = correspondence_pairs
        summary["geomean_correspondence_speedup"] = round(
            _geomean([pair["speedup"] for pair in correspondence_pairs]), 2
        )
    # The superposed sweep engine: sweep-vs-compiled pairs on the
    # E3/E9/correspondence-shaped adversarial numbering sweeps.
    sweep_pairs = [pair for pair in pairs if pair["file"] == "bench_sweep"]
    if sweep_pairs:
        sweep_speedups = [pair["speedup"] for pair in sweep_pairs]
        summary["sweep_pairs"] = sweep_pairs
        summary["min_sweep_speedup"] = min(sweep_speedups)
        summary["max_sweep_speedup"] = max(sweep_speedups)
        summary["geomean_sweep_speedup"] = round(_geomean(sweep_speedups), 2)
    # The vector kernel: vector-vs-sweep execution pairs and the
    # vector-vs-compiled 10^4-world check_many pairs, each with its own
    # geomean (CI asserts independent floors: >= 3x sweeps, >= 5x checks)
    # plus the combined headline geomean.
    vector_pairs = [pair for pair in pairs if pair["file"] == "bench_vector"]
    if vector_pairs:
        vector_sweep = [
            pair for pair in vector_pairs if "sweep" in pair["benchmark"]
        ]
        vector_check = [
            pair for pair in vector_pairs if "check" in pair["benchmark"]
        ]
        summary["vector_sweep_pairs"] = vector_sweep
        summary["vector_check_pairs"] = vector_check
        speedups = [pair["speedup"] for pair in vector_pairs]
        summary["min_vector_speedup"] = min(speedups)
        summary["max_vector_speedup"] = max(speedups)
        summary["geomean_vector_speedup"] = round(_geomean(speedups), 2)
        if vector_sweep:
            summary["geomean_vector_sweep_speedup"] = round(
                _geomean([pair["speedup"] for pair in vector_sweep]), 2
            )
        if vector_check:
            summary["geomean_vector_check_speedup"] = round(
                _geomean([pair["speedup"] for pair in vector_check]), 2
            )
    # One dedup entry per benchmark, not per runner side: both sides report
    # the identical sweep work accounting.
    dedup: dict[tuple, dict] = {}
    sweep_new, sweep_old = _FILE_SIDES["bench_sweep"]
    for test in benches.get("bench_sweep", {}).get("tests", []):
        if "evaluations" not in test or "occurrences" not in test:
            continue
        key = _pair_key(test, sweep_new, sweep_old)
        dedup.setdefault(
            key,
            {
                "benchmark": key[0],
                "params": dict(key[1]),
                "instances": test.get("instances"),
                "occurrences": test["occurrences"],
                "evaluations": test["evaluations"],
                "dedup_ratio": round(
                    test["occurrences"] / max(test["evaluations"], 1), 1
                ),
            },
        )
    if dedup:
        summary["sweep_dedup"] = sorted(
            dedup.values(), key=lambda entry: -entry["dedup_ratio"]
        )
    sizes = []
    for test in benches.get("bench_correspondence", {}).get("tests", []):
        if "tree_size" in test and "dag_size" in test:
            sizes.append(
                {
                    "name": test["name"],
                    "tree_size": test["tree_size"],
                    "dag_size": test["dag_size"],
                    "ratio": round(test["tree_size"] / max(test["dag_size"], 1), 1),
                }
            )
    if sizes:
        summary["correspondence_sizes"] = sizes
        summary["max_dag_compression"] = max(entry["ratio"] for entry in sizes)
    return summary


def collect_metrics_probe(smoke: bool) -> dict:
    """Re-run the ``bench_sweep`` workloads in-process with the telemetry
    registry enabled and return the resulting snapshot plus per-case dedup
    accounting derived *from the metrics counters alone*.

    This is the cross-check that keeps the observability layer honest: the
    ``sweep.occurrences``/``sweep.evaluations`` counters must reproduce the
    ``sweep_dedup`` figures the benchmarks report out of ``SweepStats``
    (same workloads, same sizes -- ``REPRO_BENCH_SMOKE`` is pinned to the
    run's smoke flag before the bench module is imported).
    """
    if smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    else:
        os.environ.pop("REPRO_BENCH_SMOKE", None)
    for entry in (str(REPO_ROOT / "src"), str(BENCH_DIR)):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    import bench_sweep  # noqa: PLC0415 - sized by REPRO_BENCH_SMOKE at import

    from repro import obs
    from repro.execution.sweep import run_sweep

    cases = [
        ("test_e3_exhaustive_adversary_sweep", {"label": label}, algorithm,
         bench_sweep.E3_INSTANCES)
        for label, algorithm in bench_sweep.E3_ALGORITHMS.items()
    ]
    for cls in bench_sweep.E9_CLASSES:
        from repro.machines.library import reference_machine
        from repro.machines.models import ProblemClass
        from repro.machines.state_machine import algorithm_from_machine

        algorithm = algorithm_from_machine(
            reference_machine(ProblemClass(cls), 3, rounds=2).as_state_machine()
        )
        cases.append(
            ("test_e9_regular_machine_sweep", {"cls": cls}, algorithm,
             bench_sweep.E9_INSTANCES)
        )
    cases += [
        ("test_correspondence_roundtrip_sweep", {"front": front}, algorithm,
         bench_sweep.CORRESPONDENCE_INSTANCES)
        for front, algorithm in bench_sweep.CORRESPONDENCE_FRONTS.items()
    ]

    obs.reset()
    obs.enable()
    dedup = []
    try:
        for benchmark_name, params, algorithm, instances in cases:
            before = obs.snapshot()
            run_sweep(algorithm, instances, require_halt=False)
            delta = obs.snapshot_delta(before, obs.snapshot())
            counters = delta.get("counters", {})
            occurrences = int(
                counters.get("sweep.occurrences", 0)
                + counters.get("sweep.replicated_occurrences", 0)
            )
            evaluations = int(counters.get("sweep.evaluations", 0))
            dedup.append(
                {
                    "benchmark": benchmark_name,
                    "params": params,
                    "instances": len(instances),
                    "occurrences": occurrences,
                    "evaluations": evaluations,
                    "dedup_ratio": round(occurrences / max(evaluations, 1), 1),
                }
            )
        snapshot = obs.snapshot()
    finally:
        obs.disable()
        obs.reset()
    return {
        "snapshot": snapshot,
        "sweep_dedup": sorted(dedup, key=lambda entry: -entry["dedup_ratio"]),
    }


def collect_plan_cache_probe(smoke: bool) -> dict:
    """Run a small campaign twice against one store with telemetry enabled
    and return the ``plan.cache.*`` counter deltas of each run.

    The first run starts from an empty store (every plan lookup is a miss,
    every plan is persisted); the second re-executes the same scenarios
    (``resume=False``) and must serve every plan out of the artifact store.
    A warm run with zero hits -- or a cold run with zero persists -- means
    the plan cache is broken, so the probe fails the whole bench run.
    """
    import shutil
    import tempfile

    for entry in (str(REPO_ROOT / "src"),):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from repro import obs
    from repro.campaign import CampaignSpec, GraphGrid, ResultStore, run_campaign

    sizes = [4, 5] if smoke else [4, 5, 6]
    spec = CampaignSpec(
        name="plan-cache-probe",
        kind="execution",
        graphs=[GraphGrid.of("cycle", {"n": sizes}), GraphGrid.of("path", {"n": [3, 5]})],
        algorithms=["degree", "gather-degrees"],
        engines=["sweep"],
        max_rounds=64,
    )
    root = tempfile.mkdtemp(prefix="bench-plan-probe-")

    def plan_counters(counters: dict) -> dict:
        return {
            key: int(value)
            for key, value in counters.items()
            if key.startswith("plan.cache.")
        }

    obs.reset()
    obs.enable()
    try:
        run_campaign(spec, ResultStore(root))
        cold = obs.snapshot().get("counters", {})
        run_campaign(spec, ResultStore(root), resume=False)
        total = obs.snapshot().get("counters", {})
    finally:
        obs.disable()
        obs.reset()
        shutil.rmtree(root, ignore_errors=True)
    cold_counters = plan_counters(cold)
    warm_counters = {
        key: int(total.get(key, 0)) - cold_counters.get(key, 0)
        for key in plan_counters(total)
    }
    if not cold_counters.get("plan.cache.persist"):
        raise SystemExit("plan-cache probe: cold campaign persisted no plans")
    if not warm_counters.get("plan.cache.hit"):
        raise SystemExit("plan-cache probe: warm campaign had no plan hits")
    return {"cold_run": cold_counters, "warm_run": warm_counters}


def verify_dedup_metrics(probe_dedup: list[dict], summary_dedup: list[dict]) -> None:
    """The counter-derived dedup figures must match the SweepStats-derived
    ``summary["sweep_dedup"]`` figures within rounding (both sides round the
    ratio to one decimal; the raw counts must agree exactly)."""
    probe_by_key = {
        (entry["benchmark"], tuple(sorted(entry["params"].items()))): entry
        for entry in probe_dedup
    }
    for expected in summary_dedup:
        key = (expected["benchmark"], tuple(sorted(expected["params"].items())))
        measured = probe_by_key.get(key)
        if measured is None:
            raise SystemExit(
                f"metrics probe missing sweep_dedup case {key!r}; "
                f"probe has {sorted(probe_by_key)}"
            )
        for field in ("occurrences", "evaluations"):
            if measured[field] != expected[field]:
                raise SystemExit(
                    f"metrics probe disagrees with benchmark on {key!r}.{field}: "
                    f"counters say {measured[field]}, SweepStats said {expected[field]}"
                )
        if abs(measured["dedup_ratio"] - expected["dedup_ratio"]) > 0.1001:
            raise SystemExit(
                f"metrics probe dedup ratio for {key!r} is {measured['dedup_ratio']}, "
                f"benchmark reported {expected['dedup_ratio']}"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny size budget (CI smoke job)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke path: --smoke sizes, only {', '.join(QUICK_MODULES)}",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="run a single bench module, e.g. --only bench_execution",
    )
    args = parser.parse_args()

    date = datetime.date.today().isoformat()
    out_path = Path(args.out) if args.out else REPO_ROOT / f"BENCH_{date}.json"

    if args.quick:
        args.smoke = True

    files = discover_benchmarks()
    if args.quick:
        files = [path for path in files if path.stem in QUICK_MODULES]
    if args.only:
        files = [path for path in files if path.stem == args.only]
        if not files:
            raise SystemExit(f"no benchmark module named {args.only!r}")

    benches: dict[str, dict] = {}
    for path in files:
        print(f"[run_all] {path.name} ...", flush=True)
        data, wall = run_benchmark_file(path, smoke=args.smoke)
        benches[path.stem] = summarize_file(path.stem, data, wall)
        print(f"[run_all] {path.name}: {wall:.1f}s", flush=True)

    pairs = derive_pairs(benches)
    summary = derive_summary(benches, pairs)
    report = {
        "date": date,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": args.smoke,
        "benches": benches,
        "pairs": pairs,
        "summary": summary,
    }
    # The telemetry cross-check rides along whenever the sweep benchmarks
    # ran.  ``metrics`` is a new, optional top-level section: consumers of
    # older BENCH_<date>.json files (and of files written with --only on a
    # non-sweep module) must not assume it is present.
    if "bench_sweep" in benches and summary.get("sweep_dedup"):
        print("[run_all] metrics probe (bench_sweep workloads) ...", flush=True)
        probe = collect_metrics_probe(smoke=args.smoke)
        verify_dedup_metrics(probe["sweep_dedup"], summary["sweep_dedup"])
        report["metrics"] = probe
        print(
            "[run_all] metrics probe: counters match sweep_dedup on "
            f"{len(probe['sweep_dedup'])} cases",
            flush=True,
        )
    # The plan-cache counter probe rides along whenever bench_plan ran: a
    # cold-then-warm double campaign whose plan.cache.{miss,persist,hit}
    # deltas land in the report next to the timing pairs.
    if "bench_plan" in benches:
        print("[run_all] plan-cache probe (double campaign) ...", flush=True)
        plan_probe = collect_plan_cache_probe(smoke=args.smoke)
        report.setdefault("metrics", {})["plan_cache"] = plan_probe
        print(
            "[run_all] plan-cache probe: "
            f"cold {plan_probe['cold_run']} warm {plan_probe['warm_run']}",
            flush=True,
        )
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"[run_all] wrote {out_path}")
    if pairs:
        for pair in pairs:
            tag = ",".join(f"{k}={v}" for k, v in pair["params"].items()) or "-"
            print(
                f"[run_all]   {pair['file']}::{pair['benchmark']}[{tag}] "
                f"speedup {pair['speedup']}x"
            )


if __name__ == "__main__":
    main()
