"""Benchmark the storage backends: cold put, warm resume, report fold.

Three operations at campaign scale (10^4 records for cold writes, 10^5 for
the read paths; tiny sizes under ``REPRO_BENCH_SMOKE=1``), each measured on
both backends so ``run_all.py`` pairs them into json-vs-sqlite speedups:

* ``test_cold_put`` -- ``put_many`` into a fresh store: one atomic file
  rename per record (json) vs one transaction per batch (sqlite);
* ``test_warm_resume`` -- what ``run_campaign`` does when every scenario is
  already stored: a fresh store object, ``has_many`` over every hash, then
  ``record_digests_of`` for the manifest.  Per-record ``stat``/index reads
  vs a handful of indexed ``IN`` queries;
* ``test_report_fold`` -- ``get_many`` streamed through the campaign rollup
  fold, i.e. ``report`` on a fully-populated store.

The records are synthetic (a cycle-family sweep grid with pre-assigned
hashes): the store never executes anything, so the numbers isolate storage
from scenario evaluation.  The grid repeats each graph point across the
port-strategy and seed axes -- the shape real campaigns have, and the one
the invariance rollup exists for.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile

import pytest

from repro.campaign import CampaignSpec, ResultStore
from repro.campaign.aggregate import CampaignRollup

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
ROUNDS = 1 if SMOKE else 3

#: Cold-write volume: bounded by the json side (one file per record).
N_PUT = 2_000 if SMOKE else 10_000
#: Read-path volume: the 10^5-record scale the sqlite backend exists for.
N_READ = 2_000 if SMOKE else 100_000

BACKEND_URIS = {
    "json": lambda root: f"json:{os.path.join(root, 'store')}",
    "sqlite": lambda root: f"sqlite:{os.path.join(root, 'store.db')}",
}


#: Axes the synthetic grid sweeps per graph point, campaign-style: the same
#: ``n`` recurs under every (port strategy, seed) combination.
_PORTS = ("consistent", "random")
_SEEDS = (0, 1, 2, 3)
_VARIANTS = len(_PORTS) * len(_SEEDS)


def synthetic_records(count: int) -> list[dict]:
    records = []
    for i in range(count):
        n = 3 + i // _VARIANTS
        port = _PORTS[i % len(_PORTS)]
        seed = _SEEDS[(i // len(_PORTS)) % len(_SEEDS)]
        scenario = {
            "kind": "execution",
            "family": "cycle",
            "graph_params": {"n": n},
            "port_strategy": port,
            "engine": "sweep",
            "seed": seed,
            "model_class": "SB",
            "algorithm": "leader-detect",
            "formula_set": None,
            "max_rounds": 64,
        }
        records.append(
            {
                "hash": f"{i:064x}",
                "scenario": scenario,
                "kind": "execution",
                "result": {
                    "nodes": n,
                    "edges": n,
                    "halted": True,
                    "rounds": 2,
                    "outputs": [],
                    "output_digest": f"digest-{n}",
                },
                "elapsed_s": 0.001,
            }
        )
    return records


@pytest.fixture(scope="module")
def scratch_dir():
    path = tempfile.mkdtemp(prefix="bench-store-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


@pytest.fixture(scope="module")
def read_records():
    return synthetic_records(N_READ)


@pytest.fixture(scope="module")
def populated(scratch_dir, read_records):
    """One fully-populated store per backend, built once for the module."""
    stores = {}
    for backend, make in BACKEND_URIS.items():
        root = os.path.join(scratch_dir, f"populated-{backend}")
        os.makedirs(root, exist_ok=True)
        uri = make(root)
        store = ResultStore(uri)
        store.put_many(read_records)
        assert store.count_records() == N_READ
        stores[backend] = uri
    return stores


@pytest.mark.parametrize("backend", sorted(BACKEND_URIS))
def test_cold_put(benchmark, scratch_dir, backend):
    records = synthetic_records(N_PUT)
    benchmark.extra_info["records"] = N_PUT
    benchmark.extra_info["payload_bytes"] = sum(
        len(json.dumps(record)) for record in records
    )
    counter = iter(range(10_000))

    def fresh_store():
        root = os.path.join(scratch_dir, f"cold-{backend}-{next(counter)}")
        os.makedirs(root, exist_ok=True)
        return (ResultStore(BACKEND_URIS[backend](root)), records), {}

    def cold_put(store, batch):
        written = store.put_many(batch)
        store.save_index()
        return written

    written = benchmark.pedantic(cold_put, setup=fresh_store, rounds=ROUNDS, iterations=1)
    assert written == N_PUT


@pytest.mark.parametrize("backend", sorted(BACKEND_URIS))
def test_warm_resume(benchmark, populated, read_records, backend):
    """The store side of a 100%-hit resume: probe + manifest digests."""
    uri = populated[backend]
    hashes = [record["hash"] for record in read_records]
    benchmark.extra_info["records"] = N_READ

    def warm_resume():
        store = ResultStore(uri)  # a fresh process would start cold too
        present = store.has_many(hashes)
        digests = store.record_digests_of(hashes)
        return len(present), len(digests)

    present, digests = benchmark.pedantic(warm_resume, rounds=ROUNDS, iterations=1)
    assert present == digests == N_READ


@pytest.mark.parametrize("backend", sorted(BACKEND_URIS))
def test_report_fold(benchmark, populated, read_records, backend):
    """Stream every stored record through the campaign rollup fold."""
    uri = populated[backend]
    hashes = [record["hash"] for record in read_records]
    spec = CampaignSpec(name="bench-report", kind="execution", graphs=[])
    benchmark.extra_info["records"] = N_READ

    def report_fold():
        store = ResultStore(uri)
        rollup = CampaignRollup(spec)
        rollup.fold_many(store.get_many(hashes))
        return rollup

    rollup = benchmark.pedantic(report_fold, rounds=ROUNDS, iterations=1)
    assert rollup.folded == N_READ
    assert rollup.rollups()["leader-detect"]["scenarios"] == N_READ
