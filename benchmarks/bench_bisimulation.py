"""Benchmark E12 -- bisimulation and model checking at scale (Section 4.2).

Partition refinement and model checking are the workhorses behind every
impossibility argument in the reproduction; this benchmark tracks how they
scale with the number of nodes.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import random_bounded_degree_graph, random_regular_graph
from repro.logic.bisimulation import bisimilarity_partition, bounded_bisimilarity_partition
from repro.logic.semantics import extension
from repro.logic.syntax import Diamond, GradedDiamond, Prop
from repro.modal.encoding import KripkeVariant, kripke_encoding


@pytest.mark.parametrize("size", [25, 100, 400], ids=lambda n: f"n{n}")
def test_partition_refinement(benchmark, size):
    graph = random_bounded_degree_graph(size, 3, seed=size)
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    partition = benchmark(bisimilarity_partition, encoding)
    assert len(partition) == len(encoding.worlds)


@pytest.mark.parametrize("size", [25, 100, 400], ids=lambda n: f"n{n}")
def test_graded_partition_refinement(benchmark, size):
    graph = random_bounded_degree_graph(size, 3, seed=size)
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    partition = benchmark(bisimilarity_partition, encoding, graded=True)
    assert len(partition) == len(encoding.worlds)


@pytest.mark.parametrize("rounds", [1, 3, 6], ids=lambda r: f"k{r}")
def test_bounded_refinement(benchmark, rounds):
    graph = random_regular_graph(3, 200, seed=9)
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    partition = benchmark(bounded_bisimilarity_partition, encoding, rounds, True)
    assert len(partition) == 200


@pytest.mark.parametrize("size", [50, 200, 800], ids=lambda n: f"n{n}")
def test_model_checking_scales(benchmark, size):
    graph = random_bounded_degree_graph(size, 3, seed=size)
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    formula = GradedDiamond(Diamond(Prop("deg3"), index=("*", "*")), grade=2, index=("*", "*"))
    truth = benchmark(extension, encoding, formula)
    assert truth is not None
