"""Benchmark E2 -- the execution engine across the seven models (Figures 3-4, 6).

Runs one-round and multi-round workloads through every receive/send mode on a
medium-size bounded-degree graph, confirming that the shared engine serves all
models and measuring the per-round cost of each projection.
"""

from __future__ import annotations

import pytest

from repro.algorithms.basic import (
    BroadcastMinimumDegreeAlgorithm,
    GatherDegreesAlgorithm,
    NeighbourDegreeSumAlgorithm,
    PortEchoAlgorithm,
    RoundCounterAlgorithm,
)
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.parity import SomeOddNeighbourAlgorithm
from repro.execution.runner import run
from repro.graphs.generators import random_regular_graph

GRAPH = random_regular_graph(3, 150, seed=2)

ONE_ROUND_ALGORITHMS = {
    "VV (PortEcho)": PortEchoAlgorithm(),
    "MV (GatherDegrees)": GatherDegreesAlgorithm(),
    "SV (LeafElection)": LeafElectionAlgorithm(),
    "VB (BroadcastMinDegree)": BroadcastMinimumDegreeAlgorithm(),
    "MB (NeighbourDegreeSum)": NeighbourDegreeSumAlgorithm(),
    "SB (SomeOddNeighbour)": SomeOddNeighbourAlgorithm(),
}


@pytest.mark.parametrize("label", list(ONE_ROUND_ALGORITHMS), ids=list(ONE_ROUND_ALGORITHMS))
def test_one_round_execution_per_model(benchmark, label):
    algorithm = ONE_ROUND_ALGORITHMS[label]
    result = benchmark(run, algorithm, GRAPH)
    assert result.halted and result.rounds <= 1


@pytest.mark.parametrize("rounds", [1, 5, 25], ids=lambda r: f"T{r}")
def test_multi_round_execution_scales_linearly(benchmark, rounds):
    algorithm = RoundCounterAlgorithm(rounds)
    result = benchmark(run, algorithm, GRAPH)
    assert result.rounds == rounds
