"""Benchmark E2 -- the execution engine across the seven models (Figures 3-4, 6).

Runs one-round and multi-round workloads through every receive/send mode on a
medium-size bounded-degree graph, and times the compiled active-set engine
against the seed reference runner on identical workloads (the ``runner``
parameter): these engine/seed pairs are what ``benchmarks/run_all.py`` turns
into the speedup figures of ``BENCH_<date>.json``.

Set ``REPRO_BENCH_SMOKE=1`` for the tiny CI size budget.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.algorithms.basic import (
    BroadcastMinimumDegreeAlgorithm,
    GatherDegreesAlgorithm,
    NeighbourDegreeSumAlgorithm,
    PortEchoAlgorithm,
    RoundCounterAlgorithm,
)
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.parity import SomeOddNeighbourAlgorithm
from repro.execution.engine import run_many
from repro.execution.legacy import run_reference
from repro.execution.runner import run
from repro.graphs.generators import random_regular_graph
from repro.graphs.ports import random_port_numbering

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

NODES = 30 if SMOKE else 150
GRAPH = random_regular_graph(3, NODES, seed=2)
MULTI_ROUNDS = (1, 3) if SMOKE else (1, 5, 25)
SWEEP_NUMBERINGS = 8 if SMOKE else 40
SWEEP_ROUNDS = 5
BATCH_GRAPHS = 4 if SMOKE else 24

RUNNERS = {"engine": run, "seed": run_reference}

ONE_ROUND_ALGORITHMS = {
    "VV (PortEcho)": PortEchoAlgorithm(),
    "MV (GatherDegrees)": GatherDegreesAlgorithm(),
    "SV (LeafElection)": LeafElectionAlgorithm(),
    "VB (BroadcastMinDegree)": BroadcastMinimumDegreeAlgorithm(),
    "MB (NeighbourDegreeSum)": NeighbourDegreeSumAlgorithm(),
    "SB (SomeOddNeighbour)": SomeOddNeighbourAlgorithm(),
}


@pytest.mark.parametrize("label", list(ONE_ROUND_ALGORITHMS), ids=list(ONE_ROUND_ALGORITHMS))
def test_one_round_execution_per_model(benchmark, label):
    algorithm = ONE_ROUND_ALGORITHMS[label]
    benchmark.extra_info["nodes"] = NODES
    result = benchmark(run, algorithm, GRAPH)
    assert result.halted and result.rounds <= 1


@pytest.mark.parametrize("runner", list(RUNNERS), ids=list(RUNNERS))
@pytest.mark.parametrize("rounds", MULTI_ROUNDS, ids=lambda r: f"T{r}")
def test_multi_round_execution_scales_linearly(benchmark, rounds, runner):
    algorithm = RoundCounterAlgorithm(rounds)
    benchmark.extra_info["sync_rounds"] = rounds
    benchmark.extra_info["nodes"] = NODES
    result = benchmark(RUNNERS[runner], algorithm, GRAPH)
    assert result.rounds == rounds


@pytest.mark.parametrize("runner", list(RUNNERS), ids=list(RUNNERS))
def test_adversarial_numbering_sweep(benchmark, runner):
    """An experiment-shaped workload: one algorithm, one graph, many
    numberings -- the shape of every `solves` / `worst_case_running_time`
    sweep.  Uses the batch API with the engine selected by the parameter."""
    rng = random.Random(7)
    numberings = [random_port_numbering(GRAPH, rng=rng) for _ in range(SWEEP_NUMBERINGS)]
    instances = [(GRAPH, numbering) for numbering in numberings]
    algorithm = RoundCounterAlgorithm(SWEEP_ROUNDS)
    engine = "compiled" if runner == "engine" else "reference"
    benchmark.extra_info["sync_rounds"] = SWEEP_ROUNDS * len(instances)
    benchmark.extra_info["nodes"] = NODES

    results = benchmark(lambda: run_many(algorithm, instances, engine=engine))
    assert all(result.rounds == SWEEP_ROUNDS for result in results)


def test_run_many_batch_over_graph_family(benchmark):
    """Batch execution over a family of distinct graphs (hierarchy-survey
    shape); topology compilation is amortized per graph inside the batch."""
    graphs = [random_regular_graph(3, NODES, seed=seed) for seed in range(BATCH_GRAPHS)]
    algorithm = NeighbourDegreeSumAlgorithm()
    benchmark.extra_info["nodes"] = NODES * BATCH_GRAPHS

    results = benchmark(run_many, algorithm, graphs)
    assert all(result.halted for result in results)
