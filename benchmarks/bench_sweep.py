"""Benchmark the superposed sweep engine against the compiled engine.

Every pair runs the identical adversarial port-numbering sweep twice: once
through :func:`repro.execution.sweep.run_sweep` (one transition evaluation
per distinct configuration across the whole sweep, instance-level collapse
under the weaker receive modes) and once through the PR 1 compiled
active-set engine exactly as the consumers drove it before the sweep engine
existed (``run_many(engine="compiled", memoize_transitions=True)``).  The
three workload shapes mirror the sweep engine's consumers:

* **E3-shaped** -- the containment/separation verification sweeps: one
  native-model algorithm per class over the exhaustive numberings of a small
  witness graph;
* **E9-shaped** -- regular-graph machine sweeps: a two-round library machine
  over hundreds of sampled numberings of one 3-regular graph;
* **correspondence-shaped** -- the Theorem 2 round trip fronts: the machine
  algorithm and the compiled formula-algorithm over an exhaustive sweep.

``benchmarks/run_all.py`` turns these pairs into ``sweep_pairs`` /
``geomean_sweep_speedup`` in ``BENCH_<date>.json``; CI asserts a floor on
the smoke-size geomean.  Set ``REPRO_BENCH_SMOKE=1`` for the tiny CI budget.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.algorithms.basic import (
    BroadcastMinimumDegreeAlgorithm,
    GatherDegreesAlgorithm,
    NeighbourDegreeSumAlgorithm,
)
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.parity import SomeOddNeighbourAlgorithm
from repro.execution.engine import compile_instance, run_many
from repro.execution.sweep import SweepStats, run_sweep
from repro.graphs.generators import cycle_graph, random_regular_graph
from repro.graphs.ports import all_port_numberings, random_port_numbering
from repro.machines.library import reference_machine
from repro.machines.models import ProblemClass
from repro.machines.state_machine import algorithm_from_machine
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.formula_to_algorithm import algorithm_for_formula

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Exhaustive numberings of the E3/correspondence witness sweeps.
E3_CAP = 96 if SMOKE else 512
CORRESPONDENCE_CAP = 128 if SMOKE else 768
#: Sampled numberings of the E9-shaped regular-graph sweeps.
E9_SAMPLES = 120 if SMOKE else 600

RUNNERS = ("sweep", "compiled")


def _run(runner: str, algorithm, instances):
    if runner == "sweep":
        return run_sweep(algorithm, instances, require_halt=False)
    return run_many(
        algorithm,
        instances,
        require_halt=False,
        engine="compiled",
        memoize_transitions=True,
    )


def _exhaustive_instances(graph, cap):
    numberings = []
    for numbering in all_port_numberings(graph):
        numberings.append(numbering)
        if len(numberings) >= cap:
            break
    return [compile_instance((graph, numbering)) for numbering in numberings]


# --------------------------------------------------------------------------- #
# E3-shaped: per-class verification sweeps over an exhaustive witness
# --------------------------------------------------------------------------- #

E3_GRAPH = cycle_graph(4)
E3_INSTANCES = _exhaustive_instances(E3_GRAPH, E3_CAP)

E3_ALGORITHMS = {
    "MV (GatherDegrees)": GatherDegreesAlgorithm(),
    "SV (LeafElection)": LeafElectionAlgorithm(),
    "VB (BroadcastMinDegree)": BroadcastMinimumDegreeAlgorithm(),
    "MB (NeighbourDegreeSum)": NeighbourDegreeSumAlgorithm(),
    "SB (SomeOddNeighbour)": SomeOddNeighbourAlgorithm(),
}


@pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS)
@pytest.mark.parametrize("label", list(E3_ALGORITHMS), ids=list(E3_ALGORITHMS))
def test_e3_exhaustive_adversary_sweep(benchmark, label, runner):
    algorithm = E3_ALGORITHMS[label]
    stats = SweepStats()
    run_sweep(algorithm, E3_INSTANCES, require_halt=False, stats=stats)
    benchmark.extra_info["instances"] = len(E3_INSTANCES)
    benchmark.extra_info["occurrences"] = stats.naive_occurrences
    benchmark.extra_info["evaluations"] = stats.evaluations
    benchmark.extra_info["executed_instances"] = stats.executed

    results = benchmark(_run, runner, algorithm, E3_INSTANCES)
    assert all(result.halted for result in results)


# --------------------------------------------------------------------------- #
# E9-shaped: two-round machines over sampled numberings of a regular graph
# --------------------------------------------------------------------------- #

E9_GRAPH = random_regular_graph(3, 10, seed=1)
_rng = random.Random(0)
E9_INSTANCES = [
    compile_instance((E9_GRAPH, random_port_numbering(E9_GRAPH, rng=_rng)))
    for _ in range(E9_SAMPLES)
]

E9_CLASSES = ("VV", "MV", "SB")


@pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS)
@pytest.mark.parametrize("cls", E9_CLASSES, ids=E9_CLASSES)
def test_e9_regular_machine_sweep(benchmark, cls, runner):
    algorithm = algorithm_from_machine(
        reference_machine(ProblemClass(cls), 3, rounds=2).as_state_machine()
    )
    stats = SweepStats()
    run_sweep(algorithm, E9_INSTANCES, require_halt=False, stats=stats)
    benchmark.extra_info["instances"] = len(E9_INSTANCES)
    benchmark.extra_info["occurrences"] = stats.naive_occurrences
    benchmark.extra_info["evaluations"] = stats.evaluations

    results = benchmark(_run, runner, algorithm, E9_INSTANCES)
    assert all(result.halted for result in results)


# --------------------------------------------------------------------------- #
# Correspondence-shaped: both Theorem 2 fronts over an exhaustive sweep
# --------------------------------------------------------------------------- #

CORRESPONDENCE_GRAPH = cycle_graph(5)
CORRESPONDENCE_INSTANCES = _exhaustive_instances(
    CORRESPONDENCE_GRAPH, CORRESPONDENCE_CAP
)
_MACHINE = reference_machine(ProblemClass.MV, 2, rounds=1)
_FORMULA = formula_for_machine(_MACHINE, ProblemClass.MV, 1)

CORRESPONDENCE_FRONTS = {
    "machine-algorithm": algorithm_from_machine(_MACHINE.as_state_machine()),
    "formula-algorithm": algorithm_for_formula(_FORMULA, ProblemClass.MV),
}


@pytest.mark.parametrize("runner", RUNNERS, ids=RUNNERS)
@pytest.mark.parametrize("front", list(CORRESPONDENCE_FRONTS), ids=list(CORRESPONDENCE_FRONTS))
def test_correspondence_roundtrip_sweep(benchmark, front, runner):
    algorithm = CORRESPONDENCE_FRONTS[front]
    stats = SweepStats()
    run_sweep(algorithm, CORRESPONDENCE_INSTANCES, require_halt=False, stats=stats)
    benchmark.extra_info["instances"] = len(CORRESPONDENCE_INSTANCES)
    benchmark.extra_info["occurrences"] = stats.naive_occurrences
    benchmark.extra_info["evaluations"] = stats.evaluations

    results = benchmark(_run, runner, algorithm, CORRESPONDENCE_INSTANCES)
    assert all(result.halted for result in results)
