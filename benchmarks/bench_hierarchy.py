"""Benchmark E3 -- assembling the full classification (Figure 5b).

Times the mechanical re-derivation of the linear order
SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc from checked simulations and bisimulation
witnesses, and each separation certificate on its own.
"""

from __future__ import annotations

import pytest

from repro.experiments.e03_hierarchy import build_classification
from repro.separations import matchless_separation, odd_odd_separation, star_separation


def test_full_classification(benchmark):
    report = benchmark(build_classification)
    assert report.all_verified()
    assert len(report.rows()) == 6


@pytest.mark.parametrize(
    "factory",
    [odd_odd_separation, star_separation, matchless_separation],
    ids=["SB-vs-MB", "VB-vs-SV", "VV-vs-VVc"],
)
def test_single_separation_certificate(benchmark, factory):
    evidence = factory()
    assert benchmark(evidence.verify)
