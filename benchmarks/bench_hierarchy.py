"""Benchmark E3 -- assembling the full classification (Figure 5b).

Times the mechanical re-derivation of the linear order
SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc from checked simulations and bisimulation
witnesses, and each separation certificate on its own.  The execution-bound
containment verification (the adversarial simulation sweeps of Theorems 4, 8
and 9) is additionally timed under both the compiled engine and the seed
reference runner -- the pair feeds the speedup figures of ``BENCH_*.json``.
"""

from __future__ import annotations

import pytest

from repro.algorithms.basic import (
    BroadcastMinimumDegreeAlgorithm,
    GatherDegreesAlgorithm,
    PortEchoAlgorithm,
)
from repro.core.simulations import (
    simulate_broadcast_with_multiset_broadcast,
    simulate_multiset_with_set,
    simulate_vector_with_multiset,
)
from repro.execution.adversary import port_numberings_to_check
from repro.execution.engine import run_many
from repro.experiments.e03_hierarchy import build_classification, verify_containments
from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.separations import matchless_separation, odd_odd_separation, star_separation


def test_full_classification(benchmark):
    report = benchmark(build_classification)
    assert report.all_verified()
    assert len(report.rows()) == 6


@pytest.mark.parametrize("engine", ["compiled", "reference"], ids=["engine", "seed"])
def test_containment_verification(benchmark, engine):
    """End-to-end containment check, numbering enumeration included."""
    assert benchmark(verify_containments, engine)


# The adversarial instance list of the containment check (e03), built once:
# the pair below times the *runner* on this fixed workload -- every simulated
# algorithm plus its inner reference algorithm over every numbering.
_SWEEP_GRAPHS = (star_graph(3), path_graph(4), cycle_graph(4))
_SWEEP_INSTANCES = [
    (graph, numbering)
    for graph in _SWEEP_GRAPHS
    for numbering in port_numberings_to_check(graph, exhaustive_limit=200, samples=10)
]
_SWEEP_ALGORITHMS = [
    simulate_multiset_with_set(GatherDegreesAlgorithm(), delta=3),
    GatherDegreesAlgorithm(),
    simulate_vector_with_multiset(PortEchoAlgorithm()),
    PortEchoAlgorithm(),
    simulate_broadcast_with_multiset_broadcast(BroadcastMinimumDegreeAlgorithm()),
    BroadcastMinimumDegreeAlgorithm(),
]


@pytest.mark.parametrize("engine", ["compiled", "reference"], ids=["engine", "seed"])
def test_containment_execution_sweep(benchmark, engine):
    """The execution half of the containment check as a pure runner workload."""

    def sweep():
        halted = True
        for algorithm in _SWEEP_ALGORITHMS:
            results = run_many(
                algorithm, _SWEEP_INSTANCES, engine=engine, memoize_transitions=True
            )
            halted &= all(result.halted for result in results)
        return halted

    assert benchmark(sweep)


@pytest.mark.parametrize(
    "factory",
    [odd_odd_separation, star_separation, matchless_separation],
    ids=["SB-vs-MB", "VB-vs-SV", "VV-vs-VVc"],
)
def test_single_separation_certificate(benchmark, factory):
    evidence = factory()
    assert benchmark(evidence.verify)
