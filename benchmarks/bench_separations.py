"""Benchmarks E7/E8/E10 -- the separation experiments (Theorems 11, 13, 17).

Times the two halves of each separation: running the membership algorithm
adversarially over port numberings, and computing the bisimilarity certificate
in the weaker class's Kripke encoding.
"""

from __future__ import annotations

import pytest

from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.local_types import LocalTypeSymmetryBreaking
from repro.algorithms.parity import OddOddNeighboursAlgorithm
from repro.graphs.covers import symmetric_port_numbering
from repro.graphs.generators import figure9_graph, odd_odd_gadget_pair, star_graph
from repro.logic.bisimulation import bisimilarity_partition
from repro.modal.encoding import KripkeVariant, kripke_encoding
from repro.problems.separating import (
    LeafElectionInStars,
    OddOddNeighbours,
    SymmetryBreakingInMatchlessRegular,
)
from repro.problems.verification import solves


def test_theorem11_membership_leaf_election(benchmark):
    graphs = [star_graph(2), star_graph(3), star_graph(4)]
    assert benchmark(solves, LeafElectionAlgorithm(), LeafElectionInStars(), graphs)


def test_theorem11_impossibility_bisimulation(benchmark):
    graph = star_graph(6)
    encoding = kripke_encoding(graph, variant=KripkeVariant.NO_OUTPUT_PORTS)
    partition = benchmark(bisimilarity_partition, encoding)
    assert len({partition[leaf] for leaf in range(1, 7)}) == 1


def test_theorem13_membership_odd_odd(benchmark):
    graph = odd_odd_gadget_pair()[0]
    assert benchmark(solves, OddOddNeighboursAlgorithm(), OddOddNeighbours(), [graph])


def test_theorem13_impossibility_bisimulation(benchmark):
    graph, first, second = odd_odd_gadget_pair()
    encoding = kripke_encoding(graph, variant=KripkeVariant.NEITHER)
    partition = benchmark(bisimilarity_partition, encoding)
    assert partition[first] == partition[second]


def test_theorem17_membership_local_types(benchmark):
    graph = figure9_graph()
    assert benchmark(
        solves,
        LocalTypeSymmetryBreaking(),
        SymmetryBreakingInMatchlessRegular(),
        [graph],
        consistent_only=True,
        samples=10,
    )


def test_theorem17_impossibility_bisimulation(benchmark):
    graph = figure9_graph()
    numbering = symmetric_port_numbering(graph)
    encoding = kripke_encoding(graph, numbering, variant=KripkeVariant.FULL)
    partition = benchmark(bisimilarity_partition, encoding)
    assert len(set(partition.values())) == 1
