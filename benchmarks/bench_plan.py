"""Benchmark the cross-campaign kernel plan cache (PR 9).

Three pair families, all over the same adversarial port-numbering sweeps:

* **store temperature** -- ``test_plan_store_sweep``: a cold wrapper that
  rebuilds its interned transition tables by evaluating every distinct
  configuration vs a warm wrapper that loads the pickled
  :class:`~repro.execution.plan.KernelPlan` artifact back out of a real
  json store (``get_artifact`` + ``from_bytes`` + ``install_plan`` are all
  inside the timed region) and replays the sweep with **zero** transition
  evaluations.  The workload is the Theorem 2 formula-compiled algorithms,
  whose per-configuration modal evaluation is expensive enough that the
  table build dominates the cold run.
* **shared-memory map** -- ``test_plan_shm_sweep``: per-worker cold rebuild
  vs attaching the :class:`~repro.execution.plan.PlanPublisher` segment via
  :func:`~repro.execution.plan.load_plans` (one ``frombuffer`` map + pickle
  header per shard worker) and installing the warm tables.
* **mega-batch arena** -- ``test_plan_arena_vector``: the vector engine's
  per-topology-family grouped invocations vs the single padded-arena
  ``run_vector`` call over the whole multi-family shard.

``benchmarks/run_all.py`` turns these into ``plan_pairs`` /
``geomean_plan_speedup`` (and the warm-only ``geomean_warm_plan_speedup``
that CI floors at 1.5x).  Set ``REPRO_BENCH_SMOKE=1`` for the CI budget.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile

import pytest

from repro.campaign.registry import build_algorithm
from repro.campaign.store import ResultStore
from repro.execution.plan import (
    ARTIFACT_KIND,
    KernelPlan,
    PlanPublisher,
    capture_plan,
    install_plan,
    load_plans,
    plan_key,
)
from repro.execution.sweep import SweepStats, run_sweep
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_bounded_degree_graph,
    star_graph,
)
from repro.graphs.ports import random_port_numbering
from repro.machines.fastpath import fast_path
from repro.machines.library import reference_machine
from repro.machines.models import ProblemClass
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.formula_to_algorithm import algorithm_for_formula

try:  # pre-import so the first timed region never pays the numpy import
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is part of the image
    HAVE_NUMPY = False

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
ROUNDS = 1 if SMOKE else 3
MAX_ROUNDS = 30

#: Sweep workload: diverse bounded-degree graphs so the formula algorithms
#: see many distinct local views (each one a costly modal evaluation).
SWEEP_GRAPHS = 6 if SMOKE else 12
NUMBERINGS_PER_GRAPH = 2

_rng = random.Random(5)
SWEEP_INSTANCES = []
for _i in range(SWEEP_GRAPHS):
    _graph = random_bounded_degree_graph(9 + _i, 2, seed=_rng.randint(0, 10**9))
    for _ in range(NUMBERINGS_PER_GRAPH):
        SWEEP_INSTANCES.append((_graph, random_port_numbering(_graph, rng=_rng)))


def _formula_algorithm(cls: str):
    machine = reference_machine(ProblemClass(cls), 2, rounds=2)
    formula = formula_for_machine(machine, ProblemClass(cls), 2)
    return algorithm_for_formula(formula, ProblemClass(cls))


PLAN_CASES = ("MV", "SV", "VV")
_ALGORITHMS = {cls: _formula_algorithm(cls) for cls in PLAN_CASES}

#: Reference plans captured once from a full cold sweep; the benchmarks
#: re-load them through the store / the shm segment inside the timed region.
_PLANS: dict[str, KernelPlan] = {}
for _cls, _algorithm in _ALGORITHMS.items():
    _fast = fast_path(_algorithm, memoize_transitions=True)
    run_sweep(_fast, SWEEP_INSTANCES, require_halt=False, max_rounds=MAX_ROUNDS)
    _PLANS[_cls] = capture_plan(_fast)


@pytest.fixture(scope="module")
def plan_store():
    root = tempfile.mkdtemp(prefix="bench-plan-")
    store = ResultStore(root)
    for cls, plan in _PLANS.items():
        key = plan_key(fast_path(_ALGORITHMS[cls], memoize_transitions=True), "sweep")
        store.put_artifact(ARTIFACT_KIND, key, plan.to_bytes())
    try:
        yield store
    finally:
        shutil.rmtree(root, ignore_errors=True)


@pytest.fixture(scope="module")
def published_ref():
    publisher = PlanPublisher()
    ref = publisher.publish(dict(_PLANS))
    try:
        yield ref
    finally:
        publisher.close()


def _cold_sweep(cls: str) -> SweepStats:
    fast = fast_path(_ALGORITHMS[cls], memoize_transitions=True)
    stats = SweepStats()
    run_sweep(
        fast, SWEEP_INSTANCES, require_halt=False, max_rounds=MAX_ROUNDS, stats=stats
    )
    return stats


# --------------------------------------------------------------------------- #
# Pair 1: cold table build vs store-loaded plan artifact
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("temperature", ["cold", "warm"], ids=["cold", "warm"])
@pytest.mark.parametrize("cls", PLAN_CASES, ids=PLAN_CASES)
def test_plan_store_sweep(benchmark, plan_store, cls, temperature):
    key = plan_key(fast_path(_ALGORITHMS[cls], memoize_transitions=True), "sweep")

    def warm_run() -> SweepStats:
        blob = plan_store.get_artifact(ARTIFACT_KIND, key)
        fast = fast_path(_ALGORITHMS[cls], memoize_transitions=True)
        install_plan(fast, KernelPlan.from_bytes(blob))
        stats = SweepStats()
        run_sweep(
            fast,
            SWEEP_INSTANCES,
            require_halt=False,
            max_rounds=MAX_ROUNDS,
            stats=stats,
        )
        return stats

    fn = (lambda: _cold_sweep(cls)) if temperature == "cold" else warm_run
    stats = benchmark.pedantic(fn, rounds=ROUNDS, iterations=1)
    benchmark.extra_info["instances"] = len(SWEEP_INSTANCES)
    benchmark.extra_info["evaluations"] = stats.evaluations
    benchmark.extra_info["plan_bytes"] = len(_PLANS[cls].to_bytes())
    if temperature == "warm":
        assert stats.evaluations == 0  # every configuration served by the plan


# --------------------------------------------------------------------------- #
# Pair 2: per-worker cold rebuild vs shared-memory plan map
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("temperature", ["cold", "warm"], ids=["cold", "warm"])
@pytest.mark.parametrize("cls", PLAN_CASES, ids=PLAN_CASES)
def test_plan_shm_sweep(benchmark, published_ref, cls, temperature):
    def warm_run() -> SweepStats:
        plans = load_plans(published_ref)
        fast = fast_path(_ALGORITHMS[cls], memoize_transitions=True)
        install_plan(fast, plans[cls])
        stats = SweepStats()
        run_sweep(
            fast,
            SWEEP_INSTANCES,
            require_halt=False,
            max_rounds=MAX_ROUNDS,
            stats=stats,
        )
        return stats

    fn = (lambda: _cold_sweep(cls)) if temperature == "cold" else warm_run
    stats = benchmark.pedantic(fn, rounds=ROUNDS, iterations=1)
    benchmark.extra_info["instances"] = len(SWEEP_INSTANCES)
    benchmark.extra_info["evaluations"] = stats.evaluations
    benchmark.extra_info["ref_kind"] = published_ref.kind if published_ref else "none"
    if temperature == "warm":
        assert stats.evaluations == 0


# --------------------------------------------------------------------------- #
# Pair 3: grouped per-family invocations vs one padded mega-batch arena
# --------------------------------------------------------------------------- #

ARENA_FAMILIES = 16 if SMOKE else 32
ARENA_NUMBERINGS = 3 if SMOKE else 4

_arena_rng = random.Random(3)
_ARENA_GRAPHS = []
for _n in range(ARENA_FAMILIES):
    _kind = _n % 4
    _size = 8 + (_n // 4)
    if _kind == 0:
        _ARENA_GRAPHS.append(cycle_graph(_size))
    elif _kind == 1:
        _ARENA_GRAPHS.append(path_graph(_size))
    elif _kind == 2:
        _ARENA_GRAPHS.append(star_graph(_size - 1))
    else:
        _ARENA_GRAPHS.append(
            random_bounded_degree_graph(_size, 3, seed=_arena_rng.randint(0, 10**9))
        )
ARENA_INSTANCES = [
    (graph, random_port_numbering(graph, rng=_arena_rng))
    for graph in _ARENA_GRAPHS
    for _ in range(ARENA_NUMBERINGS)
]

ARENA_ALGORITHMS = ("neighbour-degree-sum", "odd-odd-neighbours")


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector engine needs numpy")
@pytest.mark.parametrize("batching", ["grouped", "arena"], ids=["grouped", "arena"])
@pytest.mark.parametrize("name", ARENA_ALGORITHMS, ids=ARENA_ALGORITHMS)
def test_plan_arena_vector(benchmark, name, batching):
    from repro.execution.vector import run_vector

    algorithm = build_algorithm(name)
    # Warm the one-time compile path so neither side pays it in the timing.
    run_vector(algorithm, ARENA_INSTANCES[:2], require_halt=False, max_rounds=MAX_ROUNDS)

    def run() -> list:
        return run_vector(
            algorithm,
            ARENA_INSTANCES,
            require_halt=False,
            max_rounds=MAX_ROUNDS,
            arena=batching == "arena",
        )

    results = benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    benchmark.extra_info["instances"] = len(ARENA_INSTANCES)
    benchmark.extra_info["families"] = ARENA_FAMILIES
    assert len(results) == len(ARENA_INSTANCES)
