"""Compare two ``BENCH_<date>.json`` reports pair by pair.

Usage::

    python benchmarks/compare.py OLD.json NEW.json [--threshold 0.8] [--soft]

Every speedup pair present in both reports is matched on its identity
(``file``, ``benchmark``, ``params``) and the ratio ``new speedup / old
speedup`` is printed.  A ratio below ``--threshold`` (default 0.8: the new
report keeps at least 80% of the recorded speedup) is a **regression**;
the process exits non-zero when any pair regresses, unless ``--soft`` is
given (CI uses ``--soft`` on shared runners, where smoke-size timings are
noisy, to annotate rather than fail).

Pairs only present on one side are listed as added/removed but never fail
the comparison -- growing the benchmark surface must not break CI.  The
``geomean_*`` summary figures are diffed the same way for a one-line
overview per family.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: str) -> dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"compare: cannot read {path!r}: {error}")


def _pair_identity(pair: dict) -> tuple:
    return (
        pair.get("file", "?"),
        pair.get("benchmark", "?"),
        tuple(sorted(pair.get("params", {}).items())),
    )


def _pair_label(identity: tuple) -> str:
    file_name, benchmark, params = identity
    tag = ",".join(f"{key}={value}" for key, value in params) or "-"
    return f"{file_name}::{benchmark}[{tag}]"


def compare_pairs(
    old_report: dict, new_report: dict, threshold: float
) -> tuple[list[dict], list[tuple], list[tuple]]:
    """Return (matched rows, added identities, removed identities)."""
    old_pairs = {_pair_identity(pair): pair for pair in old_report.get("pairs", [])}
    new_pairs = {_pair_identity(pair): pair for pair in new_report.get("pairs", [])}
    rows = []
    for identity in sorted(old_pairs.keys() & new_pairs.keys()):
        old_speedup = old_pairs[identity]["speedup"]
        new_speedup = new_pairs[identity]["speedup"]
        ratio = new_speedup / old_speedup if old_speedup else float("inf")
        rows.append(
            {
                "label": _pair_label(identity),
                "old": old_speedup,
                "new": new_speedup,
                "ratio": ratio,
                "regressed": ratio < threshold,
            }
        )
    added = sorted(new_pairs.keys() - old_pairs.keys())
    removed = sorted(old_pairs.keys() - new_pairs.keys())
    return rows, added, removed


def compare_geomeans(old_report: dict, new_report: dict) -> list[dict]:
    old_summary = old_report.get("summary", {})
    new_summary = new_report.get("summary", {})
    rows = []
    for key in sorted(old_summary.keys() & new_summary.keys()):
        if not key.startswith("geomean_"):
            continue
        old_value, new_value = old_summary[key], new_summary[key]
        rows.append(
            {
                "key": key,
                "old": old_value,
                "new": new_value,
                "ratio": new_value / old_value if old_value else float("inf"),
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_<date>.json")
    parser.add_argument("new", help="candidate BENCH_<date>.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="minimum new/old speedup ratio before a pair counts as a "
        "regression (default: 0.8)",
    )
    parser.add_argument(
        "--soft",
        action="store_true",
        help="print regressions but always exit 0 (CI annotation mode)",
    )
    args = parser.parse_args(argv)

    old_report = _load(args.old)
    new_report = _load(args.new)
    if old_report.get("smoke") != new_report.get("smoke"):
        print(
            f"compare: note: size budgets differ "
            f"(old smoke={old_report.get('smoke')}, new smoke={new_report.get('smoke')}); "
            "timings are not directly comparable",
        )

    rows, added, removed = compare_pairs(old_report, new_report, args.threshold)
    regressions = [row for row in rows if row["regressed"]]
    width = max((len(row["label"]) for row in rows), default=0)
    for row in rows:
        marker = "REGRESSED" if row["regressed"] else "ok"
        print(
            f"{row['label']:<{width}}  {row['old']:>7.2f}x -> {row['new']:>7.2f}x  "
            f"({row['ratio']:.2f})  {marker}"
        )
    for identity in added:
        print(f"{_pair_label(identity)}: only in {Path(args.new).name} (added)")
    for identity in removed:
        print(f"{_pair_label(identity)}: only in {Path(args.old).name} (removed)")

    geomeans = compare_geomeans(old_report, new_report)
    if geomeans:
        print()
        for row in geomeans:
            print(
                f"{row['key']}: {row['old']}x -> {row['new']}x ({row['ratio']:.2f})"
            )

    if not rows:
        print("compare: no common pairs between the two reports")
    print(
        f"\ncompare: {len(rows)} pairs, {len(regressions)} regressed "
        f"(threshold {args.threshold}), {len(added)} added, {len(removed)} removed"
    )
    if regressions:
        for row in regressions:
            print(
                f"compare: regression: {row['label']} "
                f"{row['old']}x -> {row['new']}x ({row['ratio']:.2f} < {args.threshold})"
            )
        return 0 if args.soft else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
