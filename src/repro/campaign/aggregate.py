"""Aggregation: streaming per-axis rollups over campaign records.

The campaign report rides the same reporting substrate as the experiment
harness: a :class:`CampaignRollup` folds records one at a time into per-axis
accumulators and finalizes them into an
:class:`~repro.experiments.report.ExperimentResult`, so ``format_report`` and
the ``--json`` machine-readable path work identically for experiments and
campaigns, and CI consumes one record shape for both.

Everything is *incremental*: ``fold`` consumes a single record, ``result``
(or ``rollups``) finalizes whatever has been folded so far.  The work-queue
service folds per-shard results as they land, so a finished campaign's report
is ready without reloading a single record; the batch helpers
(:func:`rollup_execution` & friends, :func:`campaign_result`) are thin loops
over the same fold, which is what guarantees streaming and batch rollups are
*exactly* equal -- they are one implementation.

Rollups group records by workload (algorithm or formula set):

* execution campaigns report, per workload, how many scenarios ran, whether
  they all halted, and whether the outputs were *invariant* under the port
  numbering axis -- i.e. every graph point produced one output digest across
  all port strategies and engines.  Where the spec carries an expectation
  (e.g. the built-in hierarchy survey expects SB..MV workloads invariant and
  the SV/VV workloads numbering-sensitive), the row matches only if the
  verdict agrees;
* logic campaigns report, per ``formula set x model class``, whether every
  scenario's bisimilarity-invariance check held (Fact 1 -- always expected);
* correspondence campaigns report, per ``machine x model class``, whether
  every Theorem 2 round trip agreed on all three fronts (machine output ==
  formula extension == recompiled formula-algorithm output), plus the
  DAG-vs-tree size of the emitted formulas.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.campaign import registry
from repro.campaign.spec import CampaignSpec, _freeze
from repro.campaign.store import ResultStore
from repro.experiments.report import ExperimentResult


def load_records(store: ResultStore, name: str) -> tuple[CampaignSpec, list[dict[str, Any]]]:
    """The spec and the in-order records of a stored campaign manifest."""
    manifest = store.read_manifest(name)
    spec = CampaignSpec.from_dict(manifest["spec"])
    records = list(store.get_many(entry["hash"] for entry in manifest["scenarios"]))
    return spec, records


#: Memoized ``registry.family_seeded`` verdicts, keyed by the frozen params
#: tuple.  Campaign records repeat graph param sets across the port/seed/
#: engine axes, so the fold would otherwise re-derive the same verdict once
#: per record.  Registration of new families never invalidates entries:
#: the key pins the exact (family, params) the verdict was computed for,
#: and an unknown family is conservatively seeded either way.
_SEEDED_CACHE: dict[tuple[str, tuple], bool] = {}


def _graph_point_of(scenario: dict[str, Any]) -> tuple:
    """``Scenario.from_dict(scenario).graph_point()`` without the Scenario.

    The execution fold runs once per stored record and only ever needs the
    graph point; at 10^5 records the dataclass round-trip dominated the
    report, so the point is computed straight from the record dict.  It must
    bucket identically to :meth:`Scenario.graph_point` -- same frozen, sorted
    params tuple and the same seededness rule -- or the invariance rollups
    would split graph instances that the executor treats as one.
    """
    family = scenario["family"]
    params = tuple(
        (key, _freeze(value)) for key, value in sorted(scenario["graph_params"].items())
    )
    key = (family, params)
    seeded = _SEEDED_CACHE.get(key)
    if seeded is None:
        seeded = registry.family_seeded(family, dict(params))
        _SEEDED_CACHE[key] = seeded
    return (family, params, scenario["seed"] if seeded else None)


def _workload_of(record: dict[str, Any]) -> str:
    scenario = record["scenario"]
    return (
        scenario["algorithm"] or scenario["formula_set"] or scenario.get("machine") or "?"
    )


# --------------------------------------------------------------------------- #
# Per-kind incremental folds
# --------------------------------------------------------------------------- #


class ExecutionRollup:
    """Incremental per-workload execution rollups, keyed by algorithm name."""

    def __init__(self) -> None:
        self._groups: dict[str, dict[str, Any]] = {}

    def fold(self, record: dict[str, Any]) -> None:
        state = self._groups.setdefault(
            _workload_of(record),
            {
                "scenarios": 0,
                "digests_per_point": {},
                "all_halted": True,
                "max_rounds_used": 0,
                "model_classes": set(),
            },
        )
        point = _graph_point_of(record["scenario"])
        state["scenarios"] += 1
        state["digests_per_point"].setdefault(point, set()).add(
            record["result"]["output_digest"]
        )
        state["all_halted"] = state["all_halted"] and record["result"]["halted"]
        state["max_rounds_used"] = max(state["max_rounds_used"], record["result"]["rounds"])
        model_class = record["scenario"]["model_class"]
        if model_class is not None:
            state["model_classes"].add(model_class)

    def finalize(self) -> dict[str, dict[str, Any]]:
        rollups: dict[str, dict[str, Any]] = {}
        for workload, state in sorted(self._groups.items()):
            per_point = state["digests_per_point"]
            rollups[workload] = {
                "scenarios": state["scenarios"],
                "graph_points": len(per_point),
                "all_halted": state["all_halted"],
                "max_rounds_used": state["max_rounds_used"],
                "invariant": all(len(digests) == 1 for digests in per_point.values()),
                "model_classes": sorted(state["model_classes"]),
            }
        return rollups


class LogicRollup:
    """Incremental per ``(formula set, model class)`` logic rollups."""

    def __init__(self) -> None:
        self._groups: dict[tuple[str, str], dict[str, Any]] = {}

    def fold(self, record: dict[str, Any]) -> None:
        scenario = record["scenario"]
        state = self._groups.setdefault(
            (scenario["formula_set"], scenario["model_class"] or "-"),
            {"scenarios": 0, "invariant": True, "worlds": 0, "classes": 0},
        )
        state["scenarios"] += 1
        state["invariant"] = state["invariant"] and record["result"]["invariant"]
        state["worlds"] += record["result"]["worlds"]
        state["classes"] += record["result"]["classes"]

    def finalize(self) -> dict[tuple[str, str], dict[str, Any]]:
        return {key: dict(state) for key, state in sorted(self._groups.items())}


class CorrespondenceRollup:
    """Incremental per ``(machine, model class)`` Theorem 2 rollups."""

    def __init__(self) -> None:
        self._groups: dict[tuple[str, str], dict[str, Any]] = {}

    def fold(self, record: dict[str, Any]) -> None:
        scenario = record["scenario"]
        state = self._groups.setdefault(
            (scenario.get("machine") or "?", scenario["model_class"] or "-"),
            {
                "scenarios": 0,
                "instances": 0,
                "agree": True,
                "oracle_checked": 0,
                "max_dag_size": 0,
                "max_tree_size": 0,
            },
        )
        result = record["result"]
        state["scenarios"] += 1
        state["instances"] += result["instances"]
        state["agree"] = state["agree"] and result["agree"]
        state["oracle_checked"] += 1 if result["oracle_checked"] else 0
        state["max_dag_size"] = max(state["max_dag_size"], result["dag_size"])
        state["max_tree_size"] = max(state["max_tree_size"], result["tree_size"])

    def finalize(self) -> dict[tuple[str, str], dict[str, Any]]:
        return {key: dict(state) for key, state in sorted(self._groups.items())}


_FOLDS = {
    "execution": ExecutionRollup,
    "logic": LogicRollup,
    "correspondence": CorrespondenceRollup,
}


# --------------------------------------------------------------------------- #
# Batch helpers (thin loops over the folds -- one implementation, two shapes)
# --------------------------------------------------------------------------- #


def rollup_execution(records: Iterable[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Per-workload execution rollups, keyed by algorithm name."""
    fold = ExecutionRollup()
    for record in records:
        fold.fold(record)
    return fold.finalize()


def rollup_logic(records: Iterable[dict[str, Any]]) -> dict[tuple[str, str], dict[str, Any]]:
    """Per ``(formula set, model class)`` logic rollups."""
    fold = LogicRollup()
    for record in records:
        fold.fold(record)
    return fold.finalize()


def rollup_correspondence(
    records: Iterable[dict[str, Any]],
) -> dict[tuple[str, str], dict[str, Any]]:
    """Per ``(machine, model class)`` Theorem 2 round-trip rollups."""
    fold = CorrespondenceRollup()
    for record in records:
        fold.fold(record)
    return fold.finalize()


# --------------------------------------------------------------------------- #
# The campaign-level rollup
# --------------------------------------------------------------------------- #


class CampaignRollup:
    """Streaming aggregation of one campaign's records.

    Fold records in any order, any number of times per batch; ``result()``
    finalizes into the same :class:`ExperimentResult` a batch aggregation of
    the identical record set produces.  The work-queue service keeps one of
    these per job and folds shard results as they complete, so report
    generation at the end touches no stored records at all.
    """

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec
        self.folded = 0
        self._fold = _FOLDS[spec.kind]()

    def fold(self, record: dict[str, Any]) -> None:
        self._fold.fold(record)
        self.folded += 1

    def fold_many(self, records: Iterable[dict[str, Any]]) -> "CampaignRollup":
        for record in records:
            self.fold(record)
        return self

    def rollups(self) -> dict:
        """The per-axis rollup table folded so far (finalized snapshot)."""
        return self._fold.finalize()

    def result(self) -> ExperimentResult:
        """Finalize into the paper-vs-measured experiment table."""
        spec = self.spec
        result = ExperimentResult(
            experiment_id=f"campaign:{spec.name}",
            title=spec.description or f"campaign sweep {spec.name!r}",
            paper_reference=f"{self.folded} scenarios, kind={spec.kind}",
        )
        if spec.kind == "execution":
            for workload, rollup in self.rollups().items():
                classes = ",".join(rollup["model_classes"]) or "-"
                expected = spec.expectations.get(workload)
                if expected is None:
                    paper = "observe numbering (in)sensitivity"
                    matches = rollup["all_halted"]
                else:
                    paper = (
                        "outputs invariant under port numberings"
                        if expected
                        else "outputs depend on port numbering"
                    )
                    matches = rollup["all_halted"] and rollup["invariant"] == expected
                result.add(
                    f"{workload} [{classes}]",
                    paper,
                    f"halted={rollup['all_halted']}, invariant={rollup['invariant']}, "
                    f"scenarios={rollup['scenarios']}",
                    matches,
                )
        elif spec.kind == "correspondence":
            for (machine, model_class), rollup in self.rollups().items():
                expected = spec.expectations.get(machine, True)
                ratio = (
                    rollup["max_tree_size"] / rollup["max_dag_size"]
                    if rollup["max_dag_size"]
                    else 1.0
                )
                result.add(
                    f"{machine} on {model_class}",
                    "machine == formula == recompiled algorithm (Theorem 2)"
                    if expected
                    else "round trip expected to disagree",
                    f"agree={rollup['agree']}, instances={rollup['instances']}, "
                    f"dag={rollup['max_dag_size']} vs tree={rollup['max_tree_size']} "
                    f"({ratio:.0f}x), oracle_checked={rollup['oracle_checked']}",
                    rollup["agree"] == expected,
                )
        else:
            for (fset, model_class), rollup in self.rollups().items():
                # Fact 1 is the default expectation; a spec may override per
                # formula set (e.g. a deliberately non-invariant probe).
                expected = spec.expectations.get(fset, True)
                result.add(
                    f"{fset} on K({model_class})",
                    "bisimilar worlds satisfy the same formulas (Fact 1)"
                    if expected
                    else "formula set expected to separate bisimilar worlds",
                    f"invariant={rollup['invariant']}, scenarios={rollup['scenarios']}, "
                    f"classes={rollup['classes']}/{rollup['worlds']} worlds",
                    rollup["invariant"] == expected,
                )
        return result


def campaign_result(spec: CampaignSpec, records: Iterable[dict[str, Any]]) -> ExperimentResult:
    """Fold campaign records into an :class:`ExperimentResult`."""
    return CampaignRollup(spec).fold_many(records).result()


def report_campaign(store: ResultStore, name: str) -> ExperimentResult:
    """Aggregate a stored campaign into a report result, streaming.

    Records flow straight from the backend's batch reader into the fold --
    the full record list is never materialized, which is what keeps report
    time flat in memory at 10^5+ records.
    """
    store = ResultStore(store)
    manifest = store.read_manifest(name)
    spec = CampaignSpec.from_dict(manifest["spec"])
    rollup = CampaignRollup(spec)
    rollup.fold_many(store.get_many(entry["hash"] for entry in manifest["scenarios"]))
    return rollup.result()
