"""Aggregation: per-axis rollups over stored campaign records.

The campaign report rides the same reporting substrate as the experiment
harness: :func:`campaign_result` folds the records of a campaign into an
:class:`~repro.experiments.report.ExperimentResult`, so ``format_report`` and
the ``--json`` machine-readable path work identically for experiments and
campaigns, and CI consumes one record shape for both.

Rollups group records by workload (algorithm or formula set):

* execution campaigns report, per workload, how many scenarios ran, whether
  they all halted, and whether the outputs were *invariant* under the port
  numbering axis -- i.e. every graph point produced one output digest across
  all port strategies and engines.  Where the spec carries an expectation
  (e.g. the built-in hierarchy survey expects SB..MV workloads invariant and
  the SV/VV workloads numbering-sensitive), the row matches only if the
  verdict agrees;
* logic campaigns report, per ``formula set x model class``, whether every
  scenario's bisimilarity-invariance check held (Fact 1 -- always expected);
* correspondence campaigns report, per ``machine x model class``, whether
  every Theorem 2 round trip agreed on all three fronts (machine output ==
  formula extension == recompiled formula-algorithm output), plus the
  DAG-vs-tree size of the emitted formulas.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.campaign.spec import CampaignSpec, Scenario
from repro.campaign.store import ResultStore
from repro.experiments.report import ExperimentResult


def load_records(store: ResultStore, name: str) -> tuple[CampaignSpec, list[dict[str, Any]]]:
    """The spec and the in-order records of a stored campaign manifest."""
    manifest = store.read_manifest(name)
    spec = CampaignSpec.from_dict(manifest["spec"])
    records = [store.get(entry["hash"]) for entry in manifest["scenarios"]]
    return spec, records


def _workload_of(record: dict[str, Any]) -> str:
    scenario = record["scenario"]
    return (
        scenario["algorithm"] or scenario["formula_set"] or scenario.get("machine") or "?"
    )


def rollup_execution(records: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Per-workload execution rollups, keyed by algorithm name."""
    by_workload: dict[str, list[dict[str, Any]]] = defaultdict(list)
    for record in records:
        by_workload[_workload_of(record)].append(record)

    rollups: dict[str, dict[str, Any]] = {}
    for workload, group in sorted(by_workload.items()):
        digests_per_point: dict[tuple, set[str]] = defaultdict(set)
        for record in group:
            point = Scenario.from_dict(record["scenario"]).graph_point()
            digests_per_point[point].add(record["result"]["output_digest"])
        model_classes = sorted(
            {record["scenario"]["model_class"] for record in group} - {None}
        )
        rollups[workload] = {
            "scenarios": len(group),
            "graph_points": len(digests_per_point),
            "all_halted": all(record["result"]["halted"] for record in group),
            "max_rounds_used": max(record["result"]["rounds"] for record in group),
            "invariant": all(len(digests) == 1 for digests in digests_per_point.values()),
            "model_classes": model_classes,
        }
    return rollups


def rollup_logic(records: list[dict[str, Any]]) -> dict[tuple[str, str], dict[str, Any]]:
    """Per ``(formula set, model class)`` logic rollups."""
    by_key: dict[tuple[str, str], list[dict[str, Any]]] = defaultdict(list)
    for record in records:
        scenario = record["scenario"]
        by_key[(scenario["formula_set"], scenario["model_class"] or "-")].append(record)

    rollups: dict[tuple[str, str], dict[str, Any]] = {}
    for key, group in sorted(by_key.items()):
        worlds = sum(record["result"]["worlds"] for record in group)
        classes = sum(record["result"]["classes"] for record in group)
        rollups[key] = {
            "scenarios": len(group),
            "invariant": all(record["result"]["invariant"] for record in group),
            "worlds": worlds,
            "classes": classes,
        }
    return rollups


def rollup_correspondence(
    records: list[dict[str, Any]],
) -> dict[tuple[str, str], dict[str, Any]]:
    """Per ``(machine, model class)`` Theorem 2 round-trip rollups."""
    by_key: dict[tuple[str, str], list[dict[str, Any]]] = defaultdict(list)
    for record in records:
        scenario = record["scenario"]
        by_key[(scenario.get("machine") or "?", scenario["model_class"] or "-")].append(
            record
        )

    rollups: dict[tuple[str, str], dict[str, Any]] = {}
    for key, group in sorted(by_key.items()):
        rollups[key] = {
            "scenarios": len(group),
            "instances": sum(record["result"]["instances"] for record in group),
            "agree": all(record["result"]["agree"] for record in group),
            "oracle_checked": sum(
                1 for record in group if record["result"]["oracle_checked"]
            ),
            "max_dag_size": max(record["result"]["dag_size"] for record in group),
            "max_tree_size": max(record["result"]["tree_size"] for record in group),
        }
    return rollups


def campaign_result(spec: CampaignSpec, records: list[dict[str, Any]]) -> ExperimentResult:
    """Fold campaign records into an :class:`ExperimentResult`."""
    result = ExperimentResult(
        experiment_id=f"campaign:{spec.name}",
        title=spec.description or f"campaign sweep {spec.name!r}",
        paper_reference=f"{len(records)} scenarios, kind={spec.kind}",
    )
    if spec.kind == "execution":
        for workload, rollup in rollup_execution(records).items():
            classes = ",".join(rollup["model_classes"]) or "-"
            expected = spec.expectations.get(workload)
            if expected is None:
                paper = "observe numbering (in)sensitivity"
                matches = rollup["all_halted"]
            else:
                paper = (
                    "outputs invariant under port numberings"
                    if expected
                    else "outputs depend on port numbering"
                )
                matches = rollup["all_halted"] and rollup["invariant"] == expected
            result.add(
                f"{workload} [{classes}]",
                paper,
                f"halted={rollup['all_halted']}, invariant={rollup['invariant']}, "
                f"scenarios={rollup['scenarios']}",
                matches,
            )
    elif spec.kind == "correspondence":
        for (machine, model_class), rollup in rollup_correspondence(records).items():
            expected = spec.expectations.get(machine, True)
            ratio = (
                rollup["max_tree_size"] / rollup["max_dag_size"]
                if rollup["max_dag_size"]
                else 1.0
            )
            result.add(
                f"{machine} on {model_class}",
                "machine == formula == recompiled algorithm (Theorem 2)"
                if expected
                else "round trip expected to disagree",
                f"agree={rollup['agree']}, instances={rollup['instances']}, "
                f"dag={rollup['max_dag_size']} vs tree={rollup['max_tree_size']} "
                f"({ratio:.0f}x), oracle_checked={rollup['oracle_checked']}",
                rollup["agree"] == expected,
            )
    else:
        for (fset, model_class), rollup in rollup_logic(records).items():
            # Fact 1 is the default expectation; a spec may override per
            # formula set (e.g. a deliberately non-invariant probe).
            expected = spec.expectations.get(fset, True)
            result.add(
                f"{fset} on K({model_class})",
                "bisimilar worlds satisfy the same formulas (Fact 1)"
                if expected
                else "formula set expected to separate bisimilar worlds",
                f"invariant={rollup['invariant']}, scenarios={rollup['scenarios']}, "
                f"classes={rollup['classes']}/{rollup['worlds']} worlds",
                rollup["invariant"] == expected,
            )
    return result


def report_campaign(store: ResultStore, name: str) -> ExperimentResult:
    """Load a stored campaign and aggregate it into a report result."""
    spec, records = load_records(store, name)
    return campaign_result(spec, records)
