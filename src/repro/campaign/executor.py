"""The campaign executor: sharding, batch routing, resume.

:func:`run_campaign` is the one entry point: expand the spec, skip every
scenario whose record is already in the store (resume is the default, not a
mode), shard the rest across ``multiprocessing`` workers, and write the
manifest.  Scenario evaluation routes through the existing compiled batch
APIs rather than per-instance calls:

* execution scenarios are grouped by ``(algorithm, engine, max_rounds)`` and
  streamed through :func:`repro.execution.engine.run_iter`, so a whole group
  shares one :class:`~repro.machines.fastpath.FastPathAlgorithm` cache;
* logic scenarios batch their formula set through
  :func:`repro.logic.engine.check_many` on one compiled Kripke model per
  instance, plus a partition-refinement bisimilarity pass;
* correspondence scenarios run the Theorem 2 round trip
  (:func:`repro.modal.correspondence.machine_roundtrip_report`) -- machine
  outputs vs formula extension vs recompiled formula-algorithm -- with the
  hash-consed Table 4/5 formula built once per ``(machine, class, Delta)``
  and reused across the scenarios of a batch.

Everything a worker needs travels as a :class:`~repro.campaign.spec.Scenario`
(primitives only); graphs, algorithms, formula sets and machine formulas are
regenerated in-worker from the registries, with a per-worker memo keyed by
scenario content so successive chunks (and campaigns) of one process never
rebuild the same witness graph twice.  Records are deterministic functions of
their scenario, which is why a sharded run's manifest digest is byte-identical
to a serial run's.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign import registry
from repro.campaign.spec import CampaignSpec, Scenario, content_digest
from repro.campaign.store import ResultStore
from repro.engines.registry import resolve_engine
from repro.execution.engine import logic_engine_for, run_iter
from repro.execution.plan import (
    ARTIFACT_KIND,
    KernelPlan,
    PlanPublisher,
    PlanRef,
    capture_delta,
    capture_plan,
    fold_delta,
    install_plan,
    load_plans,
    plan_key,
)
from repro.graphs.graph import Graph
from repro.graphs.ports import PortNumbering
from repro.logic.bisimulation import bisimilarity_partition
from repro.logic.engine import check_many
from repro.machines.fastpath import fast_path
from repro.machines.models import ProblemClass
from repro.machines.state_machine import algorithm_from_machine
from repro.modal.algorithm_to_formula import formula_for_machine
from repro.modal.correspondence import machine_roundtrip_report
from repro.modal.formula_to_algorithm import algorithm_for_formula
from repro.modal.encoding import KripkeVariant, kripke_encoding, variant_for_class
from repro.obs import init_worker as _obs_init_worker, worker_config as _obs_worker_config
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

#: Node budget of the Table 4/5 construction for campaign scenarios.  High
#: enough for the library machines on the registered graph families, low
#: enough that a mis-specified sweep fails fast with a
#: :class:`~repro.modal.algorithm_to_formula.FormulaSizeError` instead of
#: hanging a worker.
CORRESPONDENCE_NODE_BUDGET = 5_000_000


def canonical_value(value: Any) -> Any:
    """Canonicalize an algorithm output / record payload for JSON.

    Unordered collections are sorted by their canonical form so that the
    record bytes never depend on hash-iteration order (which varies across
    processes); exotic objects fall back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonical_value(item) for item in value), key=repr)
    if isinstance(value, Mapping):
        return sorted(
            ([canonical_value(key), canonical_value(item)] for key, item in value.items()),
            key=repr,
        )
    try:  # FrozenMultiset and other iterables of hashables
        items = list(value)
    except TypeError:
        return repr(value)
    return sorted((canonical_value(item) for item in items), key=repr)


# --------------------------------------------------------------------------- #
# Scenario evaluation
# --------------------------------------------------------------------------- #

#: Per-worker memo of materialized registry objects, keyed by scenario
#: content (graph points, algorithm/formula-set names, machine formula
#: coordinates).  Registry objects are deterministic functions of those keys,
#: so the memo is sound across chunks, campaigns and ``run_campaign`` calls
#: within one process -- a shard no longer rebuilds the same witness graph
#: (or re-enumerates the same Table 4/5 formula) for every chunk it
#: evaluates.  Lives at module level so each multiprocessing worker owns one.
#: Each memo is bounded: on overflow it is simply cleared (the campaign
#: working sets are far below the caps; the bound only protects long-lived
#: processes sweeping unbounded distinct scenarios from monotonic growth).
_WORKER_GRAPHS: dict[tuple, Graph] = {}
_WORKER_ALGORITHMS: dict[str, Any] = {}
_WORKER_FORMULA_SETS: dict[str, Any] = {}
_WORKER_MACHINE_FORMULAS: dict[tuple, Any] = {}

_DEFAULT_WORKER_MEMO_LIMIT = 512


def _env_limit(name: str, default: int) -> int:
    try:
        value = int(os.environ.get(name, ""))
    except (TypeError, ValueError):
        return default
    return value if value > 0 else default


#: Entries a worker memo may hold before it is evicted (cleared wholesale).
#: Configurable: the ``REPRO_WORKER_MEMO_LIMIT`` environment variable seeds
#: it per process (workers inherit the parent's environment), and
#: :func:`set_worker_memo_limit` adjusts it at runtime.  Evictions are no
#: longer silent -- each one increments ``campaign.memo.evictions`` and the
#: current cap is published as the ``campaign.memo.limit`` gauge.
_WORKER_MEMO_LIMIT = _env_limit("REPRO_WORKER_MEMO_LIMIT", _DEFAULT_WORKER_MEMO_LIMIT)
#: Machine formulas can be CORRESPONDENCE_NODE_BUDGET-sized; keep fewer.
_WORKER_FORMULA_LIMIT = 64
#: Reset a memoized wrapper's interning tables past this many configurations:
#: the warm-table win is for small-machine workloads whose tables plateau;
#: history-accumulating algorithms never repeat a configuration, and without
#: a bound their tables would grow for the worker's whole lifetime.
_WORKER_CONFIG_LIMIT = 200_000


def set_worker_memo_limit(limit: int | None) -> int:
    """Set the worker memo cap; ``None`` restores the env/default value.

    Returns the cap now in effect.  Affects this process only -- pool
    workers read ``REPRO_WORKER_MEMO_LIMIT`` from their inherited
    environment instead.
    """
    global _WORKER_MEMO_LIMIT
    if limit is None:
        _WORKER_MEMO_LIMIT = _env_limit(
            "REPRO_WORKER_MEMO_LIMIT", _DEFAULT_WORKER_MEMO_LIMIT
        )
    else:
        _WORKER_MEMO_LIMIT = max(1, int(limit))
    if _metrics.enabled():
        _metrics.gauge("campaign.memo.limit").set(_WORKER_MEMO_LIMIT)
    return _WORKER_MEMO_LIMIT


def _memo_put(memo: dict, key: Any, value: Any, limit: int | None = None) -> Any:
    cap = _WORKER_MEMO_LIMIT if limit is None else limit
    if len(memo) >= cap:
        memo.clear()
        if _metrics.enabled():
            _metrics.counter("campaign.memo.evictions").inc()
            _metrics.gauge("campaign.memo.limit").set(cap)
    memo[key] = value
    return value


@registry.on_registry_change
def clear_worker_memo() -> None:
    """Drop the per-worker registry memo.

    Registered as a registry invalidation hook, so re-registering a family,
    algorithm, formula set or machine under an existing name takes effect on
    the next scenario instead of silently serving the memoized old object.
    """
    _WORKER_GRAPHS.clear()
    _WORKER_ALGORITHMS.clear()
    _WORKER_FORMULA_SETS.clear()
    _WORKER_MACHINE_FORMULAS.clear()


def _memo_observe(hit: bool) -> None:
    if _metrics.enabled():
        _metrics.counter("campaign.memo.hits" if hit else "campaign.memo.misses").inc()


# --------------------------------------------------------------------------- #
# Worker-side plan activation
# --------------------------------------------------------------------------- #

#: Plans published by the parent, installed into a worker's fast-path
#: wrappers so shards start from warm interning tables instead of rebuilding
#: them.  ``_PLAN_BASELINES`` remembers each wrapper's table sizes at install
#: time -- everything a shard interns beyond its baseline travels back to the
#: parent as a :class:`~repro.execution.plan.PlanDelta`.
_ACTIVE_PLANS: dict[str, KernelPlan] = {}
_PLAN_BASELINES: dict[str, Any] = {}
_ACTIVE_GENERATION = -1


def _activate_plans(plan_ref: PlanRef | None) -> None:
    """Load a published plan set into this worker (newest generation wins).

    Wrappers that already exist are re-installed wholesale -- sound because
    interned ids are internal to a wrapper and deltas are folded by value --
    and wrappers built later pick their plan up in :func:`_worker_algorithm`.
    Every failure path leaves the worker running cold; plans are a cache.
    """
    global _ACTIVE_GENERATION
    if plan_ref is None or plan_ref.generation <= _ACTIVE_GENERATION:
        return
    try:
        plans = load_plans(plan_ref)
        if plans is None:
            return
        _ACTIVE_GENERATION = plan_ref.generation
        _ACTIVE_PLANS.clear()
        _ACTIVE_PLANS.update(plans)
        for name, plan in plans.items():
            fast = _WORKER_ALGORITHMS.get(name)
            if fast is not None:
                _PLAN_BASELINES[name] = install_plan(fast, plan)
    except Exception:  # noqa: BLE001 - degrade to a cold worker
        pass


def _campaign_init_worker(obs_config: Any, plan_ref: PlanRef | None) -> None:
    """Pool initializer: telemetry config plus the published plan set."""
    _obs_init_worker(obs_config)
    _activate_plans(plan_ref)


def _plan_deltas() -> list[tuple[str, Any]] | None:
    """This worker's table discoveries beyond each plan-install baseline.

    Deltas are cumulative since install (folding is idempotent), so a
    long-lived service worker that runs many shards between re-publications
    keeps sending a superset -- the parent's keyed setdefault folds only the
    genuinely new entries.  Returns ``None`` when there is nothing new or
    the deltas cannot travel (unpicklable values must never cost the shard
    its records).
    """
    deltas: list[tuple[str, Any]] = []
    try:
        for name, baseline in list(_PLAN_BASELINES.items()):
            fast = _WORKER_ALGORITHMS.get(name)
            if fast is None:
                continue
            delta = capture_delta(fast, baseline)
            if delta is not None:
                deltas.append((name, delta))
        if not deltas:
            return None
        pickle.dumps(deltas, protocol=4)  # transport probe; see docstring
        return deltas
    except Exception:  # noqa: BLE001 - plans are a cache, records are not
        return None


def _materialize(scenario: Scenario) -> tuple[Graph, PortNumbering]:
    point = scenario.graph_point()
    graph = _WORKER_GRAPHS.get(point)
    _memo_observe(graph is not None)
    if graph is None:
        graph = _memo_put(
            _WORKER_GRAPHS,
            point,
            registry.build_graph(
                scenario.family, dict(scenario.graph_params), seed=scenario.seed
            ),
        )
    numbering = registry.build_numbering(scenario.port_strategy, graph, scenario.seed)
    return graph, numbering


def _worker_algorithm(name: str) -> Any:
    # The memo holds the fast-path wrapper, not the bare algorithm: the
    # wrapper owns the projection/transition caches and the sweep engine's
    # interning tables, so successive chunks (run_iter and run_sweep are
    # idempotent on an already-memoizing wrapper) reuse warm tables instead
    # of re-interning every configuration per chunk.
    algorithm = _WORKER_ALGORITHMS.get(name)
    _memo_observe(algorithm is not None)
    if algorithm is None:
        algorithm = _memo_put(
            _WORKER_ALGORITHMS,
            name,
            fast_path(registry.build_algorithm(name), memoize_transitions=True),
        )
        plan = _ACTIVE_PLANS.get(name)
        if plan is not None:
            try:
                _PLAN_BASELINES[name] = install_plan(algorithm, plan)
            except Exception:  # noqa: BLE001 - run cold instead
                _PLAN_BASELINES.pop(name, None)
    tables = algorithm.sweep_tables
    vtables = algorithm.vector_tables
    if (
        (tables is not None and len(tables.configs) > _WORKER_CONFIG_LIMIT)
        or (vtables is not None and vtables.config_count > _WORKER_CONFIG_LIMIT)
        or len(algorithm.transition_cache or ()) > _WORKER_CONFIG_LIMIT
        or algorithm.cache_size > _WORKER_CONFIG_LIMIT
    ):
        algorithm.clear_cache()
        # The cleared tables no longer extend the install baseline, so no
        # sound delta exists for this wrapper anymore.
        _PLAN_BASELINES.pop(name, None)
    return algorithm


def _worker_formula_set(name: str) -> Any:
    fset = _WORKER_FORMULA_SETS.get(name)
    _memo_observe(fset is not None)
    if fset is None:
        fset = _memo_put(_WORKER_FORMULA_SETS, name, registry.formula_set(name))
    return fset


def _execution_records(scenarios: list[Scenario]) -> dict[str, dict[str, Any]]:
    """Evaluate execution scenarios, batched per algorithm through run_iter.

    Batched engines (``"sweep"``, the builtin default, and ``"vector"``)
    execute the whole group through one kernel invocation -- one transition
    evaluation per distinct configuration across all the numberings of a
    graph point, and for ``"vector"`` one array pass per round over every
    representative of a graph family at once.
    """
    groups: dict[tuple[str, str, int], list[Scenario]] = {}
    for scenario in scenarios:
        key = (scenario.algorithm or "", scenario.engine, scenario.max_rounds)
        groups.setdefault(key, []).append(scenario)

    records: dict[str, dict[str, Any]] = {}
    for (algorithm_name, engine, max_rounds), group in sorted(groups.items()):
        algorithm = _worker_algorithm(algorithm_name)
        instances = [_materialize(scenario) for scenario in group]
        started = time.perf_counter()
        stream = run_iter(
            algorithm,
            instances,
            max_rounds=max_rounds,
            require_halt=False,
            engine=engine,
            memoize_transitions=True,
        )
        if resolve_engine(engine).batched:
            # Batched engines (sweep, vector) execute the whole group as one
            # superposed/vectorized batch: there is no per-scenario wall
            # clock to read, so the group time is apportioned evenly and the
            # record says so (``elapsed_apportioned``) -- a slow outlier is
            # invisible inside such a group by construction.  The lazy
            # compiled/reference streams below keep genuine per-scenario
            # timings.
            results = list(stream)
            apportioned = (time.perf_counter() - started) / max(len(group), 1)
        else:
            results = stream
            apportioned = None
        for scenario, (graph, _), result in zip(group, instances, results):
            if apportioned is None:
                elapsed = time.perf_counter() - started
                started = time.perf_counter()
            else:
                elapsed = apportioned
            outputs = [
                [repr(node), canonical_value(result.outputs[node])]
                for node in graph.nodes
                if node in result.outputs
            ]
            payload = {
                "nodes": graph.number_of_nodes,
                "edges": graph.number_of_edges,
                "halted": result.halted,
                "rounds": result.rounds,
                "outputs": outputs,
                "output_digest": content_digest(outputs),
            }
            records[scenario.content_hash()] = _record(
                scenario, payload, elapsed, apportioned=apportioned is not None
            )
    return records


def _logic_record(scenario: Scenario) -> dict[str, Any]:
    """Evaluate one logic scenario: check_many + bisimilarity invariance."""
    started = time.perf_counter()
    graph, numbering = _materialize(scenario)
    if scenario.model_class is not None:
        variant = variant_for_class(ProblemClass(scenario.model_class))
    else:
        variant = KripkeVariant.NEITHER
    encoding = kripke_encoding(graph, numbering, variant=variant)
    fset = _worker_formula_set(scenario.formula_set or "")
    formulas = fset.build(encoding.indices)
    truths = check_many(encoding, formulas, engine=scenario.engine)
    partition = bisimilarity_partition(encoding, graded=fset.graded, engine=scenario.engine)
    blocks: dict[Any, list[Any]] = {}
    for world, block in partition.items():
        blocks.setdefault(block, []).append(world)
    invariant = all(
        len({world in truth for world in block}) == 1
        for truth in truths
        for block in blocks.values()
    )
    payload = {
        "nodes": graph.number_of_nodes,
        "edges": graph.number_of_edges,
        "variant": variant.value,
        "worlds": len(encoding.worlds),
        "formulas": len(formulas),
        "graded": fset.graded,
        "extension_sizes": [len(truth) for truth in truths],
        "extension_digest": content_digest(
            [sorted(repr(world) for world in truth) for truth in truths]
        ),
        "classes": len(blocks),
        "invariant": invariant,
    }
    return _record(scenario, payload, time.perf_counter() - started)


def _correspondence_record(scenario: Scenario) -> dict[str, Any]:
    """Evaluate one correspondence scenario: the Theorem 2 round trip.

    The Table 4/5 formula *and* the three round-trip algorithms of a
    ``(machine, class, Delta, engine)`` coordinate are built once per worker
    (``_WORKER_MACHINE_FORMULAS``) -- the hash-consed pool dedups the formula
    nodes anyway, but skipping the spec enumeration and reusing the wrapped
    algorithms (with their warm fast-path/sweep tables) is what keeps a
    sweep over many numberings of one graph family cheap.
    """
    started = time.perf_counter()
    graph, numbering = _materialize(scenario)
    problem_class = ProblemClass(scenario.model_class)
    workload = registry.machine_workload(scenario.machine or registry.DEFAULT_MACHINE)
    delta = max(graph.max_degree(), 1)
    key = (workload.name, problem_class.value, delta, scenario.engine)
    cached = _WORKER_MACHINE_FORMULAS.get(key)
    _memo_observe(cached is not None)
    if cached is None:
        machine = workload.build(problem_class, delta)
        formula = formula_for_machine(
            machine,
            problem_class,
            workload.running_time,
            max_formula_nodes=CORRESPONDENCE_NODE_BUDGET,
        )
        logic_engine = logic_engine_for(scenario.engine)
        algorithms = (
            fast_path(algorithm_from_machine(machine.as_state_machine()),
                      memoize_transitions=True),
            fast_path(algorithm_for_formula(formula, problem_class, engine=logic_engine),
                      memoize_transitions=True),
            algorithm_for_formula(formula, problem_class, engine="reference")
            if scenario.engine != "reference"
            else None,
        )
        cached = _memo_put(
            _WORKER_MACHINE_FORMULAS,
            key,
            (machine, formula, algorithms),
            limit=_WORKER_FORMULA_LIMIT,
        )
    machine, formula, algorithms = cached
    report = machine_roundtrip_report(
        machine,
        problem_class,
        workload.running_time,
        pairs=[(graph, numbering)],
        engine=scenario.engine,
        cross_check=scenario.engine != "reference",
        max_rounds=scenario.max_rounds,
        formula=formula,
        algorithms=algorithms,
    )
    payload = {
        "nodes": graph.number_of_nodes,
        "edges": graph.number_of_edges,
        "delta": delta,
        **report.to_dict(),
    }
    return _record(scenario, payload, time.perf_counter() - started)


def _record(
    scenario: Scenario,
    payload: dict[str, Any],
    elapsed: float,
    apportioned: bool = False,
) -> dict[str, Any]:
    if _metrics.enabled():
        _metrics.counter(f"campaign.scenarios.{scenario.kind}").inc()
        _metrics.histogram("campaign.record.elapsed_s").observe(elapsed)
    return {
        "hash": scenario.content_hash(),
        "scenario": scenario.to_dict(),
        "kind": scenario.kind,
        "result": payload,
        "elapsed_s": round(elapsed, 6),
        # True when elapsed_s is an even share of a batched group's wall
        # time rather than a per-scenario measurement.  Volatile (see
        # ``backends.base.VOLATILE_FIELDS``), like the timing it qualifies.
        "elapsed_apportioned": apportioned,
    }


def evaluate_scenarios(scenarios: list[Scenario]) -> list[dict[str, Any]]:
    """Evaluate a batch of scenarios, returning records in scenario order."""
    with _span("campaign.shard.evaluate", scenarios=len(scenarios)) as sp:
        if _metrics.enabled():
            _metrics.histogram(
                "campaign.shard.scenarios", buckets=_metrics.DEFAULT_SIZE_BUCKETS
            ).observe(len(scenarios))
        execution = [scenario for scenario in scenarios if scenario.kind == "execution"]
        records = _execution_records(execution)
        for scenario in scenarios:
            if scenario.kind == "logic":
                records[scenario.content_hash()] = _logic_record(scenario)
            elif scenario.kind == "correspondence":
                records[scenario.content_hash()] = _correspondence_record(scenario)
        sp.set(execution=len(execution))
    return [records[scenario.content_hash()] for scenario in scenarios]


def _run_shard(
    scenarios: list[Scenario],
    plan_ref: PlanRef | None = None,
) -> tuple[list[dict[str, Any]], dict[str, Any] | None, list[tuple[str, Any]] | None]:
    """Multiprocessing entry point: one worker evaluates one shard.

    Returns the shard's records plus the worker's metrics delta for this
    shard (``None`` when telemetry is off), so the parent can fold worker
    counters into its own registry without double-counting anything a
    long-lived worker accumulated on earlier shards, plus the worker's plan
    deltas (``None`` when nothing new was interned).

    ``plan_ref`` carries a per-task plan publication (the service path,
    where the parent re-publishes folded plans between shards); campaign
    pool workers instead receive the ref once through their initializer.
    """
    _activate_plans(plan_ref)
    if not _metrics.enabled():
        return evaluate_scenarios(scenarios), None, _plan_deltas()
    before = _metrics.snapshot()
    records = evaluate_scenarios(scenarios)
    return records, _metrics.snapshot_delta(before, _metrics.snapshot()), _plan_deltas()


#: Serial runs persist records to the store after every chunk of this many
#: scenarios, bounding how much work a mid-run interrupt can lose.  Large
#: enough that each chunk still forms sizeable run_iter batches.
SERIAL_CHUNK = 64


# --------------------------------------------------------------------------- #
# Parent-side plan-cache coordination
# --------------------------------------------------------------------------- #


class PlanCache:
    """The parent's side of the kernel plan cache for one store.

    Owns one fast-path wrapper per plannable algorithm (the fold target and
    the persistence source), the store artifact keys it maps to (one per
    ``(algorithm, engine)`` pair -- every key of an algorithm stores the
    same full payload), and the :class:`PlanPublisher` whose shared-memory
    generations the shard workers load.  Thread-safe: the campaign service
    prepares/publishes from its dispatch thread and folds from its result
    thread.

    Every operation is defensive -- a plan that cannot be loaded, folded,
    published or persisted leaves the run cold (and correct), never broken.
    """

    def __init__(self, store: Any, enabled: bool = True) -> None:
        self._store = store
        self.enabled = enabled
        self._wrappers: dict[str, Any] = {}
        self._keys: dict[str, dict[str, str]] = {}  # name -> engine -> key
        self._warm: set[str] = set()
        self._publisher = PlanPublisher()
        self._ref: PlanRef | None = None
        self._dirty = False
        self._lock = threading.Lock()

    def prepare(self, scenarios: list[Scenario]) -> None:
        """Build wrappers and load stored plans for new plannable groups."""
        if not self.enabled:
            return
        with self._lock:
            for scenario in scenarios:
                if scenario.kind != "execution" or not scenario.algorithm:
                    continue
                try:
                    if not resolve_engine(scenario.engine).plannable:
                        continue
                except Exception:  # noqa: BLE001 - unknown/unavailable engine
                    continue
                name = scenario.algorithm
                engines = self._keys.get(name)
                if engines is not None and scenario.engine in engines:
                    continue
                fast = self._wrappers.get(name)
                if fast is None:
                    try:
                        fast = fast_path(
                            registry.build_algorithm(name), memoize_transitions=True
                        )
                    except Exception:  # noqa: BLE001 - bad registry entry
                        continue
                    self._wrappers[name] = fast
                    self._keys[name] = {}
                try:
                    key = plan_key(fast, scenario.engine)
                except Exception:  # noqa: BLE001 - unkeyable algorithm
                    continue
                self._keys[name][scenario.engine] = key
                self._dirty = True
                self._load(name, fast, key)

    def _load(self, name: str, fast: Any, key: str) -> None:
        """Try one stored artifact; install it if the wrapper is still cold."""
        blob = None
        try:
            blob = self._store.get_artifact(ARTIFACT_KIND, key)
        except Exception:  # noqa: BLE001 - artifact channel is best-effort
            blob = None
        if _metrics.enabled():
            _metrics.counter("plan.cache.hit" if blob else "plan.cache.miss").inc()
        if blob is None or name in self._warm:
            return
        try:
            install_plan(fast, KernelPlan.from_bytes(blob))
            self._warm.add(name)
        except Exception:  # noqa: BLE001 - stale/corrupt artifact: run cold
            pass

    def ref(self) -> PlanRef | None:
        """The current publication, re-publishing first when dirty.

        Plans are published even when empty: workers then install a shared
        zero baseline, so their deltas carry *every* discovery and the
        parent can persist a complete plan without re-running anything.
        """
        if not self.enabled:
            return None
        with self._lock:
            if not self._wrappers:
                return None
            if self._dirty or self._ref is None:
                try:
                    plans = {
                        name: capture_plan(fast)
                        for name, fast in self._wrappers.items()
                    }
                    self._ref = self._publisher.publish(plans)
                    self._dirty = False
                    if self._ref is not None and _metrics.enabled():
                        _metrics.counter("plan.cache.publish").inc()
                except Exception:  # noqa: BLE001 - workers run cold
                    self._ref = None
            return self._ref

    def fold(self, plan_deltas: list[tuple[str, Any]] | None) -> None:
        """Fold a shard's worker deltas into the parent wrappers."""
        if not self.enabled or not plan_deltas:
            return
        with self._lock:
            with _span("plan.fold", deltas=len(plan_deltas)) as sp:
                folded = 0
                for name, delta in plan_deltas:
                    fast = self._wrappers.get(name)
                    if fast is None:
                        continue
                    try:
                        if fold_delta(fast, delta):
                            folded += 1
                            self._dirty = True
                    except Exception:  # noqa: BLE001 - drop the delta
                        pass
                sp.set(folded=folded)

    def activate_local(self) -> None:
        """Seed the in-process worker memo with the parent wrappers.

        The serial path (and the service's in-process mode) then evaluates
        straight into the fold targets: discoveries accumulate in place and
        :meth:`persist` captures them without any delta plumbing.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, fast in self._wrappers.items():
                _WORKER_ALGORITHMS[name] = fast

    def persist(self) -> None:
        """Write every non-empty plan to the store (all keys of each name)."""
        if not self.enabled:
            return
        with self._lock:
            for name, fast in self._wrappers.items():
                try:
                    plan = capture_plan(fast)
                    if plan.empty:
                        continue
                    blob = plan.to_bytes()
                except Exception:  # noqa: BLE001 - unserializable tables
                    continue
                for key in self._keys.get(name, {}).values():
                    try:
                        if self._store.put_artifact(ARTIFACT_KIND, key, blob):
                            if _metrics.enabled():
                                _metrics.counter("plan.cache.persist").inc()
                    except Exception:  # noqa: BLE001 - cache write only
                        pass

    def close(self) -> None:
        """Release the publisher's shared-memory segments."""
        with self._lock:
            self._publisher.close()
            self._ref = None


# --------------------------------------------------------------------------- #
# The campaign run
# --------------------------------------------------------------------------- #


@dataclass
class CampaignRun:
    """Summary of one ``run_campaign`` invocation."""

    name: str
    total: int
    executed: int
    skipped: int
    manifest_path: Path | str
    manifest_digest: str
    elapsed_s: float

    @property
    def store_hit_rate(self) -> float:
        """Fraction of scenarios answered by the store instead of executed."""
        return self.skipped / self.total if self.total else 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "total": self.total,
            "executed": self.executed,
            "skipped": self.skipped,
            "store_hit_rate": round(self.store_hit_rate, 4),
            "manifest_path": str(self.manifest_path),
            "manifest_digest": self.manifest_digest,
            "elapsed_s": round(self.elapsed_s, 4),
        }


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | str,
    workers: int | None = None,
    resume: bool = True,
    log: Callable[[str], None] | None = None,
    use_plan_cache: bool = True,
) -> CampaignRun:
    """Run (or resume) a campaign against a result store.

    Parameters
    ----------
    spec:
        The declarative sweep to run.
    store:
        A :class:`ResultStore` or a path to open one at.
    workers:
        ``None``/0/1 evaluates the pending scenarios serially in-process; a
        larger value round-robins them into that many shards evaluated by a
        ``multiprocessing`` pool.  Sharding never changes any record or the
        manifest digest -- only the wall time.
    resume:
        When true (the default), scenarios whose content hash is already in
        the store are skipped; ``False`` forces re-evaluation and replaces
        any stored records with the fresh ones (use after changing an
        algorithm or engine behind unchanged scenario coordinates).
    log:
        Optional progress sink (the CLI passes ``print``).
    use_plan_cache:
        When true (the default), kernel plans stored in the campaign store
        start plannable engines warm, workers receive published plans via
        shared memory, and the plans discovered during the run are persisted
        for the next one.  Plans never change any record or the manifest
        digest -- only the wall time -- and ``False`` (the ``--no-plan-cache``
        escape hatch) bypasses the machinery entirely.
    """
    if isinstance(store, (str, Path)):
        store = ResultStore(store)
    started = time.perf_counter()
    scenarios = spec.expand()
    if resume:
        # One set-at-a-time store probe instead of a has() per scenario --
        # on the sqlite backend this is a handful of indexed IN queries,
        # which is what keeps warm resume flat at 10^5 records.
        present = store.has_many(s.content_hash() for s in scenarios)
        pending = [s for s in scenarios if s.content_hash() not in present]
    else:
        pending = list(scenarios)
    skipped = len(scenarios) - len(pending)
    if log:
        log(
            f"campaign {spec.name!r}: {len(scenarios)} scenarios, "
            f"{skipped} already stored, {len(pending)} to run"
        )

    plan_cache = PlanCache(store, enabled=use_plan_cache)
    plan_cache.prepare(pending)

    # Records are persisted incrementally -- per shard as it completes, per
    # chunk on the serial path -- so an interrupted run resumes from whatever
    # it got through, not from zero (the index heals from the objects).
    with _span(
        "campaign.run", campaign=spec.name, total=len(scenarios), skipped=skipped
    ) as run_span:
        if pending:
            if workers and workers > 1 and len(pending) > 1:
                shard_count = min(workers, len(pending))
                shards = [pending[i::shard_count] for i in range(shard_count)]
                with multiprocessing.Pool(
                    shard_count,
                    initializer=_campaign_init_worker,
                    initargs=(_obs_worker_config(), plan_cache.ref()),
                ) as pool:
                    for shard_records, delta, plan_deltas in pool.imap_unordered(
                        _run_shard, shards
                    ):
                        # One index flush per completed shard: a run that dies
                        # between shards resumes with a warm index, and the
                        # object files alone still carry the resume if it dies
                        # mid-flush (the index is pure acceleration).
                        store.put_many(shard_records, overwrite=not resume)
                        _metrics.merge_snapshot(delta)
                        plan_cache.fold(plan_deltas)
            else:
                # Serial evaluation runs straight inside the plan-cache
                # wrappers, so discoveries accumulate in place.
                plan_cache.activate_local()
                for start in range(0, len(pending), SERIAL_CHUNK):
                    store.put_many(
                        evaluate_scenarios(pending[start : start + SERIAL_CHUNK]),
                        overwrite=not resume,
                    )
        run_span.set(executed=len(pending))

    manifest_path, manifest_digest = store.write_manifest(spec, scenarios)
    # Flush the index only after the manifest pass, which may have
    # self-healed entries (e.g. a lost index.json over a populated store) by
    # re-reading object files -- those healed digests must be persisted.
    store.save_index()
    plan_cache.persist()
    plan_cache.close()
    run = CampaignRun(
        name=spec.name,
        total=len(scenarios),
        executed=len(pending),
        skipped=skipped,
        manifest_path=manifest_path,
        manifest_digest=manifest_digest,
        elapsed_s=time.perf_counter() - started,
    )
    if log:
        log(
            f"campaign {spec.name!r}: executed {run.executed}, "
            f"store hits {run.skipped}/{run.total}, "
            f"manifest {run.manifest_digest[:12]} ({run.elapsed_s:.2f}s)"
        )
    return run
