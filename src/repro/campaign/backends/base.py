"""The formal storage-backend contract of the campaign result store.

A backend persists three things:

* **records** -- one JSON document per scenario content hash, immutable once
  present (``put`` on an existing hash is a no-op), which is what makes
  campaigns resumable and concurrent writers safe;
* **record digests** -- a SHA-256 per record over its canonical JSON minus
  volatile fields (wall-clock timings), the unit the manifest digest is built
  from;
* **manifests** -- one canonical-JSON document per campaign name, whose
  *bytes* are the cross-backend contract: the same spec run through any
  backend, any worker count, and any execution path must store byte-identical
  manifest text (and therefore the same manifest digest).

Concrete backends (``json``, ``sqlite``) implement the primitive storage
operations; everything digest- and manifest-shaped lives here so it cannot
drift between layouts.
"""

from __future__ import annotations

import json
import time
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec, Scenario, canonical_json, content_digest
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span

#: Record fields excluded from the record digest (timing noise, not results).
#: ``elapsed_apportioned`` qualifies how ``elapsed_s`` was measured, so it is
#: volatile for the same reason the timing itself is.
VOLATILE_FIELDS = ("elapsed_s", "elapsed_apportioned")


class StoreError(RuntimeError):
    """A stored object exists but cannot be served (corrupt / unreadable).

    Distinct from :class:`KeyError` (absent record): callers that can
    re-evaluate treat both as "missing", callers that cannot (``get`` on a
    hash the manifest promises) surface the path so the operator can prune
    or migrate the damaged store.
    """


def record_digest(record: dict[str, Any]) -> str:
    """Digest of a record's deterministic content."""
    stable = {key: value for key, value in record.items() if key not in VOLATILE_FIELDS}
    return content_digest(stable)


def decode_record(text: str, origin: str) -> dict[str, Any]:
    """Parse stored record text, raising :class:`StoreError` naming the origin."""
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        if _metrics.enabled():
            _metrics.counter("store.corrupt_objects").inc()
        raise StoreError(f"corrupt record object at {origin}: {error}") from None
    if not isinstance(record, dict) or "hash" not in record:
        if _metrics.enabled():
            _metrics.counter("store.corrupt_objects").inc()
        raise StoreError(f"corrupt record object at {origin}: not a record document")
    return record


def observe_put_many(scheme: str, batch: int, written: int, seconds: float) -> None:
    """Publish one backend's ``put_many`` batch to the metrics registry."""
    if not _metrics.enabled():
        return
    _metrics.counter(f"store.{scheme}.records_written").inc(written)
    _metrics.histogram(
        "store.put_many.batch_size", buckets=_metrics.DEFAULT_SIZE_BUCKETS
    ).observe(batch)
    _metrics.histogram(f"store.{scheme}.put_many_seconds").observe(seconds)


class StoreBackend(ABC):
    """Abstract storage backend for campaign records and manifests.

    Subclasses set :attr:`scheme` (the URI prefix that selects them) and
    implement the primitive record/manifest operations.  Batch operations
    have straightforward per-item defaults that backends override where the
    layout offers something better (one SQL query instead of N file stats).
    """

    #: URI scheme selecting this backend, e.g. ``"json"`` in ``json:path``.
    scheme: str = ""

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    root: Path  # filesystem anchor (directory for json, db file for sqlite)

    @property
    def uri(self) -> str:
        """The store URI that reopens this backend."""
        return f"{self.scheme}:{self.root}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.uri}>"

    # ------------------------------------------------------------------ #
    # Records (primitive)
    # ------------------------------------------------------------------ #

    @abstractmethod
    def has(self, scenario_hash: str) -> bool:
        """Whether a *servable* record is stored under the hash.

        A corrupt stored object counts as missing here: resume paths key off
        ``has``, and re-evaluating a damaged record is strictly better than
        crashing mid-campaign on it.
        """

    @abstractmethod
    def get(self, scenario_hash: str) -> dict[str, Any]:
        """The stored record; :class:`KeyError` if absent, :class:`StoreError`
        if present but unreadable."""

    @abstractmethod
    def put(self, record: dict[str, Any], overwrite: bool = False) -> bool:
        """Store a record under its scenario hash.

        Returns ``True`` when the record was written, ``False`` when the hash
        was already present and kept (existing records win, so concurrent
        shards and resumed runs are idempotent).  ``overwrite`` replaces an
        existing record -- the forced re-evaluation path.
        """

    @abstractmethod
    def record_digest_of(self, scenario_hash: str) -> str:
        """The record digest for a stored scenario."""

    @abstractmethod
    def iter_records(self) -> Iterator[dict[str, Any]]:
        """All stored records, in ascending hash order (deterministic)."""

    @abstractmethod
    def count_records(self) -> int:
        """How many records the store holds."""

    # ------------------------------------------------------------------ #
    # Records (batch -- backends override with set-at-a-time queries)
    # ------------------------------------------------------------------ #

    def put_many(self, records: Iterable[dict[str, Any]], overwrite: bool = False) -> int:
        """Store a batch of records, flushing any index/transaction once.

        Returns the number of records actually written.  A batch that wrote
        nothing (an all-hit resume) must not rewrite any on-disk state.
        """
        batch = list(records)
        with _span("store.put_many", backend=self.scheme, batch=len(batch)) as sp:
            started = time.perf_counter()
            written = 0
            for record in batch:
                if self.put(record, overwrite=overwrite):
                    written += 1
            if written:
                self.save_index()
            observe_put_many(
                self.scheme, len(batch), written, time.perf_counter() - started
            )
            sp.set(written=written)
        return written

    def has_many(self, scenario_hashes: Iterable[str]) -> set[str]:
        """The subset of the given hashes with servable stored records."""
        return {h for h in scenario_hashes if self.has(h)}

    def get_many(self, scenario_hashes: Iterable[str]) -> Iterator[dict[str, Any]]:
        """Stored records in request order (the streaming report path)."""
        for scenario_hash in scenario_hashes:
            yield self.get(scenario_hash)

    def record_digests_of(self, scenario_hashes: Iterable[str]) -> list[str]:
        """Record digests in request order (the manifest-write path)."""
        return [self.record_digest_of(h) for h in scenario_hashes]

    def save_index(self) -> None:
        """Flush any acceleration structure (json's ``index.json``).

        Transactional backends have nothing to flush; the default is a no-op
        so callers can keep one flush cadence across backends.
        """

    # ------------------------------------------------------------------ #
    # Artifacts (auxiliary blobs: kernel plans, future caches)
    # ------------------------------------------------------------------ #
    #
    # Artifacts are opaque byte blobs keyed by ``(kind, key)``; they are a
    # *cache* channel, invisible to record/manifest accounting (the manifest
    # digest covers only the spec and record digests, so adding, dropping or
    # corrupting artifacts can never perturb it).  The base implementations
    # are deliberately inert no-ops -- a backend without artifact storage is
    # still a valid store, callers just run cold.

    def put_artifact(self, kind: str, key: str, blob: bytes) -> bool:
        """Store an artifact blob (overwriting); False if unsupported."""
        return False

    def get_artifact(self, kind: str, key: str) -> bytes | None:
        """The stored artifact blob, or ``None`` when absent/unsupported."""
        return None

    def list_artifacts(self, kind: str) -> list[str]:
        """Stored artifact keys of one kind, sorted."""
        return []

    # ------------------------------------------------------------------ #
    # Manifests
    # ------------------------------------------------------------------ #

    @abstractmethod
    def _write_manifest_text(self, name: str, text: str) -> Path | str:
        """Persist manifest text under the campaign name; return its location."""

    @abstractmethod
    def read_manifest_text(self, name: str) -> str:
        """The stored manifest bytes (the cross-backend digest contract)."""

    @abstractmethod
    def list_campaigns(self) -> list[str]:
        """Stored campaign names, sorted."""

    def write_manifest(
        self, spec: CampaignSpec, scenarios: list[Scenario]
    ) -> tuple[Path | str, str]:
        """Write the campaign manifest and return ``(location, digest)``.

        The manifest lists every scenario in expansion order with its content
        hash and record digest.  Its digest covers exactly the spec and that
        list, so any two runs of the same spec that produced the same records
        -- serial, sharded, service-queued, json or sqlite -- emit
        byte-identical manifests.
        """
        hashes = [scenario.content_hash() for scenario in scenarios]
        digests = self.record_digests_of(hashes)
        entries = [
            {"hash": scenario_hash, "record_digest": digest}
            for scenario_hash, digest in zip(hashes, digests)
        ]
        stable = {"spec": spec.to_dict(), "scenarios": entries}
        digest = content_digest(stable)
        manifest = {"manifest_digest": digest, **stable}
        location = self._write_manifest_text(spec.name, canonical_json(manifest))
        return location, digest

    def read_manifest(self, name: str) -> dict[str, Any]:
        text = self.read_manifest_text(name)
        try:
            return json.loads(text)
        except json.JSONDecodeError as error:
            raise StoreError(
                f"corrupt manifest for campaign {name!r} in {self.uri}: {error}"
            ) from None
