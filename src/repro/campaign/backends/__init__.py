"""Pluggable campaign storage backends, selected by store URI.

A store location is either a bare path (backend auto-detected: an existing
regular file is a sqlite database, anything else the original json-directory
layout) or an explicit ``scheme:path`` URI::

    json:campaign-store          loose JSON objects + index.json (the default)
    sqlite:campaigns.db          one WAL-mode database file

:func:`open_backend` resolves a location to a live backend;
:func:`migrate_store` converts a store between backends and verifies the
manifest-digest contract held (byte-identical manifests, matching record
digests) -- the property that makes backends interchangeable.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.campaign.backends.base import (
    VOLATILE_FIELDS,
    StoreBackend,
    StoreError,
    record_digest,
)
from repro.campaign.backends.json_backend import JsonBackend
from repro.campaign.backends.sqlite_backend import SqliteBackend
from repro.campaign.spec import content_digest

#: scheme -> backend constructor.
BACKENDS: dict[str, Callable[[str | os.PathLike[str]], StoreBackend]] = {
    JsonBackend.scheme: JsonBackend,
    SqliteBackend.scheme: SqliteBackend,
}

#: Records copied per transaction/index-flush during migration.
MIGRATE_BATCH = 1_000


def parse_store_uri(location: str | os.PathLike[str]) -> tuple[str, str]:
    """Split a store location into ``(scheme, path)``.

    Bare paths auto-detect: a path that exists as a regular file (or ends in
    ``.db``/``.sqlite``/``.sqlite3``) is a sqlite database; everything else
    is the json directory layout, preserving the historical meaning of every
    pre-URI call site.
    """
    if isinstance(location, os.PathLike):
        location = str(location)
    for scheme in BACKENDS:
        prefix = f"{scheme}:"
        if location.startswith(prefix):
            path = location[len(prefix) :]
            if not path:
                raise ValueError(f"store URI {location!r} has an empty path")
            return scheme, path
    head = location.split(":", 1)[0]
    if ":" in location and head.isalpha() and len(head) > 1:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown store backend {head!r} in {location!r}; known: {known}")
    path = Path(location)
    if path.is_file() or path.suffix in (".db", ".sqlite", ".sqlite3"):
        return SqliteBackend.scheme, location
    return JsonBackend.scheme, location


def open_backend(location: str | os.PathLike[str] | StoreBackend) -> StoreBackend:
    """Resolve a store location (or pass through a live backend)."""
    if isinstance(location, StoreBackend):
        return location
    scheme, path = parse_store_uri(location)
    return BACKENDS[scheme](path)


def migrate_store(
    source: str | os.PathLike[str] | StoreBackend,
    destination: str | os.PathLike[str] | StoreBackend,
    batch: int = MIGRATE_BATCH,
) -> dict[str, Any]:
    """Copy every record and manifest from ``source`` into ``destination``.

    Existing destination records win (the content-addressed contract), so a
    migration is resumable and can merge stores.  After copying, every
    migrated manifest is verified against the destination: the stored bytes
    must match the source exactly and the recomputed digest chain (record
    digests -> manifest digest) must agree -- a failed verification raises
    :class:`StoreError` before the migration is reported as done.
    """
    src = open_backend(source)
    dst = open_backend(destination)
    if getattr(src, "root", None) == getattr(dst, "root", None) and src.scheme == dst.scheme:
        raise ValueError(f"source and destination are the same store: {src.uri}")

    copied = 0
    skipped = 0
    pending: list[dict[str, Any]] = []

    def flush() -> None:
        nonlocal copied, skipped
        if pending:
            written = dst.put_many(pending)
            copied += written
            skipped += len(pending) - written
            pending.clear()

    for record in src.iter_records():
        pending.append(record)
        if len(pending) >= batch:
            flush()
    flush()

    campaigns = src.list_campaigns()
    for name in campaigns:
        dst._write_manifest_text(name, src.read_manifest_text(name))

    # Artifacts (kernel plans) ride along best-effort: they are a cache, so
    # a backend that cannot serve or store them just leaves the destination
    # cold -- never a failed migration.
    artifacts_copied = 0
    try:
        from repro.execution.plan import ARTIFACT_KIND

        for key in src.list_artifacts(ARTIFACT_KIND):
            blob = src.get_artifact(ARTIFACT_KIND, key)
            if blob is not None and dst.put_artifact(ARTIFACT_KIND, key, blob):
                artifacts_copied += 1
    except Exception:  # noqa: BLE001 - cache channel, never fatal
        pass

    verified = []
    for name in campaigns:
        text = dst.read_manifest_text(name)
        if text != src.read_manifest_text(name):
            raise StoreError(f"manifest {name!r} bytes differ after migration to {dst.uri}")
        manifest = dst.read_manifest(name)
        stable = {"spec": manifest["spec"], "scenarios": manifest["scenarios"]}
        recomputed = content_digest(stable)
        if recomputed != manifest["manifest_digest"]:
            raise StoreError(
                f"manifest {name!r} digest mismatch after migration: "
                f"stored {manifest['manifest_digest'][:12]}, recomputed {recomputed[:12]}"
            )
        hashes = [entry["hash"] for entry in manifest["scenarios"]]
        try:
            digests = dst.record_digests_of(hashes)
        except KeyError as error:
            raise StoreError(
                f"manifest {name!r} references a record missing from {dst.uri}: {error}"
            ) from None
        for entry, digest in zip(manifest["scenarios"], digests):
            if entry["record_digest"] != digest:
                raise StoreError(
                    f"record {entry['hash'][:12]} of campaign {name!r} has digest "
                    f"{digest[:12]} in {dst.uri}, manifest expects "
                    f"{entry['record_digest'][:12]}"
                )
        verified.append({"campaign": name, "manifest_digest": manifest["manifest_digest"]})

    return {
        "source": src.uri,
        "destination": dst.uri,
        "records_copied": copied,
        "records_already_present": skipped,
        "artifacts_copied": artifacts_copied,
        "campaigns": verified,
    }


__all__ = [
    "BACKENDS",
    "JsonBackend",
    "SqliteBackend",
    "StoreBackend",
    "StoreError",
    "VOLATILE_FIELDS",
    "migrate_store",
    "open_backend",
    "parse_store_uri",
    "record_digest",
]
