"""The ``json`` backend: one loose JSON object file per record.

Layout under the store root::

    objects/<hh>/<hash>.json    one JSON record per scenario content hash
    index.json                  hash -> record digest (fast resume/manifest path)
    campaigns/<name>.json       one manifest per campaign name

Records are written atomically (temp file + ``os.replace``); the index is a
pure acceleration structure -- the object files alone carry a resume, and a
lost index self-heals from them.  This is the original ``ResultStore``
layout, preserved byte-for-byte so existing stores keep working.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any

from repro.campaign.backends.base import (
    StoreBackend,
    StoreError,
    decode_record,
    observe_put_many,
    record_digest,
)
from repro.obs.trace import span as _span


class JsonBackend(StoreBackend):
    """A content-addressed on-disk store of loose JSON records."""

    scheme = "json"

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.campaigns = self.root / "campaigns"
        self.index_path = self.root / "index.json"
        # No eager mkdir: read-only consumers (list/report) must not create
        # store directories as a side effect; _atomic_write mkdirs on demand.
        self._index: dict[str, str] | None = None

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #

    def _object_path(self, scenario_hash: str) -> Path:
        return self.objects / scenario_hash[:2] / f"{scenario_hash}.json"

    @staticmethod
    def _servable(path: Path) -> bool:
        """Cheap validity probe: present, non-empty, and not truncated.

        A record file is complete JSON ending in ``}``; a write that died
        mid-copy (or a truncated restore) fails the tail-byte check.  Full
        parsing stays in :meth:`get` -- the probe is what lets ``has`` stay
        cheap on warm resumes while still treating a truncated object as
        missing (re-evaluate) instead of crashing mid-campaign on it.
        """
        try:
            with open(path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"}"
        except (OSError, ValueError):
            return False

    def has(self, scenario_hash: str) -> bool:
        # The object file is the source of truth, not the index: a stale
        # index entry whose record was pruned must not make resume skip the
        # scenario (it would leave the manifest pointing at missing records).
        return self._servable(self._object_path(scenario_hash))

    def get(self, scenario_hash: str) -> dict[str, Any]:
        path = self._object_path(scenario_hash)
        try:
            with open(path) as handle:
                text = handle.read()
        except FileNotFoundError:
            raise KeyError(f"no record for scenario hash {scenario_hash}") from None
        except OSError as error:
            raise StoreError(f"corrupt record object at {path}: {error}") from None
        return decode_record(text, str(path))

    def put(self, record: dict[str, Any], overwrite: bool = False) -> bool:
        scenario_hash = record["hash"]
        path = self._object_path(scenario_hash)
        if not overwrite and self._servable(path):
            # The index must describe the record actually served, never the
            # discarded newcomer; self-heal from disk if the entry is missing.
            # (A present-but-corrupt object falls through and is replaced.)
            self.record_digest_of(scenario_hash)
            return False
        self._atomic_write(path, json.dumps(record, indent=2, sort_keys=True))
        self.index[scenario_hash] = record_digest(record)
        return True

    def put_many(self, records: Iterable[dict[str, Any]], overwrite: bool = False) -> int:
        """Store a batch of records, flushing the index once at the end.

        This is the per-shard persistence path of the campaign executor.
        ``put`` never flushes, so the flush cadence is entirely the caller's:
        one ``save_index`` per batch keeps the index durable shard by shard
        (a run that dies between shards resumes with a warm index) without
        rewriting it per record or per chunk.  An all-hit batch (a warm
        resume) writes nothing and therefore flushes nothing -- rewriting
        ``index.json`` for zero new records is pure churn.  Returns the
        number of records actually written.
        """
        batch = list(records)
        with _span("store.put_many", backend=self.scheme, batch=len(batch)) as sp:
            started = time.perf_counter()
            written = 0
            for record in batch:
                if self.put(record, overwrite=overwrite):
                    written += 1
            if written:
                self.save_index()
            observe_put_many(
                self.scheme, len(batch), written, time.perf_counter() - started
            )
            sp.set(written=written)
        return written

    def iter_records(self) -> Iterator[dict[str, Any]]:
        for path in sorted(self.objects.glob("*/*.json")):
            with open(path) as handle:
                yield decode_record(handle.read(), str(path))

    def count_records(self) -> int:
        return sum(1 for _ in self.objects.glob("*/*.json"))

    # ------------------------------------------------------------------ #
    # Index (hash -> record digest)
    # ------------------------------------------------------------------ #

    @property
    def index(self) -> dict[str, str]:
        if self._index is None:
            try:
                with open(self.index_path) as handle:
                    self._index = json.load(handle)
            except (FileNotFoundError, json.JSONDecodeError):
                self._index = {}
        return self._index

    def save_index(self) -> None:
        self._atomic_write(self.index_path, json.dumps(self.index, indent=0, sort_keys=True))

    def record_digest_of(self, scenario_hash: str) -> str:
        """The record digest for a stored scenario, via the index when warm.

        Self-healing: a hash present on disk but missing from the index (e.g.
        an interrupted earlier run) is re-read and re-indexed.
        """
        digest = self.index.get(scenario_hash)
        if digest is None:
            digest = record_digest(self.get(scenario_hash))
            self.index[scenario_hash] = digest
        return digest

    # ------------------------------------------------------------------ #
    # Artifacts (artifacts/<kind>/<kk>/<key>.bin)
    # ------------------------------------------------------------------ #

    def _artifact_path(self, kind: str, key: str) -> Path:
        return self.root / "artifacts" / kind / key[:2] / f"{key}.bin"

    def put_artifact(self, kind: str, key: str, blob: bytes) -> bool:
        self._atomic_write_bytes(self._artifact_path(kind, key), blob)
        return True

    def get_artifact(self, kind: str, key: str) -> bytes | None:
        try:
            return self._artifact_path(kind, key).read_bytes()
        except OSError:
            return None

    def list_artifacts(self, kind: str) -> list[str]:
        return sorted(path.stem for path in (self.root / "artifacts" / kind).glob("*/*.bin"))

    # ------------------------------------------------------------------ #
    # Manifests
    # ------------------------------------------------------------------ #

    def manifest_path(self, name: str) -> Path:
        return self.campaigns / f"{name}.json"

    def _write_manifest_text(self, name: str, text: str) -> Path:
        path = self.manifest_path(name)
        self._atomic_write(path, text)
        return path

    def read_manifest_text(self, name: str) -> str:
        path = self.manifest_path(name)
        try:
            return path.read_text()
        except FileNotFoundError:
            known = ", ".join(self.list_campaigns()) or "(none)"
            raise KeyError(
                f"no manifest for campaign {name!r} in {self.root}; stored campaigns: {known}"
            ) from None

    def list_campaigns(self) -> list[str]:
        return sorted(path.stem for path in self.campaigns.glob("*.json"))

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _atomic_write(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=f".{path.name}.", delete=False
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except FileNotFoundError:
                pass
            raise

    def _atomic_write_bytes(self, path: Path, blob: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=path.parent, prefix=f".{path.name}.", delete=False
        )
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except FileNotFoundError:
                pass
            raise
