"""The ``sqlite`` backend: one WAL-mode database file per store.

Schema::

    objects(hash PRIMARY KEY, digest, record)     one row per scenario record
    manifests(name PRIMARY KEY, digest, manifest) one row per campaign

Why sqlite for millions of records where loose JSON files stop scaling:

* ``put_many`` is one ``BEGIN IMMEDIATE`` transaction per shard instead of
  one atomic file rename per record -- and a writer killed mid-transaction
  rolls back cleanly on the next open (WAL recovery), so an interrupted
  campaign resumes from the last committed shard;
* ``has_many`` / ``get_many`` / ``record_digests_of`` are set-at-a-time
  indexed queries instead of per-record ``stat``/``open`` syscalls, which is
  what makes warm resume and report scale past 10^5 records;
* WAL mode plus a busy timeout makes concurrent multi-process writers safe:
  readers never block the writer, writers queue on the database lock, and
  ``INSERT OR IGNORE`` keeps the existing-record-wins idempotence of the
  content-addressed contract.

Connections are opened lazily, per process *and* per thread (sqlite
connections are not fork- or thread-portable), and dropped on pickling so a
backend instance can travel to multiprocessing workers like a path would.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any

from repro.campaign.backends.base import (
    StoreBackend,
    StoreError,
    decode_record,
    observe_put_many,
    record_digest,
)
from repro.obs.trace import span as _span

#: Hashes per ``WHERE hash IN (...)`` chunk; comfortably under sqlite's
#: default 999-variable limit.
_IN_CHUNK = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS objects (
    hash   TEXT PRIMARY KEY,
    digest TEXT NOT NULL,
    record TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS manifests (
    name     TEXT PRIMARY KEY,
    digest   TEXT NOT NULL,
    manifest TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS artifacts (
    kind TEXT NOT NULL,
    key  TEXT NOT NULL,
    blob BLOB NOT NULL,
    PRIMARY KEY (kind, key)
) WITHOUT ROWID;
"""


def _chunks(items: list, size: int = _IN_CHUNK) -> Iterator[list]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class SqliteBackend(StoreBackend):
    """A content-addressed store in a single WAL-mode sqlite database."""

    scheme = "sqlite"

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #

    def _connect(self, create: bool) -> sqlite3.Connection | None:
        """A per-process, per-thread connection; ``None`` for reads on a
        store that does not exist yet (read-only consumers must not create
        database files as a side effect)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            return conn
        if conn is not None:
            # Forked child: the parent's connection must not be reused (or
            # closed -- that would checkpoint under the parent's feet).
            self._local.conn = None
        if not create and not self.root.exists():
            return None
        self.root.parent.mkdir(parents=True, exist_ok=True)
        # Autocommit mode: transactions are explicit (BEGIN IMMEDIATE in
        # put_many), everything else is a single implicit transaction.
        conn = sqlite3.connect(str(self.root), timeout=30.0, isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.executescript(_SCHEMA)
        self._local.conn = conn
        self._local.pid = os.getpid()
        return conn

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) == os.getpid():
            conn.close()
        self._local.conn = None

    def __getstate__(self) -> dict[str, Any]:
        # Connections are process-local; a pickled backend travels as a path.
        return {"root": self.root}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.root = state["root"]
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #

    def has(self, scenario_hash: str) -> bool:
        conn = self._connect(create=False)
        if conn is None:
            return False
        row = conn.execute(
            "SELECT 1 FROM objects WHERE hash = ?", (scenario_hash,)
        ).fetchone()
        return row is not None

    def has_many(self, scenario_hashes: Iterable[str]) -> set[str]:
        conn = self._connect(create=False)
        if conn is None:
            return set()
        present: set[str] = set()
        for chunk in _chunks(list(scenario_hashes)):
            marks = ",".join("?" * len(chunk))
            rows = conn.execute(
                f"SELECT hash FROM objects WHERE hash IN ({marks})", chunk
            ).fetchall()
            present.update(row[0] for row in rows)
        return present

    def get(self, scenario_hash: str) -> dict[str, Any]:
        conn = self._connect(create=False)
        row = (
            conn.execute(
                "SELECT record FROM objects WHERE hash = ?", (scenario_hash,)
            ).fetchone()
            if conn is not None
            else None
        )
        if row is None:
            raise KeyError(f"no record for scenario hash {scenario_hash}")
        return decode_record(row[0], f"{self.uri}#objects/{scenario_hash}")

    def get_many(self, scenario_hashes: Iterable[str]) -> Iterator[dict[str, Any]]:
        requested = list(scenario_hashes)
        conn = self._connect(create=False)
        if conn is None:
            if requested:
                raise KeyError(f"no record for scenario hash {requested[0]}")
            return
        for chunk in _chunks(requested):
            marks = ",".join("?" * len(chunk))
            rows = conn.execute(
                f"SELECT hash, record FROM objects WHERE hash IN ({marks})", chunk
            ).fetchall()
            by_hash = {row[0]: row[1] for row in rows}
            for scenario_hash in chunk:
                text = by_hash.get(scenario_hash)
                if text is None:
                    raise KeyError(f"no record for scenario hash {scenario_hash}")
                yield decode_record(text, f"{self.uri}#objects/{scenario_hash}")

    def put(self, record: dict[str, Any], overwrite: bool = False) -> bool:
        return self.put_many([record], overwrite=overwrite) == 1

    def put_many(self, records: Iterable[dict[str, Any]], overwrite: bool = False) -> int:
        """One transaction per batch: all-or-nothing shard persistence.

        ``INSERT OR IGNORE`` keeps existing records (idempotent resumes and
        concurrent writers); ``overwrite`` replaces them (the forced
        re-evaluation path).  A writer killed mid-batch leaves no partial
        shard -- WAL recovery rolls the transaction back on the next open.
        """
        rows = [
            (record["hash"], record_digest(record), json.dumps(record, sort_keys=True))
            for record in records
        ]
        if not rows:
            return 0
        with _span("store.put_many", backend=self.scheme, batch=len(rows)) as sp:
            started = time.perf_counter()
            conn = self._connect(create=True)
            verb = "INSERT OR REPLACE" if overwrite else "INSERT OR IGNORE"
            before = conn.total_changes
            conn.execute("BEGIN IMMEDIATE")
            try:
                conn.executemany(
                    f"{verb} INTO objects (hash, digest, record) VALUES (?, ?, ?)", rows
                )
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")
            written = conn.total_changes - before
            observe_put_many(
                self.scheme, len(rows), written, time.perf_counter() - started
            )
            sp.set(written=written)
        return written

    def record_digest_of(self, scenario_hash: str) -> str:
        conn = self._connect(create=False)
        row = (
            conn.execute(
                "SELECT digest FROM objects WHERE hash = ?", (scenario_hash,)
            ).fetchone()
            if conn is not None
            else None
        )
        if row is None:
            raise KeyError(f"no record for scenario hash {scenario_hash}")
        return row[0]

    def record_digests_of(self, scenario_hashes: Iterable[str]) -> list[str]:
        requested = list(scenario_hashes)
        conn = self._connect(create=False)
        digests: dict[str, str] = {}
        if conn is not None:
            for chunk in _chunks(requested):
                marks = ",".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT hash, digest FROM objects WHERE hash IN ({marks})", chunk
                ).fetchall()
                digests.update(rows)
        missing = [h for h in requested if h not in digests]
        if missing:
            raise KeyError(f"no record for scenario hash {missing[0]}")
        return [digests[h] for h in requested]

    def iter_records(self) -> Iterator[dict[str, Any]]:
        conn = self._connect(create=False)
        if conn is None:
            return
        # A dedicated cursor so long migrations stream without buffering the
        # whole table, and interleaved reads don't clobber the scan.
        cursor = conn.cursor()
        cursor.execute("SELECT hash, record FROM objects ORDER BY hash")
        for scenario_hash, text in cursor:
            yield decode_record(text, f"{self.uri}#objects/{scenario_hash}")

    def count_records(self) -> int:
        conn = self._connect(create=False)
        if conn is None:
            return 0
        return conn.execute("SELECT COUNT(*) FROM objects").fetchone()[0]

    # ------------------------------------------------------------------ #
    # Artifacts
    # ------------------------------------------------------------------ #

    def put_artifact(self, kind: str, key: str, blob: bytes) -> bool:
        conn = self._connect(create=True)
        conn.execute(
            "INSERT OR REPLACE INTO artifacts (kind, key, blob) VALUES (?, ?, ?)",
            (kind, key, blob),
        )
        return True

    def get_artifact(self, kind: str, key: str) -> bytes | None:
        conn = self._connect(create=False)
        if conn is None:
            return None
        try:
            row = conn.execute(
                "SELECT blob FROM artifacts WHERE kind = ? AND key = ?", (kind, key)
            ).fetchone()
        except sqlite3.OperationalError:
            return None  # pre-artifacts database never reopened for writing
        return bytes(row[0]) if row is not None else None

    def list_artifacts(self, kind: str) -> list[str]:
        conn = self._connect(create=False)
        if conn is None:
            return []
        try:
            rows = conn.execute(
                "SELECT key FROM artifacts WHERE kind = ? ORDER BY key", (kind,)
            ).fetchall()
        except sqlite3.OperationalError:
            return []
        return [row[0] for row in rows]

    # ------------------------------------------------------------------ #
    # Manifests
    # ------------------------------------------------------------------ #

    def _write_manifest_text(self, name: str, text: str) -> str:
        try:
            digest = json.loads(text)["manifest_digest"]
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise StoreError(f"not a campaign manifest for {name!r}: {error}") from None
        conn = self._connect(create=True)
        conn.execute(
            "INSERT OR REPLACE INTO manifests (name, digest, manifest) VALUES (?, ?, ?)",
            (name, digest, text),
        )
        return f"{self.uri}#campaigns/{name}"

    def read_manifest_text(self, name: str) -> str:
        conn = self._connect(create=False)
        row = (
            conn.execute(
                "SELECT manifest FROM manifests WHERE name = ?", (name,)
            ).fetchone()
            if conn is not None
            else None
        )
        if row is None:
            known = ", ".join(self.list_campaigns()) or "(none)"
            raise KeyError(
                f"no manifest for campaign {name!r} in {self.uri}; stored campaigns: {known}"
            ) from None
        return row[0]

    def list_campaigns(self) -> list[str]:
        conn = self._connect(create=False)
        if conn is None:
            return []
        rows = conn.execute("SELECT name FROM manifests ORDER BY name").fetchall()
        return [row[0] for row in rows]
