"""Registries mapping campaign axis values to executable objects.

A :class:`~repro.campaign.spec.CampaignSpec` names everything symbolically --
graph families, port-numbering strategies, algorithms, formula sets -- so that
specs survive a dict/JSON round-trip and scenarios stay content-addressable.
This module is where the symbols resolve:

* :data:`GRAPH_FAMILIES` -- family name -> seed-deterministic generator over
  scalar (JSON-able) parameters, including the derived ``double-cover`` and
  ``lift`` families that wrap a base family;
* :data:`PORT_STRATEGIES` -- how the port numbering of an instance is chosen;
* :data:`ALGORITHMS` / :data:`MODEL_DEFAULT_ALGORITHMS` -- the distributed
  algorithms a scenario may run, and the representative algorithm per problem
  class used when a spec sweeps over model classes;
* :data:`FORMULA_SETS` -- named modal-formula batches for logic scenarios;
* :data:`MACHINES` -- delta-parametric finite-state machines for
  correspondence scenarios (the Theorem 2 round trip of
  :func:`repro.modal.correspondence.machine_roundtrip_report`).

All registries are plain dicts: downstream PRs add scenarios by registering
new entries, not by writing new sweep scripts.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.algorithms.basic import (
    BroadcastMinimumDegreeAlgorithm,
    ConstantAlgorithm,
    DegreeAlgorithm,
    GatherDegreesAlgorithm,
    NeighbourDegreeSumAlgorithm,
    PortEchoAlgorithm,
)
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.parity import OddOddNeighboursAlgorithm, SomeOddNeighbourAlgorithm
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.ports import (
    PortNumbering,
    consistent_port_numbering,
    random_port_numbering,
)
from repro.logic.syntax import And, Diamond, Formula, GradedDiamond, Not, Prop
from repro.machines.algorithm import Algorithm
from repro.machines.library import reference_machine
from repro.machines.models import ProblemClass
from repro.machines.state_machine import FiniteStateMachine


def derived_seed(*parts: Any) -> int:
    """A stable 63-bit integer seed derived from the given parts.

    Never uses :func:`hash` (string hashing is randomised per process, which
    would break cross-process determinism of sharded campaign runs).
    """
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# --------------------------------------------------------------------------- #
# Graph families
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class GraphFamily:
    """One named graph family of the campaign registry.

    ``build`` receives the family parameters as keyword arguments; when
    ``seeded`` is true the scenario's seed is additionally passed as ``seed``
    (unless the spec pinned an explicit ``seed`` parameter).
    """

    name: str
    build: Callable[..., Graph]
    params: tuple[str, ...]
    seeded: bool = False
    description: str = ""
    #: Derived families whose randomness comes only from the base family
    #: (e.g. double-cover) inherit their effective seededness from it.
    seeded_from_base: bool = False


def _build_derived(
    constructor: Callable[..., Graph], params: Mapping[str, Any], **extra: Any
) -> Graph:
    """Build a derived family: resolve the ``base`` family, then lift it."""
    params = dict(params)
    base_family = params.pop("base")
    base_params = {
        key[len("base_"):]: value for key, value in params.items() if key.startswith("base_")
    }
    base = build_graph(base_family, base_params, seed=extra.pop("base_seed", None))
    return constructor(base, **extra)


def _double_cover_family(base: str = "cycle", seed: int | None = None, **params: Any) -> Graph:
    return _build_derived(
        lambda graph: generators.double_cover_graph(graph),
        {"base": base, **params},
        base_seed=seed,
    )


def _lift_family(base: str = "cycle", k: int = 2, seed: int | None = None, **params: Any) -> Graph:
    return _build_derived(
        lambda graph, **kw: generators.random_lift(graph, k, seed=seed),
        {"base": base, **params},
        base_seed=seed,
    )


#: Hooks invoked whenever a registry mutates (the campaign executor
#: registers its per-worker materialized-object memo here, so replacing a
#: registration invalidates the memo instead of silently serving the old
#: object).
_INVALIDATION_HOOKS: list[Callable[[], None]] = []


def on_registry_change(hook: Callable[[], None]) -> Callable[[], None]:
    """Register a hook to run after any registry entry is added or replaced."""
    _INVALIDATION_HOOKS.append(hook)
    return hook


class Registry(dict):
    """A plain dict that notifies the invalidation hooks on every mutation."""

    @staticmethod
    def _notifying(method_name: str):
        method = getattr(dict, method_name)

        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            result = method(self, *args, **kwargs)
            for hook in _INVALIDATION_HOOKS:
                hook()
            return result

        wrapper.__name__ = method_name
        return wrapper

    __setitem__ = _notifying.__func__("__setitem__")
    __delitem__ = _notifying.__func__("__delitem__")
    __ior__ = _notifying.__func__("__ior__")
    update = _notifying.__func__("update")
    pop = _notifying.__func__("pop")
    popitem = _notifying.__func__("popitem")
    clear = _notifying.__func__("clear")
    setdefault = _notifying.__func__("setdefault")


GRAPH_FAMILIES: dict[str, GraphFamily] = Registry()


def register_graph_family(family: GraphFamily) -> GraphFamily:
    """Register (or replace) a graph family under its name."""
    GRAPH_FAMILIES[family.name] = family
    return family


for _family in (
    GraphFamily("path", generators.path_graph, ("n",), description="path on n nodes"),
    GraphFamily("cycle", generators.cycle_graph, ("n",), description="cycle on n nodes"),
    GraphFamily("star", generators.star_graph, ("leaves",), description="star K_{1,leaves}"),
    GraphFamily("complete", generators.complete_graph, ("n",), description="complete graph K_n"),
    GraphFamily(
        "complete-bipartite",
        generators.complete_bipartite_graph,
        ("m", "n"),
        description="complete bipartite K_{m,n}",
    ),
    GraphFamily("grid", generators.grid_graph, ("rows", "cols"), description="rows x cols grid"),
    GraphFamily(
        "torus",
        generators.torus_graph,
        ("rows", "cols"),
        description="wraparound grid (4-regular)",
    ),
    GraphFamily(
        "hypercube", generators.hypercube_graph, ("dimension",), description="d-cube"
    ),
    GraphFamily(
        "circulant",
        lambda n, jumps=(1,): generators.circulant_graph(n, tuple(jumps)),
        ("n", "jumps"),
        description="circulant C_n(jumps)",
    ),
    GraphFamily(
        "figure9", lambda: generators.figure9_graph(), (), description="Figure 9 matchless graph"
    ),
    GraphFamily(
        "random-regular",
        generators.random_regular_graph,
        ("degree", "n"),
        seeded=True,
        description="uniform random regular graph",
    ),
    GraphFamily(
        "random",
        generators.random_graph,
        ("n", "probability"),
        seeded=True,
        description="Erdos-Renyi G(n, p)",
    ),
    GraphFamily(
        "random-bounded-degree",
        generators.random_bounded_degree_graph,
        ("n", "max_degree"),
        seeded=True,
        description="random member of F(max_degree)",
    ),
    GraphFamily(
        "random-tree",
        generators.random_tree,
        ("n",),
        seeded=True,
        description="uniform random labelled tree",
    ),
    GraphFamily(
        "double-cover",
        _double_cover_family,
        ("base",),
        seeded=True,
        description="bipartite double cover of a base family (base_* params)",
        seeded_from_base=True,
    ),
    GraphFamily(
        "lift",
        _lift_family,
        ("base", "k"),
        seeded=True,
        description="random k-lift of a base family (base_* params)",
    ),
):
    register_graph_family(_family)


def family_seeded(family: str, params: Mapping[str, Any]) -> bool:
    """Whether a scenario's result can depend on the seed via its graph.

    Unknown families are treated as seeded (conservative: the seed axis is
    kept).  The double cover of a deterministic base is itself deterministic,
    so ``seeded_from_base`` families resolve through their ``base`` parameter.
    """
    # A pinned {'seed': ...} param freezes the generator (build_graph then
    # ignores the scenario seed), making the family effectively deterministic.
    if isinstance(params, Mapping) and "seed" in params:
        return False
    entry = GRAPH_FAMILIES.get(family)
    if entry is None:
        return True
    if entry.seeded_from_base:
        base = params.get("base", "cycle") if isinstance(params, Mapping) else "cycle"
        base_params = {
            key[len("base_"):]: value
            for key, value in params.items()
            if isinstance(key, str) and key.startswith("base_")
        }
        return family_seeded(base, base_params)
    return entry.seeded


def build_graph(family: str, params: Mapping[str, Any], seed: int | None = None) -> Graph:
    """Build one graph instance of a registered family.

    ``params`` may contain list values only where the family expects them
    (e.g. circulant ``jumps``); sweeping over parameter ranges happens during
    spec expansion, before this call.  For seeded families the scenario seed
    is injected unless ``params`` pins an explicit ``seed``.
    """
    try:
        entry = GRAPH_FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(GRAPH_FAMILIES))
        raise KeyError(f"unknown graph family {family!r}; known families: {known}") from None
    kwargs = dict(params)
    if entry.seeded and "seed" not in kwargs:
        kwargs["seed"] = seed
    return entry.build(**kwargs)


# --------------------------------------------------------------------------- #
# Port-numbering strategies
# --------------------------------------------------------------------------- #


def _consistent_strategy(graph: Graph, seed: int) -> PortNumbering:
    return consistent_port_numbering(graph)


def _random_strategy(graph: Graph, seed: int) -> PortNumbering:
    return random_port_numbering(graph, random.Random(derived_seed("ports", seed)))


def _random_consistent_strategy(graph: Graph, seed: int) -> PortNumbering:
    return random_port_numbering(
        graph, random.Random(derived_seed("ports", seed)), consistent=True
    )


PORT_STRATEGIES: dict[str, Callable[[Graph, int], PortNumbering]] = {
    "consistent": _consistent_strategy,
    "random": _random_strategy,
    "random-consistent": _random_consistent_strategy,
}

#: Whether a strategy's numbering depends on the scenario seed.  Spec
#: expansion collapses the seed axis where neither the graph family nor the
#: strategy consumes it (identical computations must share one content hash).
PORT_STRATEGY_SEEDED: dict[str, bool] = {
    "consistent": False,
    "random": True,
    "random-consistent": True,
}


def build_numbering(strategy: str, graph: Graph, seed: int) -> PortNumbering:
    """The port numbering a scenario runs under (deterministic in ``seed``)."""
    try:
        build = PORT_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(PORT_STRATEGIES))
        raise KeyError(f"unknown port strategy {strategy!r}; known: {known}") from None
    return build(graph, seed)


# --------------------------------------------------------------------------- #
# Algorithms
# --------------------------------------------------------------------------- #

ALGORITHMS: dict[str, Callable[[], Algorithm]] = Registry()
ALGORITHMS.update({
    "constant": ConstantAlgorithm,
    "degree": DegreeAlgorithm,
    "some-odd-neighbour": SomeOddNeighbourAlgorithm,
    "odd-odd-neighbours": OddOddNeighboursAlgorithm,
    "neighbour-degree-sum": NeighbourDegreeSumAlgorithm,
    "broadcast-min-degree": BroadcastMinimumDegreeAlgorithm,
    "gather-degrees": GatherDegreesAlgorithm,
    "leaf-election": LeafElectionAlgorithm,
    "port-echo": PortEchoAlgorithm,
})

#: The representative algorithm a model-class sweep runs for each class.
#: These are the same workloads the E2/E3 experiments exercise per class.
MODEL_DEFAULT_ALGORITHMS: dict[str, str] = {
    "SB": "some-odd-neighbour",
    "MB": "neighbour-degree-sum",
    "VB": "broadcast-min-degree",
    "SV": "leaf-election",
    "MV": "gather-degrees",
    "VV": "port-echo",
    "VVc": "port-echo",
}


def build_algorithm(name: str) -> Algorithm:
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory()


# --------------------------------------------------------------------------- #
# Formula sets
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FormulaSet:
    """A named batch of modal formulas built against a concrete encoding."""

    name: str
    build: Callable[[Iterable[Any]], list[Formula]]
    graded: bool
    description: str = ""


def _pick_index(indices: Iterable[Any]) -> Any:
    return sorted(indices, key=repr)[0]


def _ml_basic(indices: Iterable[Any]) -> list[Formula]:
    """Plain modal formulas over the degree propositions (Fact 1a workload)."""
    index = _pick_index(indices)
    formulas: list[Formula] = []
    for prop in (Prop("deg1"), Prop("deg2"), Prop("deg3")):
        formulas.append(Diamond(prop, index=index))
        formulas.append(Diamond(And(prop, Diamond(Not(prop), index=index)), index=index))
    return formulas


def _gml_basic(indices: Iterable[Any]) -> list[Formula]:
    """Graded modal formulas over the degree propositions (Fact 1b workload)."""
    index = _pick_index(indices)
    formulas = _ml_basic(indices)
    for prop in (Prop("deg1"), Prop("deg2"), Prop("deg3")):
        formulas.append(GradedDiamond(prop, grade=2, index=index))
        formulas.append(GradedDiamond(Diamond(prop, index=index), grade=2, index=index))
    return formulas


FORMULA_SETS: dict[str, FormulaSet] = Registry()
FORMULA_SETS.update({
    "ml-basic": FormulaSet(
        "ml-basic", _ml_basic, graded=False, description="diamonds over degree propositions"
    ),
    "gml-basic": FormulaSet(
        "gml-basic",
        _gml_basic,
        graded=True,
        description="ml-basic plus graded diamonds (grade 2)",
    ),
})


def formula_set(name: str) -> FormulaSet:
    try:
        return FORMULA_SETS[name]
    except KeyError:
        known = ", ".join(sorted(FORMULA_SETS))
        raise KeyError(f"unknown formula set {name!r}; known: {known}") from None


# --------------------------------------------------------------------------- #
# Correspondence machines
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class MachineWorkload:
    """A named machine family for correspondence scenarios.

    ``build`` receives the scenario's problem class and the ``Delta`` of the
    graph instance (machines are delta-parametric: the Table 4/5 formula is
    built for the same ``Delta`` the machine runs under).  ``running_time``
    is the halting bound ``T`` -- and the modal depth of the emitted formula.
    """

    name: str
    build: Callable[[ProblemClass, int], FiniteStateMachine]
    running_time: int
    description: str = ""


MACHINES: dict[str, MachineWorkload] = Registry()
MACHINES.update({
    "parity": MachineWorkload(
        "parity",
        lambda problem_class, delta: reference_machine(problem_class, delta, rounds=1),
        running_time=1,
        description="one-round class-view predicate machine (library reference)",
    ),
    "parity-deep": MachineWorkload(
        "parity-deep",
        lambda problem_class, delta: reference_machine(problem_class, delta, rounds=2),
        running_time=2,
        description="two-round XOR-of-predicates machine (modal depth 2)",
    ),
})

#: The machine a correspondence spec sweeps when its ``machines`` axis is
#: empty (works for every model class).
DEFAULT_MACHINE = "parity"


def machine_workload(name: str) -> MachineWorkload:
    try:
        return MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise KeyError(f"unknown machine {name!r}; known: {known}") from None
