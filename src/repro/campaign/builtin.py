"""Built-in campaign definitions.

These re-express the sweep-shaped experiments as declarative specs:

* ``e3-hierarchy`` -- the E3 hierarchy survey: the representative workload of
  every problem class, run over a varied graph corpus under adversarially
  varied port numberings.  The aggregation verdicts encode the survey's
  content: the workloads of the broadcast/multiset/set classes (SB, MB, VB,
  MV) compute numbering-invariant outputs, while the SV and VV
  representatives (leaf election, port echo) genuinely use port numbers --
  the information gap the hierarchy SB ⊊ MB = VB ⊊ SV = MV = VV is built on.
* ``e2-correspondence`` -- the Theorem 2 round-trip sweep: the library
  ``parity`` machine of every arbitrary-numbering class is compiled to its
  Table 4/5 formula (a hash-consed DAG) and back to a compiled
  formula-algorithm, and the three fronts are cross-checked over non-trivial
  topologies -- circulant, torus and random-lift families alongside the
  simple ones -- under consistent and random numberings.  (VVc restricts to
  consistent numberings, which a single spec's strategy axis cannot express
  per class; it is exercised by experiment E4 and the test suite instead.)
* ``e12-invariance`` -- the E12 bisimulation-invariance sweep: ML and GML
  formula batches model-checked over Kripke encodings of random
  bounded-degree graphs, verifying Fact 1 on every instance.
* ``smoke`` / ``smoke-logic`` -- tiny campaigns for CI, one per scenario
  kind, fast enough for a run -> resume -> report pipeline on every PR.

Each entry is a zero-argument factory so callers always get a fresh spec
they may mutate (e.g. the benchmarks scale the axes down).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.campaign.spec import CampaignSpec, GraphGrid


def e3_hierarchy_spec() -> CampaignSpec:
    return CampaignSpec(
        name="e3-hierarchy",
        kind="execution",
        description="E3 hierarchy survey: per-class workloads vs adversarial numberings",
        graphs=[
            GraphGrid.of("star", {"leaves": [3, 4]}),
            GraphGrid.of("path", {"n": [4, 5]}),
            GraphGrid.of("cycle", {"n": [4, 5, 6]}),
            GraphGrid.of("torus", {"rows": 3, "cols": 3}),
            GraphGrid.of("circulant", {"n": 8, "jumps": [[1, 2]]}),
            GraphGrid.of("random-tree", {"n": 7}),
        ],
        port_strategies=["consistent", "random", "random-consistent"],
        model_classes=["SB", "MB", "VB", "MV", "SV", "VV"],
        engines=["sweep"],
        seeds=[0, 1],
        expectations={
            "some-odd-neighbour": True,
            "neighbour-degree-sum": True,
            "broadcast-min-degree": True,
            "gather-degrees": True,
            "leaf-election": False,
            "port-echo": False,
        },
    )


def e2_correspondence_spec() -> CampaignSpec:
    return CampaignSpec(
        name="e2-correspondence",
        kind="correspondence",
        description="Theorem 2 round trips: machine == formula == recompiled algorithm",
        graphs=[
            GraphGrid.of("cycle", {"n": [4, 5]}),
            GraphGrid.of("star", {"leaves": 3}),
            GraphGrid.of("circulant", {"n": 8, "jumps": [[1, 2]]}),
            GraphGrid.of("torus", {"rows": 3, "cols": 3}),
            GraphGrid.of("lift", {"base": "cycle", "base_n": 5, "k": 2}),
        ],
        port_strategies=["consistent", "random"],
        model_classes=["SB", "MB", "VB", "MV", "SV", "VV"],
        machines=["parity"],
        engines=["sweep"],
        seeds=[0, 1],
    )


def e12_invariance_spec() -> CampaignSpec:
    return CampaignSpec(
        name="e12-invariance",
        kind="logic",
        description="E12 sweep: Fact 1 bisimulation invariance over random graphs",
        graphs=[
            GraphGrid.of("random-bounded-degree", {"n": 10, "max_degree": 3}),
            GraphGrid.of("random-tree", {"n": 9}),
        ],
        port_strategies=["consistent", "random"],
        model_classes=["SB", "MV"],
        formula_sets=["ml-basic", "gml-basic"],
        seeds=[0, 1, 2],
    )


def smoke_spec() -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        kind="execution",
        description="tiny CI campaign: run -> resume -> report on every PR",
        graphs=[
            GraphGrid.of("cycle", {"n": [4, 5]}),
            GraphGrid.of("star", {"leaves": 3}),
        ],
        port_strategies=["consistent", "random"],
        model_classes=["SB", "MB"],
        engines=["sweep"],
        seeds=[0],
        expectations={"some-odd-neighbour": True, "neighbour-degree-sum": True},
    )


def smoke_logic_spec() -> CampaignSpec:
    return CampaignSpec(
        name="smoke-logic",
        kind="logic",
        description="tiny CI campaign: the logic scenario path on every PR",
        graphs=[GraphGrid.of("random-bounded-degree", {"n": 6, "max_degree": 3})],
        port_strategies=["consistent"],
        model_classes=["SB"],
        formula_sets=["ml-basic", "gml-basic"],
        seeds=[0, 1],
    )


BUILTIN_CAMPAIGNS: dict[str, Callable[[], CampaignSpec]] = {
    "e2-correspondence": e2_correspondence_spec,
    "e3-hierarchy": e3_hierarchy_spec,
    "e12-invariance": e12_invariance_spec,
    "smoke": smoke_spec,
    "smoke-logic": smoke_logic_spec,
}


def builtin_spec(name: str) -> CampaignSpec:
    try:
        factory = BUILTIN_CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_CAMPAIGNS))
        raise KeyError(f"unknown built-in campaign {name!r}; known: {known}") from None
    return factory()
