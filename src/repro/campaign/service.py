"""The campaign work-queue service: many clients, one deduplicating store.

:class:`CampaignService` turns the one-shot :func:`~repro.campaign.executor.
run_campaign` loop into a long-lived service:

* **asynchronous submission** -- ``submit`` expands and enqueues a campaign
  spec and returns a job id immediately; execution, store reads and rollup
  folding happen on the service's worker threads (and, with ``workers > 1``,
  a ``multiprocessing`` pool for scenario evaluation);
* **cross-campaign dedup** -- pending scenarios are deduplicated against the
  store *and* against every other in-flight campaign: a scenario already
  being computed for job A is never re-executed for job B, it is accounted as
  an ``inflight_hit`` on B and its record is folded into both jobs when the
  shard lands;
* **streaming rollups** -- each job owns a
  :class:`~repro.campaign.aggregate.CampaignRollup` that folds per-shard
  results as they complete, so a finished job's report is ready without
  reloading a single record;
* **progress and cancellation** -- ``status`` snapshots per-job counters at
  any time; ``cancel`` stops a job's un-dispatched work (scenarios another
  live job still needs keep running, and records from already-dispatched
  shards are still persisted -- the store never loses work).

Manifest digests are the contract: a job that runs to completion writes the
same byte-identical manifest a serial ``run_campaign`` of the same spec
writes, whatever mixture of store hits, in-flight hits and fresh execution
answered its scenarios.

:class:`CampaignServiceServer` / :class:`ServiceClient` expose the service
over a line-delimited-JSON TCP socket for the ``python -m repro.campaign
serve|submit|status|cancel`` CLI verbs.
"""

from __future__ import annotations

import itertools
import json
import logging
import queue
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.campaign.aggregate import CampaignRollup
from repro.campaign.backends.base import StoreError
from repro.campaign.builtin import BUILTIN_CAMPAIGNS, builtin_spec
from repro.campaign.executor import (
    PlanCache,
    _campaign_init_worker,
    _run_shard,
    evaluate_scenarios,
)
from repro.campaign.spec import CampaignSpec, Scenario
from repro.campaign.store import ResultStore
from repro.obs import worker_config as _obs_worker_config
from repro.obs import metrics as _metrics
from repro.obs.export import prometheus_text

_log = logging.getLogger("repro.campaign.service")

#: Scenarios per dispatched work unit.  Small enough for responsive progress
#: and cancellation, large enough that the batched engines still see
#: sizeable run_iter groups.
SERVICE_SHARD = 32

#: Job lifecycle states; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
_TERMINAL = ("done", "failed", "cancelled")

_STOP = object()


class ServiceError(RuntimeError):
    """A service-level failure (unknown job, closed service, protocol error)."""


@dataclass
class Job:
    """One submitted campaign and its live accounting."""

    job_id: str
    spec: CampaignSpec
    resume: bool
    status: str = "queued"
    total: int = 0
    store_hits: int = 0
    inflight_hits: int = 0
    executed: int = 0
    error: str | None = None
    manifest_digest: str | None = None
    manifest_location: str | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    # Internal bookkeeping (not part of the status payload):
    scenarios: list[Scenario] = field(default_factory=list, repr=False)
    by_hash: dict[str, Scenario] = field(default_factory=dict, repr=False)
    waiting: set[str] = field(default_factory=set, repr=False)
    rollup: CampaignRollup | None = field(default=None, repr=False)

    @property
    def done_scenarios(self) -> int:
        return self.total - len(self.waiting)

    def to_dict(self) -> dict[str, Any]:
        return {
            "job": self.job_id,
            "campaign": self.spec.name,
            "kind": self.spec.kind,
            "status": self.status,
            "total": self.total,
            "done": self.done_scenarios,
            "store_hits": self.store_hits,
            "inflight_hits": self.inflight_hits,
            "executed": self.executed,
            "error": self.error,
            "manifest_digest": self.manifest_digest,
            "manifest_location": self.manifest_location,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }


class CampaignService:
    """A long-lived work queue executing campaign specs against one store."""

    def __init__(
        self,
        store: ResultStore | str,
        workers: int | None = None,
        shard_size: int = SERVICE_SHARD,
        use_plan_cache: bool = True,
    ) -> None:
        self.store = ResultStore(store)
        self.workers = workers or 0
        self.shard_size = max(1, shard_size)
        # One plan cache for the service lifetime: stored plans warm the
        # first job, every job's discoveries warm the next (folded between
        # shards, re-published to the pool, persisted at shutdown).
        self._plan_cache = PlanCache(self.store, enabled=use_plan_cache)
        self._lock = threading.RLock()
        self._turnstile = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._ids = itertools.count(1)
        #: hash -> job id whose shard will compute the record (the owner).
        self._inflight: dict[str, str] = {}
        #: hash -> job ids the landed record must fold into (owner + waiters).
        self._waiters: dict[str, list[str]] = {}
        self._tasks: queue.Queue = queue.Queue()
        self._completions: queue.Queue = queue.Queue()
        self._pool = None
        if self.workers > 1:
            import multiprocessing

            self._pool = multiprocessing.Pool(
                self.workers,
                # Workers start with no plan ref: jobs arrive after the pool
                # exists, so plans travel as per-task refs in _dispatch_loop.
                initializer=_campaign_init_worker,
                initargs=(_obs_worker_config(), None),
            )
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="campaign-dispatch", daemon=True
        )
        self._folder = threading.Thread(
            target=self._completion_loop, name="campaign-fold", daemon=True
        )
        self._dispatcher.start()
        self._folder.start()

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #

    def submit(self, spec: CampaignSpec, resume: bool = True) -> str:
        """Expand and enqueue a campaign; returns its job id immediately.

        ``resume=False`` forces re-evaluation and overwrites stored records;
        such a job also opts out of store/in-flight dedup (fresh records are
        the point), while its results still land in the shared store.
        """
        scenarios = spec.expand()  # raises ValueError on a bad spec
        with self._lock:
            if self._closed:
                raise ServiceError("service is shut down")
            job = Job(
                job_id=f"job-{next(self._ids)}",
                spec=spec,
                resume=resume,
                scenarios=scenarios,
                rollup=CampaignRollup(spec),
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)

        # Classify outside the lock where possible: has_many on a big store
        # must not stall status requests.  Only the in-flight bookkeeping
        # below needs the lock.
        hashes: list[str] = []
        for scenario in scenarios:
            scenario_hash = scenario.content_hash()
            if scenario_hash not in job.by_hash:
                job.by_hash[scenario_hash] = scenario
                hashes.append(scenario_hash)
        present = self.store.has_many(hashes) if resume else set()

        hit_hashes: list[str] = []
        to_run: list[Scenario] = []
        with self._lock:
            job.total = len(hashes)
            job.waiting = set(hashes)
            for scenario_hash in hashes:
                if scenario_hash in present:
                    hit_hashes.append(scenario_hash)
                elif resume and self._inflight.get(scenario_hash):
                    self._waiters[scenario_hash].append(job.job_id)
                    job.inflight_hits += 1
                else:
                    self._inflight[scenario_hash] = job.job_id
                    self._waiters.setdefault(scenario_hash, []).append(job.job_id)
                    to_run.append(job.by_hash[scenario_hash])
            job.store_hits = len(hit_hashes)
            job.status = "running"
            if _metrics.enabled():
                _metrics.counter("service.jobs.submitted").inc()
                _metrics.counter("service.scenarios.submitted").inc(job.total)
                _metrics.counter("service.scenarios.store_hits").inc(job.store_hits)
                _metrics.counter("service.scenarios.inflight_hits").inc(job.inflight_hits)
            if job.total == 0:
                self._finalize_locked(job)
        _log.info(
            "submit %s campaign=%s total=%d store_hits=%d inflight_hits=%d",
            job.job_id,
            spec.name,
            job.total,
            job.store_hits,
            job.inflight_hits,
        )

        if hit_hashes:
            self._completions.put(("hits", job.job_id, hit_hashes))
        # Warm the plan cache for any (algorithm, engine) group this job
        # introduces before its shards dispatch (cheap seen-set check after
        # the first job names the group).
        self._plan_cache.prepare(to_run)
        for start in range(0, len(to_run), self.shard_size):
            self._tasks.put((job.job_id, to_run[start : start + self.shard_size]))
        return job.job_id

    def cancel(self, job_id: str) -> bool:
        """Stop a job's remaining work; returns ``False`` if already terminal.

        Scenarios another live job is waiting on keep running; everything
        this job alone wanted is dropped at dispatch time.  Records from
        shards already handed to the pool still land in the store.
        """
        with self._lock:
            job = self._job(job_id)
            if job.status in _TERMINAL:
                return False
            job.status = "cancelled"
            job.finished_at = time.time()
            if _metrics.enabled():
                _metrics.counter("service.jobs.cancelled").inc()
                _metrics.counter("service.scenarios.unanswered").inc(len(job.waiting))
            for scenario_hash in job.waiting:
                waiters = self._waiters.get(scenario_hash)
                if waiters and job_id in waiters:
                    waiters.remove(job_id)
            job.waiting.clear()
            self._turnstile.notify_all()
            _log.info("cancel %s campaign=%s", job_id, job.spec.name)
            return True

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        """A snapshot: one job's counters, or the whole service.

        The service-wide payload carries a live metrics snapshot
        (``"metrics"``), so a running service is introspectable over the
        same verb that reports its jobs.
        """
        with self._lock:
            if job_id is not None:
                return self._job(job_id).to_dict()
            payload = {
                "store": self.store.uri,
                "backend": self.store.scheme,
                "workers": self.workers,
                "records": None,  # filled outside the lock (store access)
                "jobs": [self._jobs[jid].to_dict() for jid in self._order],
            }
        payload["metrics"] = self.metrics_snapshot()
        return payload

    def metrics_snapshot(self) -> dict[str, Any]:
        """The process-wide metrics registry snapshot (live, never cached)."""
        return _metrics.snapshot()

    def wait(self, job_id: str | None = None, timeout: float | None = None) -> bool:
        """Block until the job (or every job) reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if job_id is None:
                    pending = [
                        j for j in self._jobs.values() if j.status not in _TERMINAL
                    ]
                else:
                    job = self._job(job_id)
                    pending = [] if job.status in _TERMINAL else [job]
                if not pending:
                    return True
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._turnstile.wait(remaining)

    def result(self, job_id: str):
        """The finished job's :class:`ExperimentResult` (streamed rollups)."""
        with self._lock:
            job = self._job(job_id)
            if job.status != "done":
                raise ServiceError(
                    f"job {job_id} is {job.status}; results exist only for done jobs"
                )
            return job.rollup.result()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and tear the worker threads down.

        ``wait=True`` drains in-flight jobs first; ``wait=False`` abandons
        queued work (already-persisted shards survive in the store).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if wait:
            self.wait()
        self._tasks.put(_STOP)
        self._dispatcher.join(timeout=30)
        self._completions.put(_STOP)
        self._folder.join(timeout=30)
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
        # Persist everything the service's jobs taught the plans, then drop
        # the shared-memory publications (the store copy outlives us).
        self._plan_cache.persist()
        self._plan_cache.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(wait=not any(exc_info))

    # ------------------------------------------------------------------ #
    # Worker threads
    # ------------------------------------------------------------------ #

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            known = ", ".join(self._order) or "(none)"
            raise ServiceError(f"unknown job {job_id!r}; jobs: {known}") from None

    def _live_jobs(self, scenario_hash: str) -> list[str]:
        return [
            jid
            for jid in self._waiters.get(scenario_hash, [])
            if self._jobs[jid].status not in _TERMINAL
        ]

    def _dispatch_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is _STOP:
                return
            job_id, shard = task
            with self._lock:
                job = self._jobs[job_id]
                keep = []
                for scenario in shard:
                    scenario_hash = scenario.content_hash()
                    if self._live_jobs(scenario_hash):
                        keep.append(scenario)
                    else:
                        # Nobody wants it any more: release ownership so a
                        # later submit re-owns it instead of waiting forever.
                        self._inflight.pop(scenario_hash, None)
                        self._waiters.pop(scenario_hash, None)
            if not keep:
                continue
            if self._pool is not None:
                # The current plan publication rides along per task: a worker
                # whose generation is stale re-loads from shared memory, so
                # plans folded from earlier shards warm later ones.
                self._pool.apply_async(
                    _run_shard,
                    (keep, self._plan_cache.ref()),
                    callback=lambda result, jid=job_id: self._completions.put(
                        ("records", jid, result)
                    ),
                    error_callback=lambda error, jid=job_id, batch=keep: (
                        self._completions.put(("error", jid, batch, error))
                    ),
                )
            else:
                try:
                    # In-process evaluation updates the live registry
                    # directly; only pool workers ship deltas back.  The
                    # plan-cache wrappers are seeded as the live evaluation
                    # targets, so discoveries accumulate in place.
                    self._plan_cache.activate_local()
                    records = evaluate_scenarios(keep)
                except Exception as error:  # noqa: BLE001 - job-level failure
                    self._completions.put(("error", job_id, keep, error))
                else:
                    self._completions.put(("records", job_id, (records, None, None)))

    def _completion_loop(self) -> None:
        while True:
            item = self._completions.get()
            if item is _STOP:
                return
            kind = item[0]
            try:
                if kind == "hits":
                    self._fold_store_hits(item[1], item[2])
                elif kind == "records":
                    self._fold_shard(item[1], item[2])
                else:
                    self._fail_shard(item[1], item[2], item[3])
            except Exception as error:  # noqa: BLE001 - keep the loop alive
                with self._lock:
                    job = self._jobs.get(item[1])
                    if job is not None and job.status not in _TERMINAL:
                        self._fail_locked(job, f"{type(error).__name__}: {error}")

    def _fold_store_hits(self, job_id: str, hashes: list[str]) -> None:
        try:
            records = list(self.store.get_many(hashes))
        except (KeyError, StoreError):
            # A record vanished (or is corrupt) between has_many and the
            # read: demote the casualties to fresh execution, keep the rest.
            records, requeue = [], []
            for scenario_hash in hashes:
                try:
                    records.append(self.store.get(scenario_hash))
                except (KeyError, StoreError):
                    requeue.append(scenario_hash)
            with self._lock:
                job = self._jobs[job_id]
                rerun = []
                for scenario_hash in requeue:
                    # Mirror the demotion in the service counters: negative
                    # increments keep the registry tracking the same
                    # reclassification the per-job fields record.
                    job.store_hits -= 1
                    if _metrics.enabled():
                        _metrics.counter("service.scenarios.store_hits").inc(-1)
                    if self._inflight.get(scenario_hash):
                        self._waiters[scenario_hash].append(job_id)
                        job.inflight_hits += 1
                        if _metrics.enabled():
                            _metrics.counter("service.scenarios.inflight_hits").inc()
                    else:
                        self._inflight[scenario_hash] = job_id
                        self._waiters.setdefault(scenario_hash, []).append(job_id)
                        rerun.append(job.by_hash[scenario_hash])
            for start in range(0, len(rerun), self.shard_size):
                self._tasks.put((job_id, rerun[start : start + self.shard_size]))
        with self._lock:
            job = self._jobs[job_id]
            for record in records:
                self._fold_locked(record, [job_id], owner=None)
            if not job.waiting and job.status == "running":
                self._finalize_locked(job)

    def _fold_shard(
        self,
        job_id: str,
        shard_result: tuple[
            list[dict[str, Any]], dict[str, Any] | None, list[tuple[str, Any]] | None
        ],
    ) -> None:
        records, metrics_delta, plan_deltas = shard_result
        _metrics.merge_snapshot(metrics_delta)
        self._plan_cache.fold(plan_deltas)
        job = self._jobs[job_id]
        self.store.put_many(records, overwrite=not job.resume)
        with self._lock:
            touched = set()
            for record in records:
                scenario_hash = record["hash"]
                owner = self._inflight.pop(scenario_hash, None)
                targets = self._waiters.pop(scenario_hash, [job_id])
                touched.update(self._fold_locked(record, targets, owner=owner))
            for jid in touched:
                job = self._jobs[jid]
                if not job.waiting and job.status == "running":
                    self._finalize_locked(job)

    def _fold_locked(
        self, record: dict[str, Any], targets: list[str], owner: str | None
    ) -> set[str]:
        scenario_hash = record["hash"]
        touched = set()
        for jid in targets:
            job = self._jobs[jid]
            if job.status in _TERMINAL or scenario_hash not in job.waiting:
                continue
            job.waiting.discard(scenario_hash)
            job.rollup.fold(record)
            if jid == owner:
                job.executed += 1
                if _metrics.enabled():
                    _metrics.counter("service.scenarios.executed").inc()
            touched.add(jid)
        return touched

    def _fail_shard(self, job_id: str, shard: list[Scenario], error: Exception) -> None:
        message = f"shard failed: {type(error).__name__}: {error}"
        with self._lock:
            casualties = {job_id}
            for scenario in shard:
                scenario_hash = scenario.content_hash()
                casualties.update(self._waiters.pop(scenario_hash, []))
                self._inflight.pop(scenario_hash, None)
            for jid in casualties:
                job = self._jobs[jid]
                if job.status not in _TERMINAL:
                    self._fail_locked(job, message)

    def _fail_locked(self, job: Job, message: str) -> None:
        job.status = "failed"
        job.error = message
        job.finished_at = time.time()
        if _metrics.enabled():
            _metrics.counter("service.jobs.failed").inc()
            _metrics.counter("service.scenarios.unanswered").inc(len(job.waiting))
        job.waiting.clear()
        self._turnstile.notify_all()
        _log.warning("fail %s campaign=%s: %s", job.job_id, job.spec.name, message)

    def _finalize_locked(self, job: Job) -> None:
        """Every scenario answered: write the manifest and mark the job done.

        The manifest is identical to a one-shot ``run_campaign`` of the same
        spec -- entries in expansion order, digests from the store -- so the
        service path is digest-compatible with the serial and sharded paths.
        """
        try:
            location, digest = self.store.write_manifest(job.spec, job.scenarios)
            self.store.save_index()
        except (KeyError, StoreError, OSError) as error:
            self._fail_locked(job, f"manifest write failed: {error}")
            return
        job.manifest_location = str(location)
        job.manifest_digest = digest
        job.status = "done"
        job.finished_at = time.time()
        if _metrics.enabled():
            _metrics.counter("service.jobs.done").inc()
        self._turnstile.notify_all()
        _log.info(
            "done %s campaign=%s manifest=%s", job.job_id, job.spec.name, digest[:12]
        )


# --------------------------------------------------------------------------- #
# The socket protocol (line-delimited JSON over TCP)
# --------------------------------------------------------------------------- #


def handle_request(service: CampaignService, request: dict[str, Any]) -> dict[str, Any]:
    """Execute one protocol request against the service.

    Commands: ``ping``, ``submit`` (spec dict or builtin name), ``status``,
    ``metrics``, ``cancel``, ``report``, ``shutdown``.  Every response
    carries ``ok``; failures carry ``error`` instead of raising across the
    wire.
    """
    try:
        command = request.get("cmd")
        if command == "ping":
            return {"ok": True, "pong": True}
        if command == "submit":
            spec_payload = request.get("spec")
            if isinstance(spec_payload, str):
                if spec_payload not in BUILTIN_CAMPAIGNS:
                    known = ", ".join(sorted(BUILTIN_CAMPAIGNS))
                    raise ServiceError(
                        f"unknown builtin campaign {spec_payload!r}; known: {known}"
                    )
                spec = builtin_spec(spec_payload)
            else:
                spec = CampaignSpec.from_dict(spec_payload)
            job_id = service.submit(spec, resume=request.get("resume", True))
            return {"ok": True, "job": job_id, "campaign": spec.name}
        if command == "status":
            payload = service.status(request.get("job"))
            if "jobs" in payload:
                payload["records"] = service.store.count_records()
            return {"ok": True, **payload}
        if command == "metrics":
            snap = service.metrics_snapshot()
            return {"ok": True, "metrics": snap, "prometheus": prometheus_text(snap)}
        if command == "cancel":
            cancelled = service.cancel(request["job"])
            return {"ok": True, "cancelled": cancelled, **service.status(request["job"])}
        if command == "report":
            result = service.result(request["job"])
            return {"ok": True, "report": result.to_dict()}
        if command == "shutdown":
            return {"ok": True, "stopping": True}
        raise ServiceError(f"unknown command {command!r}")
    except (ServiceError, KeyError, TypeError, ValueError) as error:
        detail = error.args[0] if error.args else str(error)
        return {"ok": False, "error": str(detail)}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for line in self.rfile:
            if not line.strip():
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                response: dict[str, Any] = {"ok": False, "error": f"bad request: {error}"}
                request = {}
            else:
                response = handle_request(self.server.service, request)
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()
            if request.get("cmd") == "shutdown" and response.get("ok"):
                self.server.initiate_shutdown()
                return


class CampaignServiceServer(socketserver.ThreadingTCPServer):
    """Serve a :class:`CampaignService` over line-delimited JSON on TCP."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, service: CampaignService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.socket.getsockname()[:2]
        return host, port

    def initiate_shutdown(self) -> None:
        # shutdown() blocks until serve_forever exits, so it must run off
        # the handler thread that called us.
        threading.Thread(target=self.shutdown, daemon=True).start()


class ServiceClient:
    """A blocking client for the service socket protocol."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("service closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"))
        return response

    def ping(self) -> bool:
        return self.request({"cmd": "ping"})["pong"]

    def submit(self, spec: CampaignSpec | dict[str, Any] | str, resume: bool = True) -> str:
        if isinstance(spec, CampaignSpec):
            spec = spec.to_dict()
        return self.request({"cmd": "submit", "spec": spec, "resume": resume})["job"]

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"cmd": "status"}
        if job_id is not None:
            payload["job"] = job_id
        return self.request(payload)

    def metrics(self) -> dict[str, Any]:
        """The service's live metrics: ``{"metrics": snapshot, "prometheus": text}``."""
        return self.request({"cmd": "metrics"})

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request({"cmd": "cancel", "job": job_id})

    def report(self, job_id: str) -> dict[str, Any]:
        return self.request({"cmd": "report", "job": job_id})["report"]

    def shutdown_server(self) -> None:
        self.request({"cmd": "shutdown"})

    def wait(self, job_id: str, timeout: float = 600.0, poll: float = 0.05) -> dict[str, Any]:
        """Poll until the job is terminal; returns its final status payload."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] in _TERMINAL:
                return status
            if time.monotonic() > deadline:
                raise ServiceError(f"timed out waiting for {job_id}")
            time.sleep(poll)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
