"""Declarative campaign specifications and their expansion into scenarios.

A :class:`CampaignSpec` is a grid of axes -- graph families with parameter
ranges, port-numbering strategies, model classes or algorithms, formula sets,
engines, seeds.  It round-trips losslessly through ``to_dict``/``from_dict``
(and therefore JSON files), and :meth:`CampaignSpec.expand` unfolds it into a
deterministic, order-stable list of :class:`Scenario` units.

A :class:`Scenario` is the atom of campaign work: one fully-resolved
coordinate tuple.  Its :meth:`~Scenario.content_hash` is a SHA-256 over the
canonical JSON of its coordinates (everything that determines the result, and
nothing else -- not the campaign name, not the store path), which is what
makes the result store content-addressed: two campaigns that contain the same
scenario share one record.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.campaign import registry
from repro.engines.registry import engine_names

#: Scenario kinds: run a distributed algorithm, model-check an encoding, or
#: round-trip a finite-state machine through the Theorem 2 pipeline.
KINDS = ("execution", "logic", "correspondence")


def canonical_json(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace drift, ASCII-stable."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _freeze(value: Any) -> Any:
    """Recursively turn lists into tuples so axis values are hashable."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze`: tuples back to JSON-able lists."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class GraphGrid:
    """One graph-family axis entry: a family name plus parameter ranges.

    Every parameter value is a *list of sweep values*; scalars are promoted to
    one-element sweeps on construction.  A parameter whose single value is
    itself a list (e.g. circulant ``jumps``) must therefore be written nested:
    ``{"jumps": [[1, 2]]}`` sweeps one value, ``[[1], [1, 2]]`` sweeps two.
    """

    family: str
    params: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    @classmethod
    def of(cls, family: str, params: dict[str, Any] | None = None) -> "GraphGrid":
        normalized: list[tuple[str, tuple[Any, ...]]] = []
        for key in sorted(params or {}):
            value = (params or {})[key]
            sweep = value if isinstance(value, list) else [value]
            normalized.append((key, tuple(_freeze(item) for item in sweep)))
        return cls(family=family, params=tuple(normalized))

    def to_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "params": {key: [_thaw(item) for item in sweep] for key, sweep in self.params},
        }

    def points(self) -> list[tuple[tuple[str, Any], ...]]:
        """The concrete parameter assignments of this grid, in sweep order."""
        keys = [key for key, _ in self.params]
        sweeps = [sweep for _, sweep in self.params]
        return [tuple(zip(keys, combo)) for combo in itertools.product(*sweeps)]


@dataclass(frozen=True)
class Scenario:
    """One fully-resolved unit of campaign work.

    All fields are primitives (or tuples of primitives), so scenarios are
    hashable, picklable across multiprocessing workers, and canonically
    JSON-able.  The graph itself is *not* stored -- it is regenerated from
    ``(family, graph_params, seed)`` wherever the scenario runs, which keeps
    shard payloads tiny and the content hash independent of object identity.
    """

    kind: str
    family: str
    graph_params: tuple[tuple[str, Any], ...]
    port_strategy: str
    engine: str
    seed: int
    model_class: str | None = None
    algorithm: str | None = None
    formula_set: str | None = None
    machine: str | None = None
    max_rounds: int = 10_000

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "kind": self.kind,
            "family": self.family,
            "graph_params": {key: _thaw(value) for key, value in self.graph_params},
            "port_strategy": self.port_strategy,
            "engine": self.engine,
            "seed": self.seed,
            "model_class": self.model_class,
            "algorithm": self.algorithm,
            "formula_set": self.formula_set,
            "max_rounds": self.max_rounds,
        }
        # Only correspondence scenarios carry a machine; omitting the key
        # otherwise keeps the content hashes of every pre-existing
        # execution/logic record byte-stable across stores.
        if self.machine is not None:
            payload["machine"] = self.machine
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Scenario":
        return cls(
            kind=payload["kind"],
            family=payload["family"],
            graph_params=tuple(
                (key, _freeze(value)) for key, value in sorted(payload["graph_params"].items())
            ),
            port_strategy=payload["port_strategy"],
            engine=payload["engine"],
            seed=payload["seed"],
            model_class=payload.get("model_class"),
            algorithm=payload.get("algorithm"),
            formula_set=payload.get("formula_set"),
            machine=payload.get("machine"),
            max_rounds=payload.get("max_rounds", 10_000),
        )

    def graph_point(self) -> tuple:
        """Identity of the graph instance this scenario runs on.

        The seed participates only when the family actually consumes it: for
        a deterministic family every seed builds the same graph, and callers
        that bucket by graph point (the invariance rollups, the executor's
        graph cache) must see those scenarios as one instance -- otherwise
        numbering variation across seeds would never be compared.
        """
        seeded = registry.family_seeded(self.family, dict(self.graph_params))
        return (self.family, self.graph_params, self.seed if seeded else None)

    def content_hash(self) -> str:
        """The store address of this scenario's result (cached: scenarios are
        frozen, and the warm-resume path hashes every scenario repeatedly)."""
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            cached = content_digest(self.to_dict())
            object.__setattr__(self, "_content_hash", cached)
        return cached

    def describe(self) -> str:
        params = ",".join(f"{key}={value}" for key, value in self.graph_params)
        workload = self.algorithm or self.formula_set or self.machine or "?"
        return (
            f"{self.kind}:{self.family}({params})/{self.port_strategy}"
            f"/{self.model_class or '-'}/{workload}/seed={self.seed}/{self.engine}"
        )


@dataclass
class CampaignSpec:
    """A declarative scenario sweep.

    Axes multiply: every graph point x port strategy x workload x engine x
    seed becomes one :class:`Scenario`.  For ``kind="execution"`` the workload
    axis is ``algorithms`` if given, otherwise the registry's representative
    algorithm of each entry of ``model_classes``; for ``kind="logic"`` it is
    ``model_classes`` (choosing the Kripke variant via Theorem 2) x
    ``formula_sets``.

    For ``kind="correspondence"`` the workload axis is ``machines`` (library
    machines round-tripped through the Theorem 2 pipeline) x
    ``model_classes``.

    ``expectations`` maps a workload name (algorithm, formula set or machine)
    to the expected verdict of the aggregation rollups; campaigns without
    expectations report observations with ``matches=True``.
    """

    name: str
    kind: str
    graphs: list[GraphGrid]
    port_strategies: list[str] = field(default_factory=lambda: ["consistent"])
    model_classes: list[str] = field(default_factory=list)
    algorithms: list[str] = field(default_factory=list)
    formula_sets: list[str] = field(default_factory=list)
    machines: list[str] = field(default_factory=list)
    engines: list[str] = field(default_factory=lambda: ["compiled"])
    seeds: list[int] = field(default_factory=lambda: [0])
    max_rounds: int = 10_000
    description: str = ""
    expectations: dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown campaign kind {self.kind!r}; expected one of {KINDS}")
        # Reject axes the kind would silently ignore -- a spec that names an
        # axis expects it to sweep.
        if self.kind == "execution" and self.formula_sets:
            raise ValueError("'formula_sets' only applies to kind='logic' campaigns")
        if self.kind == "logic" and self.algorithms:
            raise ValueError("'algorithms' only applies to kind='execution' campaigns")
        if self.kind == "correspondence" and (self.algorithms or self.formula_sets):
            raise ValueError(
                "a correspondence campaign sweeps 'machines' x 'model_classes'; "
                "'algorithms' and 'formula_sets' do not apply"
            )
        if self.kind != "correspondence" and self.machines:
            raise ValueError("'machines' only applies to kind='correspondence' campaigns")

    # ------------------------------------------------------------------ #
    # Dict / JSON round-trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "graphs": [grid.to_dict() for grid in self.graphs],
            "port_strategies": list(self.port_strategies),
            "model_classes": list(self.model_classes),
            "algorithms": list(self.algorithms),
            "formula_sets": list(self.formula_sets),
            "machines": list(self.machines),
            "engines": list(self.engines),
            "seeds": list(self.seeds),
            "max_rounds": self.max_rounds,
            "description": self.description,
            "expectations": dict(self.expectations),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignSpec":
        def axis(key: str, default: list) -> list:
            # Only a *missing* (or null) axis falls back to the default; an
            # explicitly empty list is preserved, keeping the round-trip
            # lossless (an empty axis legitimately expands to 0 scenarios).
            value = payload.get(key)
            return default if value is None else list(value)

        return cls(
            name=payload["name"],
            kind=payload["kind"],
            graphs=[
                GraphGrid.of(entry["family"], entry.get("params") or {})
                for entry in payload["graphs"]
            ],
            port_strategies=axis("port_strategies", ["consistent"]),
            model_classes=axis("model_classes", []),
            algorithms=axis("algorithms", []),
            formula_sets=axis("formula_sets", []),
            machines=axis("machines", []),
            engines=axis("engines", ["compiled"]),
            seeds=axis("seeds", [0]),
            max_rounds=payload.get("max_rounds", 10_000),
            description=payload.get("description", ""),
            expectations=dict(payload.get("expectations") or {}),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Content digest of the spec itself (part of the manifest digest)."""
        return content_digest(self.to_dict())

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #

    def _validate_axes(self) -> None:
        """Fail fast on symbolic axis values no registry can resolve.

        Expansion-time validation turns a typo into one clean error instead
        of a raw KeyError mid-evaluation inside a worker, after compute has
        been spent.  Custom families/algorithms/formula sets must therefore
        be registered before the spec expands -- which is the documented
        extension flow anyway.
        """
        def check(axis: str, values: list[str], known: Iterable[str]) -> None:
            known = sorted(known)
            for value in values:
                if value not in known:
                    raise ValueError(
                        f"unknown {axis} {value!r} in campaign {self.name!r}; "
                        f"known: {', '.join(known)}"
                    )

        check("graph family", [grid.family for grid in self.graphs], registry.GRAPH_FAMILIES)
        for grid in self.graphs:
            entry = registry.GRAPH_FAMILIES[grid.family]
            # Only seeded generators accept a pinned 'seed' parameter.
            allowed = set(entry.params) | ({"seed"} if entry.seeded else set())
            for key, _ in grid.params:
                if key in allowed or ("base" in entry.params and key.startswith("base_")):
                    continue
                raise ValueError(
                    f"unknown parameter {key!r} for graph family {grid.family!r} "
                    f"in campaign {self.name!r}; expected: {', '.join(sorted(allowed))}"
                )
        check("port strategy", self.port_strategies, registry.PORT_STRATEGIES)
        # The engine axis is validated against the shared registry: logic
        # scenarios accept the model-checking engines, execution scenarios
        # the sweep-capable ones.  Availability (e.g. numpy for "vector")
        # is probed at execution time, not here: a spec is a portable
        # document and must expand identically on every machine.
        if self.kind == "logic":
            check("engine", self.engines, engine_names(requires={"logic"}))
        else:
            check("engine", self.engines, engine_names(requires={"sweep"}))
        check("model class", self.model_classes, registry.MODEL_DEFAULT_ALGORITHMS)
        check("algorithm", self.algorithms, registry.ALGORITHMS)
        check("formula set", self.formula_sets, registry.FORMULA_SETS)
        check("machine", self.machines, registry.MACHINES)

    def _workloads(self) -> list[tuple[str | None, str | None, str | None, str | None]]:
        """The workload axis: ``(model_class, algorithm, formula_set, machine)``."""
        if self.kind == "execution":
            if self.algorithms:
                return [(None, name, None, None) for name in self.algorithms]
            if not self.model_classes:
                raise ValueError(
                    "an execution campaign needs 'algorithms' or 'model_classes'"
                )
            return [
                (cls_name, registry.MODEL_DEFAULT_ALGORITHMS[cls_name], None, None)
                for cls_name in self.model_classes
            ]
        if self.kind == "correspondence":
            if not self.model_classes:
                raise ValueError("a correspondence campaign needs 'model_classes'")
            machines = self.machines or [registry.DEFAULT_MACHINE]
            return [
                (cls_name, None, None, machine)
                for cls_name in self.model_classes
                for machine in machines
            ]
        if not self.formula_sets:
            raise ValueError("a logic campaign needs at least one formula set")
        classes = self.model_classes or ["SB"]
        return [
            (cls_name, None, fset, None)
            for cls_name in classes
            for fset in self.formula_sets
        ]

    def expand(self) -> list[Scenario]:
        """The deterministic scenario list of this campaign.

        Axis order is fixed (graphs, then graph points, then port strategies,
        workloads, engines, seeds), so the same spec always expands to the
        same list in the same order -- the property the manifest digest and
        the resume path rely on.

        The seed axis only multiplies where a seed can actually reach the
        result -- a seeded graph family or a randomized port strategy.  For a
        deterministic family under the canonical consistent numbering every
        seed would compute byte-identical records under distinct content
        hashes, defeating the store's dedup, so those combinations collapse
        to the first seed of the axis.
        """
        self._validate_axes()
        scenarios: list[Scenario] = []
        for grid in self.graphs:
            for point in grid.points():
                # Per point, not per grid: a derived family's base (and with
                # it the effective seededness) can vary across the sweep.
                family_seeded = registry.family_seeded(grid.family, dict(point))
                for strategy in self.port_strategies:
                    strategy_seeded = registry.PORT_STRATEGY_SEEDED.get(strategy, True)
                    if family_seeded or strategy_seeded:
                        seeds = self.seeds
                    else:
                        # Canonical seed, not self.seeds[0]: identical
                        # computations must hash identically across campaigns
                        # with different seed axes.
                        seeds = [0] if self.seeds else []
                    for model_class, algorithm, fset, machine in self._workloads():
                        for engine in self.engines:
                            for seed in seeds:
                                scenarios.append(
                                    Scenario(
                                        kind=self.kind,
                                        family=grid.family,
                                        graph_params=point,
                                        port_strategy=strategy,
                                        engine=engine,
                                        seed=seed,
                                        model_class=model_class,
                                        algorithm=algorithm,
                                        formula_set=fset,
                                        machine=machine,
                                        max_rounds=self.max_rounds,
                                    )
                                )
        return scenarios
