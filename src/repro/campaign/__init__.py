"""Campaign subsystem: declarative scenario sweeps over the compiled engines.

A campaign turns "imagine a scenario" into a sharded, cached, resumable run:

* :class:`~repro.campaign.spec.CampaignSpec` declares a grid of axes (graph
  families with parameter ranges, port-numbering strategies, model classes or
  algorithms, formula sets, engines, seeds) and expands deterministically
  into content-hashed :class:`~repro.campaign.spec.Scenario` units;
* :func:`~repro.campaign.executor.run_campaign` shards scenarios across
  multiprocessing workers, routes them through the compiled batch APIs
  (:func:`repro.execution.engine.run_iter`,
  :func:`repro.logic.engine.check_many`), and persists records in a
  content-addressed :class:`~repro.campaign.store.ResultStore`, so re-invoked
  campaigns resume from the store and sharding never changes the manifest
  digest;
* :mod:`~repro.campaign.aggregate` rolls records up per axis into the same
  :class:`~repro.experiments.report.ExperimentResult` tables the experiment
  harness prints;
* ``python -m repro.campaign run|resume|report|list`` is the CLI, with
  built-in campaigns (:mod:`~repro.campaign.builtin`) re-expressing the E3
  hierarchy survey and the E12 invariance sweep as specs.
"""

from repro.campaign.aggregate import campaign_result, load_records, report_campaign
from repro.campaign.builtin import BUILTIN_CAMPAIGNS, builtin_spec
from repro.campaign.executor import CampaignRun, evaluate_scenarios, run_campaign
from repro.campaign.registry import (
    ALGORITHMS,
    FORMULA_SETS,
    GRAPH_FAMILIES,
    MACHINES,
    MODEL_DEFAULT_ALGORITHMS,
    PORT_STRATEGIES,
    GraphFamily,
    MachineWorkload,
    build_graph,
    machine_workload,
    register_graph_family,
)
from repro.campaign.spec import CampaignSpec, GraphGrid, Scenario
from repro.campaign.store import ResultStore, record_digest

__all__ = [
    "ALGORITHMS",
    "BUILTIN_CAMPAIGNS",
    "CampaignRun",
    "CampaignSpec",
    "FORMULA_SETS",
    "GRAPH_FAMILIES",
    "GraphFamily",
    "GraphGrid",
    "MACHINES",
    "MachineWorkload",
    "MODEL_DEFAULT_ALGORITHMS",
    "PORT_STRATEGIES",
    "ResultStore",
    "Scenario",
    "builtin_spec",
    "build_graph",
    "campaign_result",
    "evaluate_scenarios",
    "load_records",
    "machine_workload",
    "record_digest",
    "register_graph_family",
    "report_campaign",
    "run_campaign",
]
