"""Campaign subsystem: declarative scenario sweeps over the compiled engines.

A campaign turns "imagine a scenario" into a sharded, cached, resumable run:

* :class:`~repro.campaign.spec.CampaignSpec` declares a grid of axes (graph
  families with parameter ranges, port-numbering strategies, model classes or
  algorithms, formula sets, engines, seeds) and expands deterministically
  into content-hashed :class:`~repro.campaign.spec.Scenario` units;
* :func:`~repro.campaign.executor.run_campaign` shards scenarios across
  multiprocessing workers, routes them through the compiled batch APIs
  (:func:`repro.execution.engine.run_iter`,
  :func:`repro.logic.engine.check_many`), and persists records in a
  content-addressed :class:`~repro.campaign.store.ResultStore`, so re-invoked
  campaigns resume from the store and sharding never changes the manifest
  digest;
* :mod:`~repro.campaign.aggregate` streams records through per-axis rollup
  folds (:class:`~repro.campaign.aggregate.CampaignRollup`) into the same
  :class:`~repro.experiments.report.ExperimentResult` tables the experiment
  harness prints;
* storage is pluggable (:mod:`~repro.campaign.backends`): ``json:path``
  keeps the loose-object layout, ``sqlite:path`` is a single WAL-mode
  database safe for concurrent writers, and :func:`migrate_store` converts
  between them with digest verification;
* :class:`~repro.campaign.service.CampaignService` is the long-lived
  work-queue form of the executor -- asynchronous submission, cross-campaign
  in-flight dedup, streaming rollups, cancellation -- served over TCP by
  ``python -m repro.campaign serve|submit|status|cancel``;
* ``python -m repro.campaign run|resume|report|list|migrate`` is the
  one-shot CLI, with built-in campaigns (:mod:`~repro.campaign.builtin`)
  re-expressing the E3 hierarchy survey and the E12 invariance sweep as
  specs.
"""

from repro.campaign.aggregate import (
    CampaignRollup,
    campaign_result,
    load_records,
    report_campaign,
)
from repro.campaign.backends import (
    BACKENDS,
    JsonBackend,
    SqliteBackend,
    StoreBackend,
    StoreError,
    migrate_store,
    open_backend,
    parse_store_uri,
)
from repro.campaign.builtin import BUILTIN_CAMPAIGNS, builtin_spec
from repro.campaign.executor import CampaignRun, evaluate_scenarios, run_campaign
from repro.campaign.service import (
    CampaignService,
    CampaignServiceServer,
    ServiceClient,
    ServiceError,
)
from repro.campaign.registry import (
    ALGORITHMS,
    FORMULA_SETS,
    GRAPH_FAMILIES,
    MACHINES,
    MODEL_DEFAULT_ALGORITHMS,
    PORT_STRATEGIES,
    GraphFamily,
    MachineWorkload,
    build_graph,
    machine_workload,
    register_graph_family,
)
from repro.campaign.spec import CampaignSpec, GraphGrid, Scenario
from repro.campaign.store import ResultStore, record_digest

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "BUILTIN_CAMPAIGNS",
    "CampaignRollup",
    "CampaignRun",
    "CampaignService",
    "CampaignServiceServer",
    "CampaignSpec",
    "FORMULA_SETS",
    "GRAPH_FAMILIES",
    "GraphFamily",
    "GraphGrid",
    "JsonBackend",
    "MACHINES",
    "MachineWorkload",
    "MODEL_DEFAULT_ALGORITHMS",
    "PORT_STRATEGIES",
    "ResultStore",
    "Scenario",
    "ServiceClient",
    "ServiceError",
    "SqliteBackend",
    "StoreBackend",
    "StoreError",
    "builtin_spec",
    "build_graph",
    "campaign_result",
    "evaluate_scenarios",
    "load_records",
    "machine_workload",
    "migrate_store",
    "open_backend",
    "parse_store_uri",
    "record_digest",
    "register_graph_family",
    "report_campaign",
    "run_campaign",
]
