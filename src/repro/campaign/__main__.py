"""Command-line entry point for the campaign subsystem.

Usage::

    python -m repro.campaign list    [--store URI]
    python -m repro.campaign run     <name | spec.json> [--store URI] [--workers N] [--json]
                                     [--metrics] [--trace PATH] [--no-plan-cache]
    python -m repro.campaign resume  <name>             [--store URI] [--workers N] [--json]
                                     [--metrics] [--trace PATH] [--no-plan-cache]
    python -m repro.campaign report  <name>             [--store URI] [--json]
    python -m repro.campaign migrate <source-uri> <dest-uri> [--json]
    python -m repro.campaign serve   [--store URI] [--workers N] [--port P] [--port-file F]
                                     [--no-metrics] [--trace PATH] [--no-plan-cache]
    python -m repro.campaign submit  <name | spec.json> --port P [--wait] [--json]
    python -m repro.campaign status  [job] --port P [--json]
    python -m repro.campaign cancel  <job> --port P [--json]
    python -m repro.campaign metrics --port P [--json]

``--store`` accepts a store URI: a bare path (the json directory layout, as
ever), ``json:path``, or ``sqlite:path`` for the single-file WAL database
backend.  ``run`` accepts a built-in campaign name or a path to a JSON spec
file; it is resumable by construction (scenarios already in the store are
skipped).  ``resume`` re-invokes a campaign whose spec is recovered from the
stored manifest (or a built-in), so an interrupted run continues without the
original spec file.  ``report`` aggregates the stored records into the same
paper-vs-measured table the experiment harness prints; ``--json`` emits the
machine-readable form CI consumes.  ``migrate`` copies a store between
backends and verifies byte-identical manifests and matching digests before
reporting success.

``serve`` starts the long-lived work-queue service on a TCP socket (port 0
picks a free port; ``--port-file`` writes the bound address for scripts);
``submit``/``status``/``cancel`` are thin clients for it.  The service
deduplicates submissions against the store *and* against each other: a
scenario in flight for one campaign is never re-executed for another.

Telemetry (see :mod:`repro.obs`): ``--metrics`` on ``run``/``resume`` prints
a metrics table after the report (or embeds a ``metrics`` snapshot in the
``--json`` payload); ``--trace PATH`` writes a JSON-lines span trace that
``python -m repro.obs report PATH`` aggregates.  ``serve`` collects metrics
by default (``--no-metrics`` opts out); the ``metrics`` client verb fetches
the live snapshot as Prometheus text (or JSON with ``--json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.campaign.aggregate import campaign_result, load_records
from repro.campaign.backends import migrate_store
from repro.campaign.builtin import BUILTIN_CAMPAIGNS, builtin_spec
from repro.campaign.executor import run_campaign
from repro.campaign.service import (
    CampaignService,
    CampaignServiceServer,
    ServiceClient,
    ServiceError,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore, StoreError
from repro.experiments.report import format_report

DEFAULT_STORE = "campaign-store"
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7340


def _resolve_spec(target: str, store: ResultStore, prefer_manifest: bool) -> CampaignSpec:
    """A spec from a stored manifest, a built-in name, or a JSON file path.

    For ``resume`` the stored manifest wins over a built-in of the same name:
    the user may have run a customized spec under that name, and resuming
    must continue *that* campaign, not silently swap in the built-in grid.
    """
    if prefer_manifest:
        try:
            manifest = store.read_manifest(target)
        except KeyError:
            manifest = None  # no stored campaign of that name; fall through
        if manifest is not None:
            # A present-but-broken manifest is an error, never a silent
            # fall-through to a same-named built-in spec.
            try:
                return CampaignSpec.from_dict(manifest["spec"])
            except (KeyError, TypeError, ValueError) as error:
                raise SystemExit(
                    f"error: stored manifest for {target!r} is not a valid campaign: {error}"
                ) from None
    if target in BUILTIN_CAMPAIGNS:
        return builtin_spec(target)
    path = Path(target)
    if path.suffix == ".json" or path.is_file():
        try:
            return CampaignSpec.from_json(path.read_text())
        except OSError as error:
            raise SystemExit(f"error: cannot read spec file {target!r}: {error}") from None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise SystemExit(f"error: {target!r} is not a valid campaign spec: {error}") from None
    known = ", ".join(sorted(BUILTIN_CAMPAIGNS))
    raise SystemExit(
        f"error: unknown campaign {target!r}; built-ins: {known} (or pass a spec.json path)"
    )


def _print_report(
    store: ResultStore, name: str, as_json: bool, run_summary=None, metrics=None
) -> bool:
    spec, records = load_records(store, name)
    result = campaign_result(spec, records)
    if as_json:
        payload = result.to_dict()
        if run_summary is not None:
            payload["run"] = run_summary.to_dict()
        if metrics is not None:
            payload["metrics"] = metrics
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report([result]))
        if metrics is not None:
            print()
            print(obs.format_metrics_table(metrics))
    return result.all_match


def _client(args: argparse.Namespace) -> ServiceClient:
    host, port = args.host, args.port
    if args.port_file:
        try:
            host, port = Path(args.port_file).read_text().split(":", 1)
            port = int(port)
        except (OSError, ValueError) as error:
            raise SystemExit(f"error: cannot read port file {args.port_file!r}: {error}") from None
    try:
        return ServiceClient(host, port)
    except OSError as error:
        raise SystemExit(f"error: cannot reach service at {host}:{port}: {error}") from None


def _emit(payload: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    if "jobs" in payload:
        print(
            f"service store {payload['store']} ({payload['backend']} backend, "
            f"{payload['records']} records), {payload['workers'] or 1} worker(s)"
        )
        for job in payload["jobs"]:
            _emit(job, as_json=False)
        if not payload["jobs"]:
            print("  no jobs submitted")
        return
    line = (
        f"  {payload['job']:8} {payload['campaign']:18} {payload['status']:10} "
        f"{payload['done']}/{payload['total']} done, {payload['store_hits']} store hits, "
        f"{payload['inflight_hits']} in-flight hits, {payload['executed']} executed"
    )
    if payload.get("manifest_digest"):
        line += f", manifest {payload['manifest_digest'][:12]}"
    if payload.get("error"):
        line += f", error: {payload['error']}"
    print(line)


def _add_plan_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-plan-cache",
        action="store_true",
        help="do not load, share or persist kernel plans (cold tables every run)",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry counters and print them after the report",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSON-lines span trace (see python -m repro.obs report)",
    )


def _add_client_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default=DEFAULT_HOST, help="service host")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="service port")
    parser.add_argument(
        "--port-file", default=None, help="file holding host:port (written by serve)"
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Declarative scenario sweeps over the compiled engines.",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help="result store URI: a path, json:path, or sqlite:path",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="log verbosity on stderr",
    )
    parser.add_argument(
        "--log-json", action="store_true", help="emit log lines as JSON objects"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run (or resume) a campaign")
    run_parser.add_argument("campaign", help="built-in name or path to a spec JSON file")
    run_parser.add_argument("--workers", type=int, default=None, help="shard across N workers")
    run_parser.add_argument(
        "--no-resume", action="store_true", help="re-evaluate and replace stored records"
    )
    run_parser.add_argument("--json", action="store_true", help="machine-readable report")
    _add_plan_cache_arg(run_parser)
    _add_obs_args(run_parser)

    resume_parser = commands.add_parser(
        "resume", help="continue a campaign from its stored manifest"
    )
    resume_parser.add_argument("campaign", help="built-in name or stored campaign name")
    resume_parser.add_argument("--workers", type=int, default=None)
    resume_parser.add_argument("--json", action="store_true")
    _add_plan_cache_arg(resume_parser)
    _add_obs_args(resume_parser)

    report_parser = commands.add_parser("report", help="aggregate a stored campaign")
    report_parser.add_argument("campaign", help="stored campaign name")
    report_parser.add_argument("--json", action="store_true")

    commands.add_parser("list", help="list built-in and stored campaigns")

    migrate_parser = commands.add_parser(
        "migrate", help="copy a store to another backend and verify digests"
    )
    migrate_parser.add_argument("source", help="source store URI")
    migrate_parser.add_argument("destination", help="destination store URI")
    migrate_parser.add_argument("--json", action="store_true")

    serve_parser = commands.add_parser("serve", help="start the campaign work-queue service")
    serve_parser.add_argument("--workers", type=int, default=None)
    serve_parser.add_argument("--host", default=DEFAULT_HOST)
    serve_parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="TCP port (0 picks a free port)"
    )
    serve_parser.add_argument(
        "--port-file", default=None, help="write the bound host:port to this file"
    )
    serve_parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="do not collect telemetry counters (collected by default)",
    )
    serve_parser.add_argument(
        "--trace", default=None, metavar="PATH", help="write a JSON-lines span trace"
    )
    _add_plan_cache_arg(serve_parser)

    submit_parser = commands.add_parser("submit", help="submit a campaign to the service")
    submit_parser.add_argument("campaign", help="built-in name or path to a spec JSON file")
    submit_parser.add_argument(
        "--no-resume", action="store_true", help="re-evaluate and replace stored records"
    )
    submit_parser.add_argument(
        "--wait", action="store_true", help="block until the job finishes and print its report"
    )
    _add_client_args(submit_parser)

    status_parser = commands.add_parser("status", help="job (or service) status")
    status_parser.add_argument("job", nargs="?", default=None, help="job id (omit for all)")
    _add_client_args(status_parser)

    cancel_parser = commands.add_parser("cancel", help="cancel a submitted job")
    cancel_parser.add_argument("job", help="job id")
    _add_client_args(cancel_parser)

    metrics_parser = commands.add_parser(
        "metrics", help="fetch the service's live metrics snapshot"
    )
    _add_client_args(metrics_parser)

    args = parser.parse_args(argv)
    # run/resume progress lines belong to the text report on stdout; every
    # other verb (notably serve, whose stdout port line scripts parse) logs
    # to stderr.
    log_stream = sys.stdout if args.command in ("run", "resume") else None
    obs.configure_logging(args.log_level, json=args.log_json, stream=log_stream)
    log = obs.get_logger("repro.campaign.cli")

    if args.command == "migrate":
        try:
            report = migrate_store(args.source, args.destination)
        except (StoreError, ValueError, KeyError, OSError) as error:
            raise SystemExit(f"error: {error.args[0] if error.args else error}") from None
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(
                f"migrated {report['source']} -> {report['destination']}: "
                f"{report['records_copied']} records copied, "
                f"{report['records_already_present']} already present"
            )
            for entry in report["campaigns"]:
                print(f"  {entry['campaign']:16} manifest {entry['manifest_digest'][:12]} verified")
        return 0

    if args.command == "serve":
        # Metrics are on by default for the long-lived service: the whole
        # point of the `metrics` verb / status snapshot is live introspection.
        if not args.no_metrics:
            obs.enable()
        if args.trace:
            obs.configure_tracing(path=args.trace)
        service = CampaignService(
            args.store, workers=args.workers, use_plan_cache=not args.no_plan_cache
        )
        server = CampaignServiceServer(service, host=args.host, port=args.port)
        host, port = server.address
        if args.port_file:
            Path(args.port_file).write_text(f"{host}:{port}")
        # Scripts parse this stdout line; logging goes to stderr alongside it.
        print(f"campaign service on {host}:{port}, store {service.store.uri}", flush=True)
        log.info("serving on %s:%d, store %s", host, port, service.store.uri)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
            service.shutdown(wait=False)
            obs.stop_tracing()
        return 0

    if args.command in ("submit", "status", "cancel", "metrics"):
        with _client(args) as client:
            try:
                if args.command == "metrics":
                    payload = client.metrics()
                    if args.json:
                        print(json.dumps(payload["metrics"], indent=2, sort_keys=True))
                    else:
                        print(payload["prometheus"], end="")
                    return 0
                if args.command == "submit":
                    spec = _resolve_spec(
                        args.campaign, ResultStore(args.store), prefer_manifest=False
                    )
                    job_id = client.submit(spec, resume=not args.no_resume)
                    if not args.wait:
                        _emit(client.status(job_id), args.json)
                        return 0
                    status = client.wait(job_id)
                    _emit(status, args.json)
                    if status["status"] != "done":
                        return 1
                    report = client.report(job_id)
                    if args.json:
                        print(json.dumps(report, indent=2, sort_keys=True))
                    else:
                        rows = report["rows"]
                        matches = sum(1 for row in rows if row["matches"])
                        print(f"report: {matches}/{len(rows)} rows match")
                    return 0 if all(row["matches"] for row in report["rows"]) else 1
                if args.command == "status":
                    _emit(client.status(args.job), args.json)
                    return 0
                payload = client.cancel(args.job)
                _emit(payload, args.json)
                return 0 if payload.get("cancelled") else 1
            except ServiceError as error:
                raise SystemExit(f"error: {error.args[0] if error.args else error}") from None

    store = ResultStore(args.store)

    if args.command == "list":
        print("built-in campaigns:")
        for name in sorted(BUILTIN_CAMPAIGNS):
            spec = builtin_spec(name)
            print(f"  {name:16} {len(spec.expand()):5d} scenarios  {spec.description}")
        stored = store.list_campaigns()
        print(
            f"stored campaigns in {store.uri} ({store.scheme} backend, "
            f"{store.count_records()} records):"
            if stored
            else f"no stored campaigns in {store.uri} ({store.scheme} backend)"
        )
        for name in stored:
            manifest = store.read_manifest(name)
            hashes = [entry["hash"] for entry in manifest["scenarios"]]
            present = len(store.has_many(hashes))
            print(
                f"  {name:16} {present:5d}/{len(hashes)} records  "
                f"digest {manifest['manifest_digest'][:12]}"
            )
        return 0

    if args.command in ("run", "resume"):
        if args.metrics:
            obs.enable()
        if args.trace:
            obs.configure_tracing(path=args.trace)
        spec = _resolve_spec(args.campaign, store, prefer_manifest=args.command == "resume")
        try:
            summary = run_campaign(
                spec,
                store,
                workers=args.workers,
                resume=args.command == "resume" or not getattr(args, "no_resume", False),
                log=None if args.json else log.info,
                use_plan_cache=not args.no_plan_cache,
            )
        except (KeyError, ValueError) as error:
            # Invalid axis values (bad strategy, model class, family...)
            # surface as clean CLI errors, not tracebacks.
            raise SystemExit(f"error: {error.args[0] if error.args else error}") from None
        finally:
            # Close the sink so the trace file is complete before report time.
            obs.stop_tracing()
        metrics = obs.snapshot() if args.metrics else None
        return 0 if _print_report(
            store, spec.name, args.json, run_summary=summary, metrics=metrics
        ) else 1

    # report
    try:
        ok = _print_report(store, args.campaign, args.json)
    except (KeyError, StoreError) as error:
        raise SystemExit(f"error: {error.args[0]}") from None
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
