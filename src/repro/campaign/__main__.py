"""Command-line entry point for the campaign subsystem.

Usage::

    python -m repro.campaign list  [--store DIR]
    python -m repro.campaign run    <name | spec.json> [--store DIR] [--workers N] [--json]
    python -m repro.campaign resume <name>             [--store DIR] [--workers N] [--json]
    python -m repro.campaign report <name>             [--store DIR] [--json]

``run`` accepts a built-in campaign name or a path to a JSON spec file; it is
resumable by construction (scenarios already in the store are skipped).
``resume`` re-invokes a campaign whose spec is recovered from the stored
manifest (or a built-in), so an interrupted run continues without the
original spec file.  ``report`` aggregates the stored records into the same
paper-vs-measured table the experiment harness prints; ``--json`` emits the
machine-readable form CI consumes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.campaign.aggregate import campaign_result, load_records
from repro.campaign.builtin import BUILTIN_CAMPAIGNS, builtin_spec
from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.experiments.report import format_report

DEFAULT_STORE = "campaign-store"


def _resolve_spec(target: str, store: ResultStore, prefer_manifest: bool) -> CampaignSpec:
    """A spec from a stored manifest, a built-in name, or a JSON file path.

    For ``resume`` the stored manifest wins over a built-in of the same name:
    the user may have run a customized spec under that name, and resuming
    must continue *that* campaign, not silently swap in the built-in grid.
    """
    if prefer_manifest:
        try:
            manifest = store.read_manifest(target)
        except KeyError:
            manifest = None  # no stored campaign of that name; fall through
        if manifest is not None:
            # A present-but-broken manifest is an error, never a silent
            # fall-through to a same-named built-in spec.
            try:
                return CampaignSpec.from_dict(manifest["spec"])
            except (KeyError, TypeError, ValueError) as error:
                raise SystemExit(
                    f"error: stored manifest for {target!r} is not a valid campaign: {error}"
                ) from None
    if target in BUILTIN_CAMPAIGNS:
        return builtin_spec(target)
    path = Path(target)
    if path.suffix == ".json" or path.is_file():
        try:
            return CampaignSpec.from_json(path.read_text())
        except OSError as error:
            raise SystemExit(f"error: cannot read spec file {target!r}: {error}") from None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise SystemExit(f"error: {target!r} is not a valid campaign spec: {error}") from None
    known = ", ".join(sorted(BUILTIN_CAMPAIGNS))
    raise SystemExit(
        f"error: unknown campaign {target!r}; built-ins: {known} (or pass a spec.json path)"
    )


def _print_report(store: ResultStore, name: str, as_json: bool, run_summary=None) -> bool:
    spec, records = load_records(store, name)
    result = campaign_result(spec, records)
    if as_json:
        payload = result.to_dict()
        if run_summary is not None:
            payload["run"] = run_summary.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report([result]))
    return result.all_match


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Declarative scenario sweeps over the compiled engines.",
    )
    parser.add_argument("--store", default=DEFAULT_STORE, help="result store directory")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run (or resume) a campaign")
    run_parser.add_argument("campaign", help="built-in name or path to a spec JSON file")
    run_parser.add_argument("--workers", type=int, default=None, help="shard across N workers")
    run_parser.add_argument(
        "--no-resume", action="store_true", help="re-evaluate and replace stored records"
    )
    run_parser.add_argument("--json", action="store_true", help="machine-readable report")

    resume_parser = commands.add_parser(
        "resume", help="continue a campaign from its stored manifest"
    )
    resume_parser.add_argument("campaign", help="built-in name or stored campaign name")
    resume_parser.add_argument("--workers", type=int, default=None)
    resume_parser.add_argument("--json", action="store_true")

    report_parser = commands.add_parser("report", help="aggregate a stored campaign")
    report_parser.add_argument("campaign", help="stored campaign name")
    report_parser.add_argument("--json", action="store_true")

    commands.add_parser("list", help="list built-in and stored campaigns")

    args = parser.parse_args(argv)
    store = ResultStore(args.store)

    if args.command == "list":
        print("built-in campaigns:")
        for name in sorted(BUILTIN_CAMPAIGNS):
            spec = builtin_spec(name)
            print(f"  {name:16} {len(spec.expand()):5d} scenarios  {spec.description}")
        stored = store.list_campaigns()
        print(f"stored campaigns in {store.root}:" if stored else f"no stored campaigns in {store.root}")
        for name in stored:
            manifest = store.read_manifest(name)
            print(f"  {name:16} {len(manifest['scenarios']):5d} scenarios  digest {manifest['manifest_digest'][:12]}")
        return 0

    if args.command in ("run", "resume"):
        spec = _resolve_spec(args.campaign, store, prefer_manifest=args.command == "resume")
        try:
            summary = run_campaign(
                spec,
                store,
                workers=args.workers,
                resume=args.command == "resume" or not getattr(args, "no_resume", False),
                log=None if args.json else print,
            )
        except (KeyError, ValueError) as error:
            # Invalid axis values (bad strategy, model class, family...)
            # surface as clean CLI errors, not tracebacks.
            raise SystemExit(f"error: {error.args[0] if error.args else error}") from None
        return 0 if _print_report(store, spec.name, args.json, run_summary=summary) else 1

    # report
    try:
        ok = _print_report(store, args.campaign, args.json)
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}") from None
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
