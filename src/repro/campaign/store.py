"""The content-addressed, resumable result store.

Layout under the store root::

    objects/<hh>/<hash>.json    one JSON record per scenario content hash
    index.json                  hash -> record digest (fast resume/manifest path)
    campaigns/<name>.json       one manifest per campaign name

Records are written atomically (temp file + ``os.replace``) and are immutable
once present: ``put`` on an existing hash is a no-op, which is what makes
re-invoked campaigns resumable and concurrent writers safe.  The *record
digest* is a SHA-256 over the record's canonical JSON minus volatile fields
(wall-clock timings), so the manifest digest of a campaign depends only on
the spec and the deterministic result payloads -- never on shard order,
worker count, or how long anything took.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec, Scenario, canonical_json, content_digest

#: Record fields excluded from the record digest (timing noise, not results).
VOLATILE_FIELDS = ("elapsed_s",)


def record_digest(record: dict[str, Any]) -> str:
    """Digest of a record's deterministic content."""
    stable = {key: value for key, value in record.items() if key not in VOLATILE_FIELDS}
    return content_digest(stable)


class ResultStore:
    """A content-addressed on-disk store of scenario records and manifests."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.campaigns = self.root / "campaigns"
        self.index_path = self.root / "index.json"
        # No eager mkdir: read-only consumers (list/report) must not create
        # store directories as a side effect; _atomic_write mkdirs on demand.
        self._index: dict[str, str] | None = None

    # ------------------------------------------------------------------ #
    # Records
    # ------------------------------------------------------------------ #

    def _object_path(self, scenario_hash: str) -> Path:
        return self.objects / scenario_hash[:2] / f"{scenario_hash}.json"

    def has(self, scenario_hash: str) -> bool:
        # The object file is the source of truth, not the index: a stale
        # index entry whose record was pruned must not make resume skip the
        # scenario (it would leave the manifest pointing at missing records).
        return self._object_path(scenario_hash).exists()

    def put(self, record: dict[str, Any], overwrite: bool = False) -> bool:
        """Store a record under its scenario hash.

        Returns ``True`` when the record was written, ``False`` when the hash
        was already present and kept (the default: existing records win, so
        concurrent shards and resumed runs are idempotent).  ``overwrite``
        replaces an existing record -- the forced re-evaluation path
        (``resume=False``), where the freshly computed record is the point.
        The in-memory index is updated to describe the record actually
        served; callers flush it with :meth:`save_index` once per batch.
        """
        scenario_hash = record["hash"]
        path = self._object_path(scenario_hash)
        if path.exists() and not overwrite:
            # The index must describe the record actually served, never the
            # discarded newcomer; self-heal from disk if the entry is missing.
            self.record_digest_of(scenario_hash)
            return False
        self._atomic_write(path, json.dumps(record, indent=2, sort_keys=True))
        self.index[scenario_hash] = record_digest(record)
        return True

    def put_many(self, records: Iterable[dict[str, Any]], overwrite: bool = False) -> int:
        """Store a batch of records, flushing the index once at the end.

        This is the per-shard persistence path of the campaign executor.
        ``put`` never flushes, so the flush cadence is entirely the caller's:
        one ``save_index`` per batch keeps the index durable shard by shard
        (a run that dies between shards resumes with a warm index) without
        rewriting it per record or per chunk.  The object files land record
        by record regardless -- each one atomic, each one enough for a later
        resume on its own.  Returns the number of records actually written.
        """
        written = 0
        for record in records:
            if self.put(record, overwrite=overwrite):
                written += 1
        self.save_index()
        return written

    def get(self, scenario_hash: str) -> dict[str, Any]:
        path = self._object_path(scenario_hash)
        try:
            with open(path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise KeyError(f"no record for scenario hash {scenario_hash}") from None

    # ------------------------------------------------------------------ #
    # Index (hash -> record digest)
    # ------------------------------------------------------------------ #

    @property
    def index(self) -> dict[str, str]:
        if self._index is None:
            try:
                with open(self.index_path) as handle:
                    self._index = json.load(handle)
            except (FileNotFoundError, json.JSONDecodeError):
                self._index = {}
        return self._index

    def save_index(self) -> None:
        self._atomic_write(self.index_path, json.dumps(self.index, indent=0, sort_keys=True))

    def record_digest_of(self, scenario_hash: str) -> str:
        """The record digest for a stored scenario, via the index when warm.

        Self-healing: a hash present on disk but missing from the index (e.g.
        an interrupted earlier run) is re-read and re-indexed.
        """
        digest = self.index.get(scenario_hash)
        if digest is None:
            digest = record_digest(self.get(scenario_hash))
            self.index[scenario_hash] = digest
        return digest

    # ------------------------------------------------------------------ #
    # Manifests
    # ------------------------------------------------------------------ #

    def manifest_path(self, name: str) -> Path:
        return self.campaigns / f"{name}.json"

    def write_manifest(
        self, spec: CampaignSpec, scenarios: list[Scenario]
    ) -> tuple[Path, str]:
        """Write the campaign manifest and return ``(path, manifest digest)``.

        The manifest lists every scenario in expansion order with its content
        hash and record digest.  Its digest covers exactly the spec and that
        list, so any two runs of the same spec that produced the same records
        -- serial or sharded, cold or resumed -- emit byte-identical manifests.
        """
        entries = []
        for scenario in scenarios:
            scenario_hash = scenario.content_hash()
            entries.append(
                {"hash": scenario_hash, "record_digest": self.record_digest_of(scenario_hash)}
            )
        stable = {"spec": spec.to_dict(), "scenarios": entries}
        digest = content_digest(stable)
        manifest = {"manifest_digest": digest, **stable}
        path = self.manifest_path(spec.name)
        self._atomic_write(path, canonical_json(manifest))
        return path, digest

    def read_manifest(self, name: str) -> dict[str, Any]:
        path = self.manifest_path(name)
        try:
            with open(path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            known = ", ".join(self.list_campaigns()) or "(none)"
            raise KeyError(
                f"no manifest for campaign {name!r} in {self.root}; stored campaigns: {known}"
            ) from None

    def list_campaigns(self) -> list[str]:
        return sorted(path.stem for path in self.campaigns.glob("*.json"))

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _atomic_write(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=f".{path.name}.", delete=False
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except FileNotFoundError:
                pass
            raise
