"""``ResultStore``: the compatibility shim over the storage backends.

Historically this module *was* the store (one ``index.json`` plus loose JSON
objects).  That layout now lives in
:class:`~repro.campaign.backends.json_backend.JsonBackend`, one of the
pluggable backends under :mod:`repro.campaign.backends`; ``ResultStore``
remains the public front door and resolves whatever it is given -- a bare
path, a ``json:path`` / ``sqlite:path`` store URI, or an already-open
backend -- to a live backend instance::

    ResultStore("campaign-store")          # json directory layout (as ever)
    ResultStore("sqlite:campaigns.db")     # single WAL-mode database
    ResultStore("json:campaign-store")     # explicit json URI

For the json scheme the returned object *is* a ``ResultStore`` (a
``JsonBackend`` subclass), so existing code that constructs, subclasses or
monkeypatches ``ResultStore`` keeps working; other schemes return their
backend directly.  Either way the object satisfies the full
:class:`~repro.campaign.backends.base.StoreBackend` contract, and the
manifest digests it produces are byte-identical across backends.
"""

from __future__ import annotations

import os

from repro.campaign.backends import (
    StoreBackend,
    StoreError,
    open_backend,
    parse_store_uri,
    record_digest,
)
from repro.campaign.backends.base import VOLATILE_FIELDS
from repro.campaign.backends.json_backend import JsonBackend

__all__ = [
    "VOLATILE_FIELDS",
    "ResultStore",
    "StoreBackend",
    "StoreError",
    "record_digest",
]


class ResultStore(JsonBackend):
    """A content-addressed store of scenario records and manifests.

    Construction dispatches on the store URI: json locations build a
    ``ResultStore`` proper, any other scheme returns that backend instance.
    """

    def __new__(
        cls, root: str | os.PathLike[str] | StoreBackend | None = None
    ) -> "ResultStore":
        if root is None:
            # Unpickling path: pickle calls __new__ bare and restores the
            # instance dict itself (direct construction still requires root).
            return super().__new__(cls)
        if isinstance(root, StoreBackend):
            return root  # already open; pass through (idempotent construction)
        scheme, _ = parse_store_uri(root)
        if scheme != JsonBackend.scheme:
            return open_backend(root)  # type: ignore[return-value]
        return super().__new__(cls)

    def __init__(self, root: str | os.PathLike[str] | StoreBackend) -> None:
        # Only reached for json locations (__new__ returned other backends
        # directly, and Python skips __init__ for non-instances).  Guard the
        # pass-through case: re-initialising an open store must be a no-op.
        if isinstance(root, StoreBackend):
            return
        _, path = parse_store_uri(root)
        super().__init__(path)
