"""CLI: render trace-file aggregates and metric snapshots.

Usage::

    python -m repro.obs report TRACE.jsonl [--json]
    python -m repro.obs prom SNAPSHOT.json

``report`` aggregates a JSON-lines trace per span name (count, duration
stats, summed numeric attributes).  ``prom`` renders a registry snapshot
(as produced by ``repro.obs.snapshot()`` / the campaign ``metrics`` verb
with ``--json``) in Prometheus text format.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import (
    aggregate_spans,
    format_span_table,
    load_trace,
    prometheus_text,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="aggregate a JSON-lines trace file")
    report.add_argument("trace", help="path to a trace file written via --trace")
    report.add_argument("--json", action="store_true", help="emit aggregates as JSON")

    prom = sub.add_parser("prom", help="render a metrics snapshot as Prometheus text")
    prom.add_argument("snapshot", help="path to a JSON metrics snapshot")

    args = parser.parse_args(argv)

    if args.command == "report":
        events = load_trace(args.trace)
        aggregates = aggregate_spans(events)
        if args.json:
            json.dump({"events": len(events), "spans": aggregates}, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            print(f"{len(events)} events from {args.trace}")
            print(format_span_table(aggregates))
        return 0

    if args.command == "prom":
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            snap = json.load(handle)
        if "metrics" in snap and isinstance(snap["metrics"], dict):
            snap = snap["metrics"]
        sys.stdout.write(prometheus_text(snap))
        return 0

    return 1


if __name__ == "__main__":
    raise SystemExit(main())
