"""`repro.obs` — unified telemetry: metrics registry, span tracing, exporters.

Everything here is import-light (stdlib only) so instrumented hot paths can
import it unconditionally; when neither metrics nor tracing is enabled the
per-call cost is a single module-global boolean check.
"""

from __future__ import annotations

from typing import Any

from repro.obs.export import (
    aggregate_spans,
    format_metrics_table,
    format_span_table,
    json_dump,
    load_trace,
    prometheus_text,
)
from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    merge_snapshot,
    reset,
    set_enabled,
    snapshot,
    snapshot_delta,
)
from repro.obs.trace import (
    clear_ring,
    configure_tracing,
    current_span_id,
    flush,
    ring_events,
    span,
    stop_tracing,
    trace_path,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "REGISTRY",
    "MetricsRegistry",
    "aggregate_spans",
    "clear_ring",
    "configure_logging",
    "configure_tracing",
    "counter",
    "current_span_id",
    "disable",
    "enable",
    "enabled",
    "flush",
    "format_metrics_table",
    "format_span_table",
    "gauge",
    "get_logger",
    "histogram",
    "json_dump",
    "load_trace",
    "merge_snapshot",
    "prometheus_text",
    "reset",
    "ring_events",
    "set_enabled",
    "snapshot",
    "snapshot_delta",
    "span",
    "stop_tracing",
    "trace_path",
    "tracing_enabled",
    "worker_config",
    "init_worker",
]


def worker_config() -> dict[str, Any]:
    """Serializable telemetry state to hand to pool worker initializers."""

    return {
        "metrics": enabled(),
        "trace": tracing_enabled(),
        "trace_path": trace_path(),
    }


def init_worker(config: dict[str, Any] | None) -> None:
    """Apply :func:`worker_config` output inside a freshly started worker.

    Re-opens the trace sink so a forked worker does not share the parent's
    buffered file handle.
    """

    if not config:
        return
    set_enabled(bool(config.get("metrics")))
    if config.get("trace"):
        configure_tracing(path=config.get("trace_path"))
