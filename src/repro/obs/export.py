"""Exporters: Prometheus text format, JSON dumps, and trace aggregation."""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, TextIO

__all__ = [
    "prometheus_text",
    "json_dump",
    "load_trace",
    "aggregate_spans",
    "format_span_table",
    "format_metrics_table",
]


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: dict[str, Any]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""

    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, cell in zip(hist["buckets"], hist["counts"]):
            cumulative += cell
            lines.append(f'{prom}_bucket{{le="{_prom_value(float(bound))}"}} {cumulative}')
        cumulative += hist["counts"][-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + "\n"


def json_dump(snapshot: dict[str, Any], stream: TextIO | None = None, indent: int = 2) -> str:
    text = json.dumps(snapshot, indent=indent, sort_keys=True)
    if stream is not None:
        stream.write(text + "\n")
    return text


def load_trace(path: str) -> list[dict[str, Any]]:
    """Read a JSON-lines trace file, skipping any malformed lines."""

    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "name" in event:
                events.append(event)
    return events


def aggregate_spans(events: Iterable[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """Per-span-name aggregates: count, duration stats, summed numeric attrs.

    Boolean attributes count occurrences of ``True``; non-numeric attrs are
    ignored.  Keys come back sorted by span name.
    """

    agg: dict[str, dict[str, Any]] = {}
    for event in events:
        name = event.get("name", "?")
        entry = agg.setdefault(
            name,
            {"count": 0, "total_s": 0.0, "min_s": math.inf, "max_s": 0.0, "attrs": {}},
        )
        dur = float(event.get("dur_s", 0.0))
        entry["count"] += 1
        entry["total_s"] += dur
        entry["min_s"] = min(entry["min_s"], dur)
        entry["max_s"] = max(entry["max_s"], dur)
        for key, value in (event.get("attrs") or {}).items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                entry["attrs"][key] = entry["attrs"].get(key, 0) + value
    for entry in agg.values():
        entry["mean_s"] = entry["total_s"] / max(entry["count"], 1)
        if entry["min_s"] is math.inf:
            entry["min_s"] = 0.0
    return {name: agg[name] for name in sorted(agg)}


def format_span_table(aggregates: dict[str, dict[str, Any]]) -> str:
    header = f"{'span':<32} {'count':>7} {'total_s':>10} {'mean_s':>10} {'max_s':>10}"
    lines = [header, "-" * len(header)]
    for name, entry in aggregates.items():
        lines.append(
            f"{name:<32} {entry['count']:>7} {entry['total_s']:>10.4f}"
            f" {entry['mean_s']:>10.6f} {entry['max_s']:>10.6f}"
        )
        attrs = entry.get("attrs") or {}
        for key in sorted(attrs):
            value = attrs[key]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"    {key} = {rendered}")
    return "\n".join(lines)


def format_metrics_table(snapshot: dict[str, Any]) -> str:
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<40} {counters[name]:g}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<40} {gauges[name]:g}")
    hists = snapshot.get("histograms", {})
    if hists:
        lines.append("histograms:")
        for name in sorted(hists):
            hist = hists[name]
            count = max(hist["count"], 1)
            lines.append(
                f"  {name:<40} count={hist['count']} sum={hist['sum']:.6g}"
                f" mean={hist['sum'] / count:.6g}"
            )
    return "\n".join(lines)
