"""Structured logging with span correlation.

:func:`configure_logging` sets up one handler on the ``repro`` logger and
injects the current span id (when a trace span is active) into every
record, so log lines can be joined against trace events.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

from repro.obs import trace as _trace

__all__ = ["configure_logging", "get_logger", "SpanContextFilter", "JsonFormatter"]

_HANDLER_TAG = "_repro_obs_handler"


class SpanContextFilter(logging.Filter):
    """Attach ``record.span`` from the active trace span (``-`` when none)."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.span = _trace.current_span_id() or "-"
        return True


class JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
            "span": getattr(record, "span", "-"),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: int | str = "info",
    json: bool = False,  # noqa: A002 - mirrors the issue's API spec
    stream: TextIO | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger once; safe to call repeatedly."""

    if isinstance(level, str):
        level = getattr(logging, level.upper(), logging.INFO)
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    setattr(handler, _HANDLER_TAG, True)
    handler.addFilter(SpanContextFilter())
    if json:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)s %(name)s [%(span)s] %(message)s",
                datefmt="%H:%M:%S",
            )
        )
    logger.addHandler(handler)
    return logger


def get_logger(name: str = "repro") -> logging.Logger:
    return logging.getLogger(name)
