"""Process-wide metrics registry: counters, gauges, and histograms.

Design goals, in order:

1. Near-zero overhead when disabled.  Every mutator starts with a single
   module-global boolean check and returns immediately when telemetry is
   off, so instrumented hot paths pay one attribute load per call site.
2. Thread safety when enabled.  Each metric guards its state with its own
   lock; the registry lock only covers get-or-create.
3. Mergeable across processes.  Workers take a :func:`snapshot` before and
   after a shard, send back the :func:`snapshot_delta`, and the parent
   folds it in with :func:`merge_snapshot`.  Counters and histogram cells
   add; gauges take the incoming value (last writer wins).

Counters accept negative increments on purpose: the campaign service
re-classifies scenarios when an in-flight owner fails (a store hit can be
demoted back to an executed scenario), and the mirror counters must follow.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "enable",
    "disable",
    "enabled",
    "set_enabled",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge_snapshot",
    "snapshot_delta",
    "reset",
]

_ENABLED = False

DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0)


def enabled() -> bool:
    """Return whether metric mutations are currently recorded."""

    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def set_enabled(flag: bool) -> None:
    global _ENABLED
    _ENABLED = bool(flag)


class Counter:
    """Monotonic-by-convention additive metric (negative deltas allowed)."""

    kind = "counter"
    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> float:
        return self._value

    def _merge(self, value: float) -> None:
        with self._lock:
            self._value += value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """Point-in-time value.  Merge semantics: incoming value wins."""

    kind = "gauge"
    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def add(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> float:
        return self._value

    def _merge(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-boundary histogram with a cumulative-on-export bucket layout.

    ``counts[i]`` holds observations with ``value <= buckets[i]``; the final
    cell is the overflow (+Inf) bucket.  Boundaries are fixed at creation so
    snapshots from different processes always line up cell-for-cell.
    """

    kind = "histogram"
    __slots__ = ("name", "description", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty buckets")
        self.name = name
        self.description = description
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def _snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def _merge(self, value: dict[str, Any]) -> None:
        incoming = list(value.get("counts", ()))
        with self._lock:
            if len(incoming) == len(self._counts):
                for i, cell in enumerate(incoming):
                    self._counts[i] += cell
            self._sum += float(value.get("sum", 0.0))
            self._count += int(value.get("count", 0))

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """Get-or-create store for named metrics plus snapshot/merge plumbing."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Any] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, not {kind}"
                )
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, description), "counter")

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, description), "gauge")

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, description, buckets), "histogram"
        )

    def metrics(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data snapshot, JSON- and pickle-safe, stable key order."""

        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self.metrics()):
            metric = self._metrics[name]
            out[metric.kind + "s"][name] = metric._snapshot()
        return out

    def merge(self, snap: dict[str, Any] | None) -> None:
        """Fold a snapshot (usually a worker's delta) into live metrics.

        Merging is an explicit aggregation step, so it applies even while
        the registry is disabled — a parent that ran workers with metrics
        on must not silently drop their results.
        """

        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.counter(name)._merge(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name)._merge(value)
        for name, value in snap.get("histograms", {}).items():
            buckets = value.get("buckets") or DEFAULT_LATENCY_BUCKETS
            self.histogram(name, buckets=buckets)._merge(value)

    def reset(self) -> None:
        for metric in self.metrics().values():
            metric._reset()

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()


REGISTRY = MetricsRegistry()


def counter(name: str, description: str = "") -> Counter:
    return REGISTRY.counter(name, description)


def gauge(name: str, description: str = "") -> Gauge:
    return REGISTRY.gauge(name, description)


def histogram(
    name: str,
    description: str = "",
    buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
) -> Histogram:
    return REGISTRY.histogram(name, description, buckets)


def snapshot() -> dict[str, Any]:
    return REGISTRY.snapshot()


def merge_snapshot(snap: dict[str, Any] | None) -> None:
    REGISTRY.merge(snap)


def reset() -> None:
    REGISTRY.reset()


def snapshot_delta(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """Return ``after - before`` cell-wise; gauges keep the ``after`` value."""

    delta: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    prior = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        diff = value - prior.get(name, 0.0)
        if diff:
            delta["counters"][name] = diff
    delta["gauges"] = dict(after.get("gauges", {}))
    prior_hists = before.get("histograms", {})
    for name, value in after.get("histograms", {}).items():
        old = prior_hists.get(name)
        if old is None:
            if value.get("count"):
                delta["histograms"][name] = value
            continue
        counts = [c - o for c, o in zip(value["counts"], old["counts"])]
        if any(counts):
            delta["histograms"][name] = {
                "buckets": list(value["buckets"]),
                "counts": counts,
                "sum": value["sum"] - old["sum"],
                "count": value["count"] - old["count"],
            }
    return delta
