"""Span tracing: nested timing events with a ring buffer and a file sink.

A span is opened with the :func:`span` context manager::

    with span("engine.sweep.run", instances=12) as sp:
        ...
        sp.set(evaluations=evaluations)

When tracing is not configured the context manager yields a shared no-op
span and does nothing else, so instrumented code needs no gating of its
own.  When configured, one JSON event is emitted at span *exit* carrying
monotonic start/end timestamps, the parent span id (spans nest per
thread), the pid, and any attributes.

Events go to a bounded in-memory ring buffer and, optionally, to a
JSON-lines file opened in append mode.  Each event is written as a single
``write()`` of one line, which on Linux is atomic for lines under the pipe
buffer size — forked campaign workers can therefore share one trace file.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Span",
    "span",
    "configure_tracing",
    "stop_tracing",
    "tracing_enabled",
    "trace_path",
    "ring_events",
    "clear_ring",
    "flush",
    "current_span_id",
]

DEFAULT_RING = 1024

_lock = threading.Lock()
_active = False
_ring: deque[dict[str, Any]] = deque(maxlen=DEFAULT_RING)
_sink = None
_sink_path: str | None = None
_ids = itertools.count(1)
_tls = threading.local()


class Span:
    __slots__ = ("name", "span_id", "parent_id", "start", "attrs")

    def __init__(self, name: str, span_id: str, parent_id: str | None, **attrs: Any) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.monotonic()
        self.attrs = dict(attrs)

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes before the span closes."""

        self.attrs.update(attrs)


class _NoopSpan:
    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        pass


_NOOP = _NoopSpan()


def tracing_enabled() -> bool:
    return _active


def trace_path() -> str | None:
    return _sink_path


def configure_tracing(path: str | None = None, ring: int = DEFAULT_RING) -> None:
    """Turn tracing on, optionally appending events to ``path``.

    Safe to call again (e.g. in a pool worker after fork): the previous
    sink handle is replaced by a fresh append-mode handle so buffered
    writes never interleave between processes.
    """

    global _active, _ring, _sink, _sink_path
    with _lock:
        if _sink is not None:
            try:
                _sink.close()
            except OSError:
                pass
            _sink = None
        _ring = deque(_ring, maxlen=ring)
        if path is not None:
            parent = os.path.dirname(os.fspath(path))
            if parent:
                os.makedirs(parent, exist_ok=True)
            _sink = open(path, "a", encoding="utf-8")
            _sink_path = os.fspath(path)
        else:
            _sink_path = None
        _active = True


def stop_tracing() -> None:
    global _active, _sink, _sink_path
    with _lock:
        _active = False
        if _sink is not None:
            try:
                _sink.flush()
                _sink.close()
            except OSError:
                pass
        _sink = None
        _sink_path = None


def flush() -> None:
    with _lock:
        if _sink is not None:
            _sink.flush()


def ring_events() -> list[dict[str, Any]]:
    with _lock:
        return list(_ring)


def clear_ring() -> None:
    with _lock:
        _ring.clear()


def _stack() -> list[Span]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_span_id() -> str | None:
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1].span_id
    return None


def _emit(event: dict[str, Any]) -> None:
    with _lock:
        _ring.append(event)
        if _sink is not None:
            try:
                _sink.write(json.dumps(event, sort_keys=True, default=str) + "\n")
                _sink.flush()
            except (OSError, ValueError):
                pass


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | _NoopSpan]:
    if not _active:
        yield _NOOP
        return
    stack = _stack()
    parent = stack[-1].span_id if stack else None
    sp = Span(name, f"{os.getpid()}-{next(_ids)}", parent, **attrs)
    stack.append(sp)
    try:
        yield sp
    finally:
        stack.pop()
        end = time.monotonic()
        _emit(
            {
                "name": sp.name,
                "span": sp.span_id,
                "parent": sp.parent_id,
                "pid": os.getpid(),
                "thread": threading.current_thread().name,
                "t_start": sp.start,
                "t_end": end,
                "dur_s": end - sp.start,
                "wall": time.time(),
                "attrs": sp.attrs,
            }
        )
