"""Evidence objects for the classification (experiment E3).

The paper's main theorem is assembled from two kinds of building blocks:

* *containment evidence* -- a simulation construction turning any algorithm of
  a weaker model into one of a stronger class's model (Theorems 4, 8, 9), and
* *separation evidence* -- a graph problem solvable in the larger class
  together with a witness graph, a port numbering and a set of nodes that are
  bisimilar in the smaller class's Kripke encoding yet must receive different
  outputs (Corollary 3; Theorems 11, 13, 17).

The classes below make those building blocks first-class, *checkable* values:
``verify()`` replays the argument on concrete graphs, so the full Figure 5b
order can be re-derived mechanically by :func:`build_classification`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.execution.adversary import port_numberings_to_check
from repro.execution.engine import logic_engine_for, run_iter
from repro.execution.runner import run
from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering
from repro.logic.bisimulation import bisimilar_within
from repro.machines.algorithm import Algorithm
from repro.machines.models import ProblemClass
from repro.modal.encoding import kripke_encoding, variant_for_class


@dataclass(frozen=True)
class ContainmentEvidence:
    """Evidence that ``smaller ⊆ larger``: a checked simulation construction.

    ``simulate`` maps an algorithm of ``smaller``'s model to an algorithm of
    ``larger``'s model (or vice versa -- for the paper's equalities the
    interesting direction is simulating the *stronger* model in the *weaker*
    one, e.g. a Multiset algorithm by a Set algorithm for MV ⊆ SV).
    ``verify`` runs both algorithms on the supplied graphs and checks the
    validity predicate.
    """

    smaller: ProblemClass
    larger: ProblemClass
    description: str
    simulate: Callable[[Algorithm], Algorithm]

    def verify(
        self,
        algorithms: Sequence[Algorithm],
        graphs: Sequence[Graph],
        outputs_valid: Callable[[Graph, PortNumbering, dict[Node, Any]], bool],
        exhaustive_limit: int = 200,
        samples: int = 10,
        workers: int | None = None,
        engine: str = "sweep",
        memoize_transitions: bool = True,
    ) -> bool:
        """Check that the simulation preserves solution validity on the inputs.

        ``outputs_valid(graph, numbering, outputs)`` receives the port
        numbering under which the simulation ran, so callers can compare
        against the original algorithm's execution under the same numbering
        (or under any numbering sharing its output-port assignment, which is
        the guarantee Theorem 8 actually gives).

        The adversarial sweep runs superposed through the sweep engine by
        default (``engine`` selects the per-instance compiled loop or the
        seed runner as oracles); a simulation that fails to halt counts as a
        failed verification.
        """
        for algorithm in algorithms:
            simulated = self.simulate(algorithm)
            for graph in graphs:
                numberings = list(
                    port_numberings_to_check(
                        graph, exhaustive_limit=exhaustive_limit, samples=samples
                    )
                )
                results = run_iter(
                    simulated,
                    [(graph, numbering) for numbering in numberings],
                    require_halt=False,
                    workers=workers,
                    engine=engine,
                    memoize_transitions=memoize_transitions,
                )
                # Stop at the first invalid simulation run.  (The compiled
                # and reference engines stream lazily, so the early return
                # also skips executing the rest; the superposed sweep engine
                # materializes the whole sweep up front and only the
                # comparison work is skipped.)
                for numbering, result in zip(numberings, results):
                    if not result.halted or not outputs_valid(graph, numbering, result.outputs):
                        return False
        return True


@dataclass(frozen=True)
class SeparationEvidence:
    """Evidence that ``larger ⊄ smaller``, in the shape of Corollary 3.

    Attributes
    ----------
    smaller, larger:
        The two classes being separated (the witness problem is solvable in
        ``larger`` but not in ``smaller``).
    problem_name:
        Human-readable name of the separating graph problem.
    solver:
        An algorithm of ``larger``'s model solving the problem (used to show
        membership in the larger class).
    witness_graph:
        The graph ``G`` of Corollary 3.
    witness_nodes:
        The node set ``X``: every valid solution must assign both outputs
        inside ``X``.
    numbering:
        A port numbering of the witness graph under which all nodes of ``X``
        are bisimilar in ``smaller``'s Kripke encoding (``None`` means the
        encoding is numbering-independent and the canonical one is used).
    solution_distinguishes:
        Predicate receiving the output assignment restricted to ``X`` and
        returning ``True`` when the assignment is *constant* on ``X`` --
        i.e. when the output would violate the problem.
    """

    smaller: ProblemClass
    larger: ProblemClass
    problem_name: str
    solver: Algorithm
    witness_graph: Graph
    witness_nodes: tuple[Node, ...]
    is_valid_solution: Callable[[Graph, dict[Node, Any]], bool]
    numbering: PortNumbering | None = None

    def witness_bisimilar(self, logic_engine: str = "compiled") -> bool:
        """Corollary 3's hypothesis: the witness nodes are bisimilar in the weak encoding.

        ``logic_engine`` selects the partition-refinement backend
        (``"compiled"`` bitset engine or the ``"reference"`` seed loop),
        mirroring the execution-side ``engine`` knob.
        """
        model = kripke_encoding(
            self.witness_graph, self.numbering, variant=variant_for_class(self.smaller)
        )
        return bisimilar_within(model, self.witness_nodes, engine=logic_engine)

    def solutions_must_distinguish(self) -> bool:
        """Corollary 3's other hypothesis, checked via the validity predicate.

        Any constant assignment on the witness nodes (extended arbitrarily --
        here by the solver's own outputs elsewhere) must be invalid.  We check
        the weaker, sufficient condition that no *constant-on-X* output the
        solver could be forced into is valid, by flipping the outputs on X.
        """
        base = run(self.solver, self.witness_graph).outputs
        for constant in {0, 1}:
            candidate = dict(base)
            for node in self.witness_nodes:
                candidate[node] = constant
            if self.is_valid_solution(self.witness_graph, candidate):
                return False
        return True

    def solver_succeeds(
        self,
        graphs: Sequence[Graph],
        exhaustive_limit: int = 200,
        samples: int = 10,
        workers: int | None = None,
        engine: str = "sweep",
        memoize_transitions: bool = True,
    ) -> bool:
        """Membership in the larger class: the solver is valid on all inputs."""
        for graph in graphs:
            results = run_iter(
                self.solver,
                [
                    (graph, numbering)
                    for numbering in port_numberings_to_check(
                        graph,
                        consistent_only=self.larger.requires_consistency,
                        exhaustive_limit=exhaustive_limit,
                        samples=samples,
                    )
                ],
                require_halt=False,
                workers=workers,
                engine=engine,
                memoize_transitions=memoize_transitions,
            )
            for result in results:
                if not result.halted or not self.is_valid_solution(graph, result.outputs):
                    return False
        return True

    def verify(
        self,
        graphs: Sequence[Graph] | None = None,
        workers: int | None = None,
        engine: str = "sweep",
    ) -> bool:
        """Replay the whole separation argument.

        ``engine`` selects both the execution runner and the logic backend,
        so the full argument can be A/B-checked against the seed
        implementations.  The logic layer has no superposed mode, so the
        execution engines ``"sweep"`` and ``"compiled"`` both pair with the
        compiled partition refinement.
        """
        test_graphs = list(graphs) if graphs is not None else [self.witness_graph]
        logic_engine = logic_engine_for(engine)
        return (
            self.witness_bisimilar(logic_engine=logic_engine)
            and self.solutions_must_distinguish()
            and self.solver_succeeds(test_graphs, workers=workers, engine=engine)
        )


@dataclass
class ClassificationReport:
    """The assembled classification, with per-claim verification results."""

    containments: list[tuple[ContainmentEvidence, bool]] = field(default_factory=list)
    separations: list[tuple[SeparationEvidence, bool]] = field(default_factory=list)

    def all_verified(self) -> bool:
        return all(ok for _, ok in self.containments) and all(ok for _, ok in self.separations)

    def rows(self) -> list[tuple[str, str, bool]]:
        """(claim, evidence description, verified) rows for reporting."""
        table: list[tuple[str, str, bool]] = []
        for evidence, ok in self.containments:
            claim = f"{evidence.smaller} ⊆ {evidence.larger}"
            table.append((claim, evidence.description, ok))
        for evidence, ok in self.separations:
            claim = f"{evidence.larger} ⊄ {evidence.smaller}"
            table.append((claim, evidence.problem_name, ok))
        return table
