"""The hierarchy of problem classes and the paper's main classification result.

Figure 5a shows the containments that follow trivially from the definitions;
the paper's main theorem (results (1) and (2) of Section 2) collapses the
seven classes into a linear order of four distinct levels::

    SB  ⊊  MB = VB  ⊊  SV = MV = VV  ⊊  VVc

and identically for the constant-time versions.  This module encodes both the
trivial partial order and the proven linear order, and offers query helpers
(`is_contained_in`, `are_equal`, `collapse`, `distinct_levels`) that the
experiments and the examples use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.models import ProblemClass

#: The four levels of the proven linear order, weakest first (Figure 5b).
LINEAR_ORDER: tuple[tuple[ProblemClass, ...], ...] = (
    (ProblemClass.SB,),
    (ProblemClass.MB, ProblemClass.VB),
    (ProblemClass.SV, ProblemClass.MV, ProblemClass.VV),
    (ProblemClass.VVC,),
)

#: Human-readable names of the four levels.
LEVEL_NAMES: tuple[str, ...] = (
    "neither incoming nor outgoing port numbers (SB)",
    "no outgoing port numbers (MB = VB)",
    "no incoming port numbers (SV = MV = VV)",
    "consistent port numbering (VVc)",
)

#: The equalities proved in Section 5 (Corollaries 7 and 10).
PROVEN_EQUALITIES: tuple[frozenset[ProblemClass], ...] = (
    frozenset({ProblemClass.MB, ProblemClass.VB}),
    frozenset({ProblemClass.SV, ProblemClass.MV, ProblemClass.VV}),
)

#: The strict separations proved in Section 5.3, as (smaller, larger) pairs
#: together with the theorem establishing them.
PROVEN_SEPARATIONS: tuple[tuple[ProblemClass, ProblemClass, str], ...] = (
    (ProblemClass.SB, ProblemClass.MB, "Theorem 13 (odd number of odd-degree neighbours)"),
    (ProblemClass.VB, ProblemClass.SV, "Theorem 11 (leaf election in a star)"),
    (ProblemClass.VV, ProblemClass.VVC, "Theorem 17 (symmetry breaking in matchless regular graphs)"),
)


def level_of(problem_class: ProblemClass) -> int:
    """The index (0 = weakest) of the class's level in the linear order."""
    for index, level in enumerate(LINEAR_ORDER):
        if problem_class in level:
            return index
    raise ValueError(f"unknown problem class {problem_class!r}")


def trivially_contained_in(smaller: ProblemClass, larger: ProblemClass) -> bool:
    """The partial order of Figure 5a (definition-level containments only)."""
    return larger.trivially_contains(smaller)


def is_contained_in(smaller: ProblemClass, larger: ProblemClass) -> bool:
    """Whether ``smaller ⊆ larger`` according to the paper's main theorem."""
    return level_of(smaller) <= level_of(larger)


def are_equal(first: ProblemClass, second: ProblemClass) -> bool:
    """Whether the two classes coincide according to the main theorem."""
    return level_of(first) == level_of(second)


def is_strictly_contained_in(smaller: ProblemClass, larger: ProblemClass) -> bool:
    """Whether ``smaller ⊊ larger`` according to the main theorem."""
    return level_of(smaller) < level_of(larger)


def collapse(problem_class: ProblemClass) -> ProblemClass:
    """A canonical representative of the class's level (SB, VB, SV or VVc)."""
    representatives = (ProblemClass.SB, ProblemClass.VB, ProblemClass.SV, ProblemClass.VVC)
    return representatives[level_of(problem_class)]


def distinct_levels() -> tuple[tuple[ProblemClass, ...], ...]:
    """The four distinct levels, weakest first."""
    return LINEAR_ORDER


def separation_between(smaller: ProblemClass, larger: ProblemClass) -> str | None:
    """The theorem separating the levels of the two classes, if they differ.

    When the classes sit on adjacent levels this is the exact separating
    theorem; for classes further apart the theorem separating the two lowest
    levels in between is reported.
    """
    low, high = sorted((level_of(smaller), level_of(larger)))
    if low == high:
        return None
    _, _, description = PROVEN_SEPARATIONS[low]
    return description


@dataclass(frozen=True)
class HierarchySummary:
    """A machine-checkable summary of the classification (used by experiment E3)."""

    levels: tuple[tuple[ProblemClass, ...], ...]
    equalities: tuple[frozenset[ProblemClass], ...]
    separations: tuple[tuple[ProblemClass, ProblemClass, str], ...]

    def number_of_distinct_classes(self) -> int:
        return len(self.levels)

    def describe(self) -> str:
        """The linear order in the notation of the paper's abstract."""
        parts = []
        for level in self.levels:
            parts.append(" = ".join(str(cls) for cls in level))
        return "  ⊊  ".join(parts)


def summary() -> HierarchySummary:
    """The paper's classification as a :class:`HierarchySummary`."""
    return HierarchySummary(
        levels=LINEAR_ORDER,
        equalities=PROVEN_EQUALITIES,
        separations=PROVEN_SEPARATIONS,
    )
