"""Theorem 9: every Broadcast algorithm can be simulated in Multiset ∩ Broadcast.

This is the broadcast counterpart of Theorem 8: the wrapper broadcasts the
full history of the simulated algorithm's broadcasts, and a receiving node
orders the received histories lexicographically to obtain a message vector
that matches the execution of the simulated algorithm under *some* port
numbering of the input graph (with arbitrary output ports, which a Broadcast
algorithm ignores anyway).  Message size again grows linearly with time; the
round overhead is at most one round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.machines.algorithm import (
    NO_MESSAGE,
    Algorithm,
    MultisetBroadcastAlgorithm,
    Output,
)
from repro.machines.models import ReceiveMode, SendMode
from repro.machines.multiset import FrozenMultiset
from repro.utils.ordering import canonical_key


@dataclass(frozen=True)
class _WrapperState:
    inner: Any
    history: tuple[Any, ...]
    degree: int


class MultisetBroadcastSimulationOfBroadcast(MultisetBroadcastAlgorithm):
    """The MB algorithm simulating a Broadcast (vector-receive) algorithm."""

    def __init__(self, inner: Algorithm) -> None:
        if inner.model.receive is not ReceiveMode.VECTOR:
            raise ValueError("expected a Broadcast algorithm (vector receive)")
        if inner.model.send is not SendMode.BROADCAST:
            raise ValueError("expected a Broadcast algorithm (broadcast send)")
        self._inner = inner

    @property
    def name(self) -> str:
        return f"MultisetBroadcastSimulationOfBroadcast({self._inner.name})"

    @property
    def inner(self) -> Algorithm:
        return self._inner

    # ------------------------------------------------------------------ #

    def initial_state(self, degree: int) -> Any:
        inner_state = self._inner.initial_state(degree)
        if self._inner.is_stopping(inner_state) and degree == 0:
            return Output(self._inner.output(inner_state))
        return _WrapperState(inner=inner_state, history=(), degree=degree)

    def _current_broadcast(self, state: _WrapperState) -> Any:
        if self._inner.is_stopping(state.inner):
            return NO_MESSAGE
        return self._inner.broadcast(state.inner)

    def broadcast(self, state: Any) -> Any:
        return state.history + (self._current_broadcast(state),)

    def transition(self, state: Any, received: FrozenMultiset) -> Any:
        new_history = state.history + (self._current_broadcast(state),)
        if self._inner.is_stopping(state.inner):
            neighbours_done = all(
                message == NO_MESSAGE or (isinstance(message, tuple) and message[-1] == NO_MESSAGE)
                for message in received
            )
            if neighbours_done:
                return Output(self._inner.output(state.inner))
            return _WrapperState(inner=state.inner, history=new_history, degree=state.degree)
        histories = sorted(received, key=canonical_key)
        vector = tuple(history[-1] for history in histories)
        inner_next = self._inner.transition(state.inner, vector)
        return _WrapperState(inner=inner_next, history=new_history, degree=state.degree)


def simulate_broadcast_with_multiset_broadcast(
    inner: Algorithm,
) -> MultisetBroadcastSimulationOfBroadcast:
    """Convenience constructor (Theorem 9)."""
    return MultisetBroadcastSimulationOfBroadcast(inner)
