"""Theorem 8: every Vector algorithm can be simulated by a Multiset algorithm.

The simulating algorithm augments every outgoing message with the *full
history* of messages sent through that output port.  A receiving node sorts
the received histories lexicographically and feeds the simulated algorithm the
message vector in that order.  Because histories only ever grow, the sorted
order is stable over time, so the reconstructed execution coincides with the
execution of the original algorithm under a port numbering that has the same
*output*-port assignment as the real one but whose *input* ports are numbered
in history order -- i.e. a member of the family ``P_T`` of the paper's proof.
The original algorithm must produce a valid output under *every* port
numbering, hence the simulation's output is valid as well (it need not be
byte-identical to the run under the original numbering).

The round overhead is at most one extra round (the wrapper halts once its own
simulated node and all neighbouring simulated nodes have halted); the paper
states the simulation runs in the same time ``T``.  The price is message size:
messages grow linearly with the round number, which experiment E6 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.machines.algorithm import NO_MESSAGE, Algorithm, MultisetAlgorithm, Output
from repro.machines.models import ReceiveMode, SendMode
from repro.machines.multiset import FrozenMultiset
from repro.utils.ordering import canonical_key


@dataclass(frozen=True)
class _WrapperState:
    inner: Any
    histories: tuple[tuple[Any, ...], ...]
    degree: int


class MultisetSimulationOfVector(MultisetAlgorithm):
    """The Multiset algorithm ``B_Delta`` simulating a Vector algorithm ``A_Delta``."""

    def __init__(self, inner: Algorithm) -> None:
        if inner.model.receive is not ReceiveMode.VECTOR:
            raise ValueError("MultisetSimulationOfVector expects a Vector-receive algorithm")
        if inner.model.send is not SendMode.PORT:
            raise ValueError("MultisetSimulationOfVector expects a port-addressed algorithm")
        self._inner = inner

    @property
    def name(self) -> str:
        return f"MultisetSimulationOfVector({self._inner.name})"

    @property
    def inner(self) -> Algorithm:
        return self._inner

    # ------------------------------------------------------------------ #

    def initial_state(self, degree: int) -> Any:
        inner_state = self._inner.initial_state(degree)
        if self._inner.is_stopping(inner_state) and degree == 0:
            return Output(self._inner.output(inner_state))
        return _WrapperState(
            inner=inner_state, histories=tuple(() for _ in range(degree)), degree=degree
        )

    def _current_message(self, state: _WrapperState, port: int) -> Any:
        if self._inner.is_stopping(state.inner):
            return NO_MESSAGE
        return self._inner.send(state.inner, port)

    def send(self, state: Any, port: int) -> Any:
        history = state.histories[port - 1]
        return history + (self._current_message(state, port),)

    def transition(self, state: Any, received: FrozenMultiset) -> Any:
        new_histories = tuple(
            state.histories[port - 1] + (self._current_message(state, port),)
            for port in range(1, state.degree + 1)
        )
        if self._inner.is_stopping(state.inner):
            neighbours_done = all(
                message == NO_MESSAGE or (isinstance(message, tuple) and message[-1] == NO_MESSAGE)
                for message in received
            )
            if neighbours_done:
                return Output(self._inner.output(state.inner))
            return _WrapperState(inner=state.inner, histories=new_histories, degree=state.degree)
        # Reconstruct the message vector: order the received histories
        # lexicographically and read off their latest entries.
        histories = sorted(received, key=canonical_key)
        vector = tuple(history[-1] for history in histories)
        inner_next = self._inner.transition(state.inner, vector)
        return _WrapperState(inner=inner_next, histories=new_histories, degree=state.degree)


def simulate_vector_with_multiset(inner: Algorithm) -> MultisetSimulationOfVector:
    """Convenience constructor for :class:`MultisetSimulationOfVector` (Theorem 8)."""
    return MultisetSimulationOfVector(inner)
