"""Theorem 4: every Multiset algorithm can be simulated by a Set algorithm.

The construction is the paper's two-phase algorithm:

**Phase 1 (symmetry breaking, ``2 * Delta`` rounds).**  Every node ``v``
iterates the local algorithm ``C_Delta``: it maintains a pair of sequences
``beta_t(v)`` and ``B_t(v)``, where ``beta_t = (beta_{t-1}, B_{t-1})`` and
``B_t`` is the *set* of messages received in round ``t``; the message sent to
port ``i`` in round ``t`` is ``(beta_t(v), deg(v), i)``.  Lemmas 5 and 6 show
that after ``2 * Delta`` rounds no node has two "indistinguishable"
neighbours: the triples ``(beta_{2Delta}(u), deg(u), pi(u, v))`` are pairwise
distinct over the neighbours ``u`` of any node ``v``.

**Phase 2 (simulation).**  The wrapped Multiset algorithm is executed, but
every message ``a`` it would send to port ``i`` is shipped as the 4-tuple
``(beta_{2Delta}(u), deg(u), i, a)``.  Because the first three components are
distinct across a node's neighbours, the *set* of received tuples determines
the *multiset* of the underlying messages, which is exactly what the wrapped
algorithm needs.

The wrapper halts one round after its own simulated node and all of its
neighbours' simulated nodes have halted, so the total running time is at most
``T + 2 * Delta + 1`` rounds for a Multiset algorithm running in ``T`` rounds
(the paper states ``T + O(Delta)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.machines.algorithm import NO_MESSAGE, Algorithm, Output, SetAlgorithm
from repro.machines.models import ReceiveMode, SendMode
from repro.machines.multiset import FrozenMultiset

#: Marker distinguishing the two phases inside wrapper states.
_PHASE_BREAK = "symmetry-breaking"
_PHASE_SIMULATE = "simulate"


@dataclass(frozen=True)
class _Phase1State:
    """State during the symmetry-breaking phase: ``(t, beta_t, B_t)``."""

    rounds_done: int
    beta: Any
    bag: frozenset
    degree: int


@dataclass(frozen=True)
class _Phase2State:
    """State during the simulation phase."""

    beta: Any
    inner: Any
    degree: int


class SetSimulationOfMultiset(SetAlgorithm):
    """The Set-model algorithm ``B_Delta`` simulating a Multiset algorithm ``A_Delta``.

    Parameters
    ----------
    inner:
        The Multiset algorithm to simulate.  (Any algorithm whose receive mode
        is MULTISET and send mode is PORT is accepted.)
    delta:
        The maximum degree ``Delta`` of the graph family; determines the
        length ``2 * Delta`` of the symmetry-breaking phase.
    """

    def __init__(self, inner: Algorithm, delta: int) -> None:
        if inner.model.receive is not ReceiveMode.MULTISET:
            raise ValueError("SetSimulationOfMultiset expects a Multiset-receive algorithm")
        if inner.model.send is not SendMode.PORT:
            raise ValueError("SetSimulationOfMultiset expects a port-addressed algorithm")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self._inner = inner
        self._delta = delta
        self._phase1_rounds = 2 * delta

    @property
    def name(self) -> str:
        return f"SetSimulationOfMultiset({self._inner.name}, delta={self._delta})"

    @property
    def inner(self) -> Algorithm:
        return self._inner

    @property
    def symmetry_breaking_rounds(self) -> int:
        return self._phase1_rounds

    # ------------------------------------------------------------------ #

    def initial_state(self, degree: int) -> Any:
        if self._phase1_rounds == 0:
            return self._start_phase2(beta=(), degree=degree)
        return _Phase1State(rounds_done=0, beta=(), bag=frozenset(), degree=degree)

    def _start_phase2(self, beta: Any, degree: int) -> Any:
        inner_state = self._inner.initial_state(degree)
        if self._inner.is_stopping(inner_state) and degree == 0:
            # An isolated node can never learn anything more; finish immediately.
            return Output(self._inner.output(inner_state))
        return _Phase2State(beta=beta, inner=inner_state, degree=degree)

    # ------------------------------------------------------------------ #
    # Message construction
    # ------------------------------------------------------------------ #

    def send(self, state: Any, port: int) -> Any:
        if isinstance(state, _Phase1State):
            beta_next = (state.beta, state.bag)
            return (_PHASE_BREAK, beta_next, state.degree, port)
        if isinstance(state, _Phase2State):
            if self._inner.is_stopping(state.inner):
                payload = NO_MESSAGE
            else:
                payload = self._inner.send(state.inner, port)
            return (_PHASE_SIMULATE, state.beta, state.degree, port, payload)
        raise ValueError(f"unexpected wrapper state {state!r}")

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #

    def transition(self, state: Any, received: frozenset) -> Any:
        if isinstance(state, _Phase1State):
            beta_next = (state.beta, state.bag)
            rounds_done = state.rounds_done + 1
            bag_next = frozenset(received)
            if rounds_done == self._phase1_rounds:
                return self._start_phase2(beta=(beta_next, bag_next), degree=state.degree)
            return _Phase1State(
                rounds_done=rounds_done, beta=beta_next, bag=bag_next, degree=state.degree
            )
        if isinstance(state, _Phase2State):
            return self._phase2_step(state, received)
        raise ValueError(f"unexpected wrapper state {state!r}")

    def _phase2_step(self, state: _Phase2State, received: frozenset) -> Any:
        if self._inner.is_stopping(state.inner):
            # Halt once every neighbour's simulated node has halted as well;
            # until then keep providing the "no message" placeholders they need.
            neighbours_done = all(
                message == NO_MESSAGE
                or (isinstance(message, tuple) and len(message) == 5 and message[4] == NO_MESSAGE)
                for message in received
            )
            if neighbours_done:
                return Output(self._inner.output(state.inner))
            return state
        # Reconstruct the multiset of simulated messages: by Lemma 6 the
        # (beta, degree, port) prefixes are distinct across neighbours, so each
        # received tuple corresponds to exactly one neighbour.
        simulated = [
            message[4]
            for message in received
            if isinstance(message, tuple) and len(message) == 5 and message[0] == _PHASE_SIMULATE
        ]
        # The "no message" placeholders of halted neighbours are kept: the
        # plain execution of the wrapped algorithm would receive them too.
        inner_received = FrozenMultiset(simulated)
        inner_next = self._inner.transition(state.inner, inner_received)
        return _Phase2State(beta=state.beta, inner=inner_next, degree=state.degree)


def simulate_multiset_with_set(inner: Algorithm, delta: int) -> SetSimulationOfMultiset:
    """Convenience constructor for :class:`SetSimulationOfMultiset` (Theorem 4)."""
    return SetSimulationOfMultiset(inner, delta)
