"""Executable simulation constructions (Theorems 4, 8 and 9).

These wrappers establish the containment half of the paper's classification:

* :func:`~repro.core.simulations.multiset_to_set.simulate_multiset_with_set`
  -- Theorem 4, MV ⊆ SV (and MV(1) ⊆ SV(1)); overhead ``O(Delta)`` rounds.
* :func:`~repro.core.simulations.vector_to_multiset.
  simulate_vector_with_multiset` -- Theorem 8, VV ⊆ MV; no round overhead but
  messages grow with the round number.
* :func:`~repro.core.simulations.broadcast_to_mb.
  simulate_broadcast_with_multiset_broadcast` -- Theorem 9, VB ⊆ MB.
"""

from repro.core.simulations.multiset_to_set import (
    SetSimulationOfMultiset,
    simulate_multiset_with_set,
)
from repro.core.simulations.vector_to_multiset import (
    MultisetSimulationOfVector,
    simulate_vector_with_multiset,
)
from repro.core.simulations.broadcast_to_mb import (
    MultisetBroadcastSimulationOfBroadcast,
    simulate_broadcast_with_multiset_broadcast,
)

__all__ = [
    "SetSimulationOfMultiset",
    "simulate_multiset_with_set",
    "MultisetSimulationOfVector",
    "simulate_vector_with_multiset",
    "MultisetBroadcastSimulationOfBroadcast",
    "simulate_broadcast_with_multiset_broadcast",
]
