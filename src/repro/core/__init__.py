"""The paper's primary contribution: simulations, separations and the hierarchy.

* :mod:`~repro.core.hierarchy` -- the seven problem classes, the trivial
  partial order of Figure 5a and the proven linear order of Figure 5b.
* :mod:`~repro.core.simulations` -- the executable simulation constructions of
  Theorems 4, 8 and 9 (the containment half of the classification).
* :mod:`~repro.core.classification` -- evidence objects that replay the whole
  argument (containments by simulation, separations by bisimulation) on
  concrete graphs.
"""

from repro.core.hierarchy import (
    LEVEL_NAMES,
    LINEAR_ORDER,
    PROVEN_EQUALITIES,
    PROVEN_SEPARATIONS,
    HierarchySummary,
    are_equal,
    collapse,
    distinct_levels,
    is_contained_in,
    is_strictly_contained_in,
    level_of,
    separation_between,
    summary,
    trivially_contained_in,
)
from repro.core.classification import (
    ClassificationReport,
    ContainmentEvidence,
    SeparationEvidence,
)
from repro.core.simulations import (
    MultisetBroadcastSimulationOfBroadcast,
    MultisetSimulationOfVector,
    SetSimulationOfMultiset,
    simulate_broadcast_with_multiset_broadcast,
    simulate_multiset_with_set,
    simulate_vector_with_multiset,
)

__all__ = [
    "LEVEL_NAMES",
    "LINEAR_ORDER",
    "PROVEN_EQUALITIES",
    "PROVEN_SEPARATIONS",
    "HierarchySummary",
    "are_equal",
    "collapse",
    "distinct_levels",
    "is_contained_in",
    "is_strictly_contained_in",
    "level_of",
    "separation_between",
    "summary",
    "trivially_contained_in",
    "ClassificationReport",
    "ContainmentEvidence",
    "SeparationEvidence",
    "MultisetBroadcastSimulationOfBroadcast",
    "MultisetSimulationOfVector",
    "SetSimulationOfMultiset",
    "simulate_broadcast_with_multiset_broadcast",
    "simulate_multiset_with_set",
    "simulate_vector_with_multiset",
]
