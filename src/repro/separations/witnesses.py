"""All separation witnesses, in hierarchy order."""

from __future__ import annotations

from repro.core.classification import SeparationEvidence
from repro.separations.matchless import matchless_separation
from repro.separations.odd_odd import odd_odd_separation
from repro.separations.star import star_separation


def all_separations() -> tuple[SeparationEvidence, ...]:
    """The three separations establishing the strict inclusions of Figure 5b."""
    return (odd_odd_separation(), star_separation(), matchless_separation())
