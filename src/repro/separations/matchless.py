"""Theorem 17 (with Lemmas 15 and 16): symmetry breaking separates VV from VVc.

On a connected odd-regular graph without a perfect matching (Figure 9), a
consistent port numbering always yields at least two distinct local types, so
the two-round local-type algorithm produces a non-constant output -- the
problem is in VVc(1).  Lemma 15, on the other hand, constructs an
*inconsistent* port numbering (from a 1-factorisation of the bipartite double
cover) under which *all* nodes are bisimilar in ``K+,+``, so by Corollary 3(a)
no Vector algorithm can solve the problem under arbitrary port numberings.
"""

from __future__ import annotations

from repro.algorithms.local_types import LocalTypeSymmetryBreaking
from repro.core.classification import SeparationEvidence
from repro.graphs.covers import symmetric_port_numbering
from repro.graphs.generators import figure9_graph
from repro.graphs.graph import Graph
from repro.machines.models import ProblemClass
from repro.problems.separating import SymmetryBreakingInMatchlessRegular


def matchless_separation(graph: Graph | None = None) -> SeparationEvidence:
    """The evidence object for ``VV ⊊ VVc`` on a matchless odd-regular graph.

    By default the witness is the Figure 9 graph; any connected odd-regular
    graph without a perfect matching works.
    """
    witness = graph if graph is not None else figure9_graph()
    problem = SymmetryBreakingInMatchlessRegular()
    return SeparationEvidence(
        smaller=ProblemClass.VV,
        larger=ProblemClass.VVC,
        problem_name="symmetry breaking in matchless odd-regular graphs (Theorem 17)",
        solver=LocalTypeSymmetryBreaking(),
        witness_graph=witness,
        witness_nodes=tuple(witness.nodes),
        is_valid_solution=problem.is_solution,
        numbering=symmetric_port_numbering(witness),
    )
