"""Theorem 13: the odd-odd-neighbours problem separates SB from MB.

Counting the odd-degree neighbours is a one-round MB algorithm.  In the
``K-,-`` encoding (which does not depend on the port numbering at all) the two
distinguished nodes of the witness graph are bisimilar, yet the problem's
unique solution gives them different outputs, so by Corollary 3(c) the problem
is not in SB.
"""

from __future__ import annotations

from repro.algorithms.parity import OddOddNeighboursAlgorithm
from repro.core.classification import SeparationEvidence
from repro.graphs.generators import odd_odd_gadget_pair
from repro.machines.models import ProblemClass
from repro.problems.separating import OddOddNeighbours


def odd_odd_separation() -> SeparationEvidence:
    """The evidence object for ``SB ⊊ MB`` on the gadget pair of Theorem 13."""
    graph, first_witness, second_witness = odd_odd_gadget_pair()
    problem = OddOddNeighbours()
    return SeparationEvidence(
        smaller=ProblemClass.SB,
        larger=ProblemClass.MB,
        problem_name="odd number of odd-degree neighbours (Theorem 13)",
        solver=OddOddNeighboursAlgorithm(),
        witness_graph=graph,
        witness_nodes=(first_witness, second_witness),
        is_valid_solution=problem.is_solution,
        numbering=None,
    )
