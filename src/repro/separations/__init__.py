"""The three separation arguments of Section 5.3 as checkable evidence.

Each module builds a :class:`~repro.core.classification.SeparationEvidence`
whose ``verify()`` replays Corollary 3 on the witness graph:

* :mod:`~repro.separations.star` -- Theorem 11, ``VB ⊊ SV``.
* :mod:`~repro.separations.odd_odd` -- Theorem 13, ``SB ⊊ MB``.
* :mod:`~repro.separations.matchless` -- Theorem 17, ``VV ⊊ VVc``
  (with Lemmas 15 and 16 as supporting constructions).
"""

from repro.separations.star import star_separation
from repro.separations.odd_odd import odd_odd_separation
from repro.separations.matchless import matchless_separation
from repro.separations.witnesses import all_separations

__all__ = [
    "star_separation",
    "odd_odd_separation",
    "matchless_separation",
    "all_separations",
]
