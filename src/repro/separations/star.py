"""Theorem 11: leaf election separates VB from SV.

The problem of electing exactly one leaf of a star is solvable by a one-round
Set algorithm (the centre's distinct output-port numbers break the symmetry
between the leaves), but in the ``K+,-`` encoding of any star all leaves are
bisimilar -- a Broadcast algorithm can never give two leaves different
outputs, so by Corollary 3(b) the problem is not in VB.
"""

from __future__ import annotations

from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.core.classification import SeparationEvidence
from repro.graphs.generators import star_graph
from repro.graphs.ports import consistent_port_numbering
from repro.machines.models import ProblemClass
from repro.problems.separating import LeafElectionInStars


def star_separation(leaves: int = 3) -> SeparationEvidence:
    """The evidence object for ``VB ⊊ SV`` on a ``leaves``-star."""
    if leaves < 2:
        raise ValueError("the separating star needs at least two leaves")
    graph = star_graph(leaves)
    problem = LeafElectionInStars()
    centre = 0
    leaf_nodes = tuple(node for node in graph.nodes if node != centre)
    return SeparationEvidence(
        smaller=ProblemClass.VB,
        larger=ProblemClass.SV,
        problem_name="leaf election in stars (Theorem 11)",
        solver=LeafElectionAlgorithm(),
        witness_graph=graph,
        witness_nodes=leaf_nodes,
        is_valid_solution=problem.is_solution,
        numbering=consistent_port_numbering(graph),
    )
