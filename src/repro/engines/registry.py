"""The engine registry: one place that knows every ``engine=`` backend.

PRs 1-5 grew four execution/logic backends -- the seed reference loops, the
compiled per-instance engines, the superposed sweep executor and (this PR)
the NumPy vector kernel -- and with them a hand-rolled ``if engine ==
"compiled"`` ladder in every batch entry point.  This module replaces those
ladders with data:

* :class:`EngineSpec` declares a backend once: its name, the capabilities it
  supports (``"trace"``, ``"sweep"``, ``"logic"``, ``"inputs"``), the
  optional dependency it needs, and which logic backend pairs with it;
* :func:`resolve_engine` is the single validation point every public entry
  point calls -- unknown names, capability mismatches and missing optional
  dependencies are diagnosed here and nowhere else, so the error text names
  the engine, the operation and the engines that *would* work;
* :func:`available_engines` is the one discovery API (used by
  ``campaign.spec`` validation, tests and documentation examples instead of
  per-module name tuples).

Capability vocabulary
---------------------

``"sweep"``
    The engine can execute batches of port-numbered instances
    (:func:`repro.execution.engine.run_iter` / ``run_many`` / ``run_sweep``).
``"logic"``
    The engine can evaluate modal formulas over Kripke models
    (:func:`repro.logic.engine.check_many` / ``check_sweep`` and the
    semantics/bisimulation wrappers).
``"trace"``
    The engine materializes per-instance :class:`~repro.execution.trace.Trace`
    objects.  Batch engines (sweep, vector) do not; ``run_iter`` transparently
    falls back to the compiled loop when a trace is requested.
``"inputs"``
    The engine accepts per-instance local-input mappings.

Error taxonomy
--------------

All registry errors subclass :class:`EngineError`, which subclasses
``ValueError`` -- existing callers catching ``ValueError`` on a bad knob keep
working.  :class:`EngineUnavailableError` additionally subclasses
``ImportError``: asking for ``engine="vector"`` without NumPy installed is,
morally, a failed import, and either ``except`` clause catches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs import metrics as _metrics

__all__ = [
    "CAPABILITIES",
    "EngineCapabilityError",
    "EngineError",
    "EngineSpec",
    "EngineUnavailableError",
    "UnknownEngineError",
    "available_engines",
    "engine_names",
    "logic_engine_for",
    "numpy_or_none",
    "resolve_engine",
]

#: The full capability vocabulary (see the module docstring).
CAPABILITIES = frozenset({"trace", "sweep", "logic", "inputs"})


class EngineError(ValueError):
    """Base class of every engine-resolution error."""


class UnknownEngineError(EngineError):
    """The requested engine name is not registered."""


class EngineCapabilityError(EngineError):
    """The engine exists but does not support the requested operation."""


class EngineUnavailableError(EngineError, ImportError):
    """The engine exists but its optional dependency is not installed."""


# --------------------------------------------------------------------------- #
# Optional-dependency probes
# --------------------------------------------------------------------------- #

_UNPROBED = object()
_NUMPY: Any = _UNPROBED


def numpy_or_none() -> Any:
    """The ``numpy`` module if importable, else ``None`` (probed once).

    Tests monkeypatch the module-level ``_NUMPY`` cache to simulate a
    NumPy-free environment without uninstalling anything.
    """
    global _NUMPY
    if _NUMPY is _UNPROBED:
        try:
            import numpy  # noqa: PLC0415

            _NUMPY = numpy
        except ImportError:
            _NUMPY = None
    if _metrics.enabled():
        _metrics.gauge("engines.numpy_available").set(0 if _NUMPY is None else 1)
    return _NUMPY


def _numpy_available() -> bool:
    return numpy_or_none() is not None


@dataclass(frozen=True)
class EngineSpec:
    """One registered backend.

    Attributes
    ----------
    name:
        The ``engine=`` knob value.
    description:
        One line for documentation and error messages.
    capabilities:
        Subset of :data:`CAPABILITIES` the backend supports.
    requirement:
        Human-readable name of the optional dependency, or ``None`` when the
        backend is always available.
    probe:
        Zero-argument availability probe (``None`` means always available).
    logic_backend:
        The logic-layer engine paired with this backend by
        :func:`logic_engine_for` (correspondence checks run both sides of
        Theorem 2 through matching representations).
    batched:
        Whether the backend executes a whole batch as one superposed/fused
        call (no meaningful per-instance streaming or wall-clock split).
    plannable:
        Whether the backend's interned tables can be captured into and
        installed from a :class:`repro.execution.plan.KernelPlan` -- the
        campaign layer only loads/persists plan artifacts for plannable
        engines.
    """

    name: str
    description: str
    capabilities: frozenset[str] = field(default_factory=frozenset)
    requirement: str | None = None
    probe: Any = None
    logic_backend: str = "compiled"
    batched: bool = False
    plannable: bool = False

    def available(self) -> bool:
        """Whether the optional dependency (if any) is importable."""
        return self.probe is None or bool(self.probe())


#: Registration order is the display/validation order everywhere.
_REGISTRY: dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        EngineSpec(
            name="sweep",
            description="superposed batch executor: one transition per "
            "distinct configuration across the whole sweep",
            capabilities=frozenset({"sweep", "inputs"}),
            logic_backend="compiled",
            batched=True,
            plannable=True,
        ),
        EngineSpec(
            name="compiled",
            description="per-instance compiled loops over flat index arrays "
            "and bitsets (the default engines)",
            capabilities=frozenset({"trace", "sweep", "logic", "inputs"}),
            logic_backend="compiled",
        ),
        EngineSpec(
            name="reference",
            description="the seed reference implementations, kept as "
            "differential oracles",
            capabilities=frozenset({"trace", "sweep", "logic", "inputs"}),
            logic_backend="reference",
        ),
        EngineSpec(
            name="vector",
            description="NumPy kernel: array scatter/gather sweeps and "
            "packed-uint64 batched model checking",
            capabilities=frozenset({"sweep", "logic", "inputs"}),
            requirement="numpy",
            probe=_numpy_available,
            logic_backend="vector",
            batched=True,
            plannable=True,
        ),
    )
}


def engine_names(*, requires: frozenset[str] | set[str] | None = None) -> tuple[str, ...]:
    """Names of the registered engines supporting ``requires``.

    Availability of optional dependencies is *not* consulted: this is the
    declared registry, the right universe for spec validation and error
    messages (a campaign spec naming ``"vector"`` is well-formed on a
    NumPy-free box; running it there raises
    :class:`EngineUnavailableError` at resolution time).
    """
    needed = frozenset(requires or ())
    return tuple(
        spec.name for spec in _REGISTRY.values() if needed <= spec.capabilities
    )


def available_engines(*, requires: frozenset[str] | set[str] | None = None) -> tuple[str, ...]:
    """Names of the engines supporting ``requires`` and importable right now.

    The one discovery API: ``available_engines()`` lists every usable
    backend, ``available_engines(requires={"logic"})`` the ones a logic
    entry point accepts, and so on.
    """
    needed = frozenset(requires or ())
    return tuple(
        spec.name
        for spec in _REGISTRY.values()
        if needed <= spec.capabilities and spec.available()
    )


def resolve_engine(
    name: str,
    *,
    requires: frozenset[str] | set[str] | None = None,
    operation: str | None = None,
) -> EngineSpec:
    """Validate an ``engine=`` knob value and return its spec.

    This is the single choke point behind every public ``engine=`` parameter:

    * an unregistered name raises :class:`UnknownEngineError`;
    * a registered engine missing a capability in ``requires`` raises
      :class:`EngineCapabilityError` naming the engine, the ``operation``
      and the engines that do support it (the Section-1.4 sweep executor has
      no model checker, so ``check_many(..., engine="sweep")`` fails *here*,
      at the public boundary, not deep inside dispatch);
    * an engine whose optional dependency is missing raises
      :class:`EngineUnavailableError` with the install hint.
    """
    spec = _REGISTRY.get(name)
    needed = frozenset(requires or ())
    if spec is None:
        universe = engine_names(requires=needed)
        raise UnknownEngineError(
            f"unknown engine {name!r}; expected one of {universe}"
        )
    if not needed <= spec.capabilities:
        missing = ", ".join(sorted(needed - spec.capabilities))
        what = operation or f"an operation requiring {missing!r}"
        supported = ", ".join(engine_names(requires=needed))
        raise EngineCapabilityError(
            f"engine {name!r} does not support {what} "
            f"(missing capability: {missing}); "
            f"engines that do: {supported}"
        )
    if not spec.available():
        raise EngineUnavailableError(
            f"engine {name!r} requires {spec.requirement}, which is not "
            f"installed; install it (pip install {spec.requirement}) or pick "
            f"one of: {', '.join(available_engines(requires=needed))}"
        )
    return spec


def logic_engine_for(engine: str) -> str:
    """The logic-layer backend paired with an execution engine.

    The superposed sweep executor has no model checker of its own, so
    ``"sweep"`` pairs with the compiled logic engine; ``"vector"`` pairs
    with the packed-uint64 vector checker and ``"reference"`` with the seed
    oracles, keeping both sides of a Theorem 2 correspondence check on
    matching representations.
    """
    return resolve_engine(engine).logic_backend
