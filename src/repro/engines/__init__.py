"""Unified registry of the ``engine=`` backends.

Every public ``engine=`` knob in the library -- execution
(:func:`repro.execution.engine.run_iter` / ``run_many`` / ``run_sweep``),
logic (:func:`repro.logic.engine.check_many` / ``check_sweep`` and the
semantics/bisimulation wrappers), classification, correspondence and
campaign-spec validation -- resolves through this package.  See
:mod:`repro.engines.registry` for the capability vocabulary and the error
taxonomy.
"""

from repro.engines.registry import (
    CAPABILITIES,
    EngineCapabilityError,
    EngineError,
    EngineSpec,
    EngineUnavailableError,
    UnknownEngineError,
    available_engines,
    engine_names,
    logic_engine_for,
    numpy_or_none,
    resolve_engine,
)

__all__ = [
    "CAPABILITIES",
    "EngineCapabilityError",
    "EngineError",
    "EngineSpec",
    "EngineUnavailableError",
    "UnknownEngineError",
    "available_engines",
    "engine_names",
    "logic_engine_for",
    "numpy_or_none",
    "resolve_engine",
]
