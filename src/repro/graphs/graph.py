"""Simple undirected graphs of bounded degree.

The paper works with the family ``F(Delta)`` of simple undirected graphs whose
maximum degree is at most ``Delta`` (Section 1.1).  :class:`Graph` is the
concrete representation used throughout the library: an immutable value object
with hashable node labels and an adjacency structure whose neighbour order is
deterministic (sorted by the node sort key), so that every derived object --
port numberings, executions, Kripke models -- is reproducible.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

Node = Hashable
Edge = tuple[Node, Node]


def _sort_key(node: Node) -> tuple[str, str]:
    """Deterministic sort key for possibly heterogeneous node labels."""
    return (type(node).__name__, repr(node))


class Graph:
    """An immutable simple undirected graph.

    Parameters
    ----------
    nodes:
        Iterable of hashable node labels.  Nodes mentioned only in ``edges``
        are added automatically.
    edges:
        Iterable of unordered pairs ``(u, v)`` with ``u != v``.  Parallel
        edges are collapsed; self-loops raise :class:`ValueError`.

    Examples
    --------
    >>> g = Graph(nodes=[1, 2, 3], edges=[(1, 2), (2, 3)])
    >>> g.degree(2)
    2
    >>> sorted(g.neighbors(2))
    [1, 3]
    """

    # ``__weakref__`` lets the execution engine keep a weak per-graph cache of
    # compiled topology (repro.execution.engine) without pinning graphs alive;
    # ``_default_compiled`` caches the compiled instance for the canonical
    # consistent numbering directly on the graph (owned by the engine), so its
    # lifetime is exactly the graph's.
    __slots__ = ("_adjacency", "_nodes", "_edges", "_hash", "_default_compiled", "__weakref__")

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, Node]] = (),
    ) -> None:
        adjacency: dict[Node, set[Node]] = {node: set() for node in nodes}
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop on node {u!r} is not allowed in a simple graph")
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        self._nodes: tuple[Node, ...] = tuple(sorted(adjacency, key=_sort_key))
        self._adjacency: dict[Node, tuple[Node, ...]] = {
            node: tuple(sorted(adjacency[node], key=_sort_key)) for node in self._nodes
        }
        seen: set[frozenset[Node]] = set()
        edge_list: list[Edge] = []
        for u in self._nodes:
            for v in self._adjacency[u]:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    edge_list.append((u, v))
        self._edges: tuple[Edge, ...] = tuple(edge_list)
        self._hash: int | None = None
        self._default_compiled: Any = None

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes, in deterministic order."""
        return self._nodes

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All edges, each reported once, in deterministic order."""
        return self._edges

    @property
    def number_of_nodes(self) -> int:
        return len(self._nodes)

    @property
    def number_of_edges(self) -> int:
        return len(self._edges)

    def neighbors(self, node: Node) -> tuple[Node, ...]:
        """Neighbours of ``node`` in deterministic order."""
        try:
            return self._adjacency[node]
        except KeyError:
            raise KeyError(f"node {node!r} is not in the graph") from None

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        return len(self.neighbors(node))

    def max_degree(self) -> int:
        """The maximum degree ``Delta`` of the graph (0 for the empty graph)."""
        if not self._nodes:
            return 0
        return max(len(self._adjacency[node]) for node in self._nodes)

    def has_node(self, node: Node) -> bool:
        return node in self._adjacency

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def degrees(self) -> dict[Node, int]:
        """Mapping of every node to its degree."""
        return {node: len(self._adjacency[node]) for node in self._nodes}

    # ------------------------------------------------------------------ #
    # Structural predicates
    # ------------------------------------------------------------------ #

    def is_regular(self, k: int | None = None) -> bool:
        """Whether every node has the same degree (equal to ``k`` if given)."""
        if not self._nodes:
            return True
        degrees = {self.degree(node) for node in self._nodes}
        if len(degrees) != 1:
            return False
        if k is None:
            return True
        return degrees == {k}

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        if not self._nodes:
            return True
        seen = {self._nodes[0]}
        frontier = [self._nodes[0]]
        while frontier:
            node = frontier.pop()
            for neighbour in self._adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self._nodes)

    def connected_components(self) -> list[frozenset[Node]]:
        """The connected components as frozensets of nodes."""
        remaining = set(self._nodes)
        components: list[frozenset[Node]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in self._adjacency[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            components.append(frozenset(seen))
            remaining -= seen
        return components

    def is_eulerian(self) -> bool:
        """Whether the graph has an Eulerian circuit.

        Per the standard definition used by the paper's example (Section 1.4):
        connected (ignoring isolated nodes) and every node has even degree.
        """
        non_isolated = [node for node in self._nodes if self.degree(node) > 0]
        if not non_isolated:
            return True
        if any(self.degree(node) % 2 != 0 for node in non_isolated):
            return False
        seen = {non_isolated[0]}
        frontier = [non_isolated[0]]
        while frontier:
            node = frontier.pop()
            for neighbour in self._adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return set(non_isolated) <= seen

    def is_bipartite(self) -> bool:
        """Whether the graph is 2-colourable."""
        return self.bipartition() is not None

    def bipartition(self) -> tuple[frozenset[Node], frozenset[Node]] | None:
        """A 2-colouring as a pair of node sets, or ``None`` if not bipartite."""
        colour: dict[Node, int] = {}
        for start in self._nodes:
            if start in colour:
                continue
            colour[start] = 0
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbour in self._adjacency[node]:
                    if neighbour not in colour:
                        colour[neighbour] = 1 - colour[node]
                        frontier.append(neighbour)
                    elif colour[neighbour] == colour[node]:
                        return None
        left = frozenset(node for node, c in colour.items() if c == 0)
        right = frozenset(node for node, c in colour.items() if c == 1)
        return left, right

    def distance(self, source: Node, target: Node) -> int | None:
        """Length of a shortest path between two nodes, or ``None`` if disconnected."""
        if source == target:
            return 0
        seen = {source}
        frontier = [source]
        dist = 0
        while frontier:
            dist += 1
            next_frontier: list[Node] = []
            for node in frontier:
                for neighbour in self._adjacency[node]:
                    if neighbour == target:
                        return dist
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def subgraph(self, keep: Iterable[Node]) -> "Graph":
        """The induced subgraph on the given nodes."""
        keep_set = set(keep)
        missing = keep_set - set(self._nodes)
        if missing:
            raise KeyError(f"nodes {sorted(missing, key=_sort_key)!r} are not in the graph")
        edges = [(u, v) for u, v in self._edges if u in keep_set and v in keep_set]
        return Graph(nodes=keep_set, edges=edges)

    def remove_edges(self, edges: Iterable[tuple[Node, Node]]) -> "Graph":
        """A copy of the graph with the given edges removed."""
        removed = {frozenset(edge) for edge in edges}
        kept = [(u, v) for u, v in self._edges if frozenset((u, v)) not in removed]
        return Graph(nodes=self._nodes, edges=kept)

    def relabel(self, mapping: Mapping[Node, Node]) -> "Graph":
        """A copy of the graph with nodes relabelled through ``mapping``.

        Nodes missing from ``mapping`` keep their labels.  The mapping must be
        injective on the node set.
        """
        new_label = {node: mapping.get(node, node) for node in self._nodes}
        if len(set(new_label.values())) != len(new_label):
            raise ValueError("relabelling is not injective on the node set")
        return Graph(
            nodes=new_label.values(),
            edges=[(new_label[u], new_label[v]) for u, v in self._edges],
        )

    def disjoint_union(self, other: "Graph") -> "Graph":
        """Disjoint union; nodes are tagged with 0 (self) and 1 (other)."""
        nodes = [(0, node) for node in self._nodes] + [(1, node) for node in other.nodes]
        edges = [((0, u), (0, v)) for u, v in self._edges]
        edges += [((1, u), (1, v)) for u, v in other.edges]
        return Graph(nodes=nodes, edges=edges)

    # ------------------------------------------------------------------ #
    # Interoperability
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> Any:
        """Convert to a :class:`networkx.Graph` (isolated nodes preserved)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self._nodes)
        nx_graph.add_edges_from(self._edges)
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph: Any) -> "Graph":
        """Build a :class:`Graph` from a :class:`networkx.Graph`."""
        return cls(nodes=nx_graph.nodes(), edges=nx_graph.edges())

    # ------------------------------------------------------------------ #
    # Value-object protocol
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict[str, Any]:
        # Engine caches are process-local; keep pickled payloads lean.
        return {
            "_adjacency": self._adjacency,
            "_nodes": self._nodes,
            "_edges": self._edges,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._adjacency = state["_adjacency"]
        self._nodes = state["_nodes"]
        self._edges = state["_edges"]
        self._hash = None
        self._default_compiled = None

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._nodes == other._nodes and self._adjacency == other._adjacency

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._nodes, self._edges))
        return self._hash

    def __repr__(self) -> str:
        return f"Graph(nodes={len(self._nodes)}, edges={len(self._edges)})"
