"""Graph substrate: simple undirected graphs, port numberings and generators.

This subpackage provides every graph-theoretic object the paper relies on:

* :class:`~repro.graphs.graph.Graph` -- immutable simple undirected graphs of
  bounded degree (the family ``F(Delta)`` of Section 1.1).
* :class:`~repro.graphs.ports.PortNumbering` -- port numberings and consistent
  port numberings (Section 1.2, Figures 1 and 2).
* :mod:`~repro.graphs.generators` -- structured graph families, including the
  three-regular graph with no perfect matching of Figure 9 and the gadget pair
  of Theorem 13.
* :mod:`~repro.graphs.matching` -- matchings, 1-factors and 1-factorisations
  (Lemmas 15 and 16), plus exact minimum vertex covers for small graphs.
* :mod:`~repro.graphs.covers` -- the bipartite double cover construction of
  Lemma 15 / Figure 8 and symmetric port numberings of regular graphs.
"""

from repro.graphs.graph import Graph
from repro.graphs.ports import (
    PortNumbering,
    all_port_numberings,
    consistent_port_numbering,
    local_type,
    random_port_numbering,
)
from repro.graphs.generators import (
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    double_cover_graph,
    figure9_graph,
    from_networkx,
    grid_graph,
    hypercube_graph,
    odd_odd_gadget_pair,
    path_graph,
    random_lift,
    random_regular_graph,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.matching import (
    has_perfect_matching,
    maximum_matching,
    minimum_vertex_cover,
    one_factorisation,
)
from repro.graphs.covers import (
    bipartite_double_cover,
    local_view,
    symmetric_port_numbering,
)

__all__ = [
    "Graph",
    "PortNumbering",
    "all_port_numberings",
    "consistent_port_numbering",
    "local_type",
    "random_port_numbering",
    "circulant_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "double_cover_graph",
    "figure9_graph",
    "from_networkx",
    "grid_graph",
    "hypercube_graph",
    "odd_odd_gadget_pair",
    "path_graph",
    "random_lift",
    "random_regular_graph",
    "random_tree",
    "star_graph",
    "torus_graph",
    "has_perfect_matching",
    "maximum_matching",
    "minimum_vertex_cover",
    "one_factorisation",
    "bipartite_double_cover",
    "local_view",
    "symmetric_port_numbering",
]
