"""Covers, double covers and symmetric port numberings (Lemma 15, Figure 8).

Lemma 15 shows that every regular graph admits a port numbering under which
all nodes are bisimilar in the K+,+ encoding: lift the graph to its bipartite
double cover ``G*``, decompose ``G*`` into 1-factors, and use factor ``i`` to
wire output port ``i`` to input port ``i`` everywhere.  This module implements
that construction, plus truncated universal-cover views ("local views") that
are the graph-theoretic counterpart of bounded bisimilarity.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, Node
from repro.graphs.matching import one_factorisation
from repro.graphs.ports import PortNumbering


def bipartite_double_cover(graph: Graph) -> Graph:
    """The bipartite double cover ``G*`` of ``graph``.

    Nodes are ``(v, 1)`` and ``(v, 2)`` for every node ``v``; every edge
    ``{u, v}`` of the original graph lifts to the two edges
    ``{(u, 1), (v, 2)}`` and ``{(v, 1), (u, 2)}``.  If the original graph is
    ``k``-regular, so is the double cover, and the double cover is always
    bipartite (Figure 8).
    """
    nodes = [(v, 1) for v in graph.nodes] + [(v, 2) for v in graph.nodes]
    edges = []
    for u, v in graph.edges:
        edges.append(((u, 1), (v, 2)))
        edges.append(((v, 1), (u, 2)))
    return Graph(nodes=nodes, edges=edges)


def symmetric_port_numbering(graph: Graph) -> PortNumbering:
    """A port numbering of a regular graph under which all nodes look alike.

    This is the construction in the proof of Lemma 15: decompose the bipartite
    double cover into 1-factors ``E_1, ..., E_k`` and let output port ``i`` of
    ``v`` lead to the node matched with ``(v, 1)`` in ``E_i`` while input port
    ``i`` of ``u`` listens to the node matched with ``(u, 2)`` in ``E_i``.
    Consequently the relation ``R(i, j)`` of the K+,+ encoding is non-empty
    only for ``i == j``, and the full relation ``V x V`` is a bisimulation, so
    all nodes of the graph are bisimilar.

    The resulting port numbering is in general *inconsistent*; Lemma 16 shows
    it cannot be made consistent when the graph is odd-regular without a
    1-factor (e.g. the Figure 9 graph).

    Raises
    ------
    ValueError
        If the graph is not regular.
    """
    if not graph.is_regular():
        raise ValueError("symmetric_port_numbering requires a regular graph")
    if not graph.nodes:
        raise ValueError("symmetric_port_numbering requires a non-empty graph")
    double_cover = bipartite_double_cover(graph)
    factors = one_factorisation(double_cover)
    outgoing: dict[Node, list[Node]] = {v: [] for v in graph.nodes}
    incoming: dict[Node, list[Node]] = {v: [] for v in graph.nodes}
    for factor in factors:
        partner_of_copy1: dict[Node, Node] = {}
        partner_of_copy2: dict[Node, Node] = {}
        for edge in factor:
            (a, a_side), (b, b_side) = tuple(edge)
            if a_side == 1:
                source, target = a, b
            else:
                source, target = b, a
            partner_of_copy1[source] = target
            partner_of_copy2[target] = source
        for v in graph.nodes:
            outgoing[v].append(partner_of_copy1[v])
            incoming[v].append(partner_of_copy2[v])
    return PortNumbering(graph, outgoing, incoming)


# ---------------------------------------------------------------------- #
# Local views (truncated universal covers)
# ---------------------------------------------------------------------- #


def _view_builder(graph: Graph, counting: bool):
    """A memoized ``build(node, depth)`` closure for truncated-cover views.

    The view of ``node`` at depth ``d`` depends only on ``(node, d)``, yet the
    naive recursion rebuilds it once per tree position -- exponentially many
    times in the radius on cyclic graphs.  Memoising on ``(node, depth)``
    bounds the work by ``n * (radius + 1)`` subtree constructions.  Distinct
    ``(node, depth)`` keys with equal views are additionally interned to one
    tuple object, so comparisons between shared subtrees hit the identity
    fast path when views are sorted or grouped.
    """
    memo: dict[tuple[Node, int], tuple] = {}
    intern: dict[tuple, tuple] = {}

    def build(current: Node, depth: int) -> tuple:
        key = (current, depth)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if depth == 0:
            result = (graph.degree(current),)
        else:
            children = [build(neighbour, depth - 1) for neighbour in graph.neighbors(current)]
            children.sort()
            if not counting:
                deduplicated = []
                for child in children:
                    if not deduplicated or deduplicated[-1] is not child:
                        deduplicated.append(child)
                children = deduplicated
            result = (graph.degree(current), tuple(children))
        result = intern.setdefault(result, result)
        memo[key] = result
        return result

    return build


def local_view(graph: Graph, node: Node, radius: int, counting: bool = True) -> tuple:
    """A canonical encoding of the radius-``radius`` view of ``node``.

    The view is the truncated universal cover rooted at ``node``: a node of the
    tree is labelled by its degree and its children are the views of its graph
    neighbours at radius one less.  With ``counting=True`` the children are
    kept as a sorted tuple (multiset semantics, matching graded bisimilarity);
    with ``counting=False`` duplicate children are merged (set semantics,
    matching plain bisimilarity in the K-,- encoding).

    Two nodes have equal views at radius ``r`` exactly when they are
    ``r``-round (graded) bisimilar in K-,-, which is what any algorithm in
    SB / MB can ever learn about its surroundings in ``r`` rounds.  Identical
    subtrees are built once per ``(node, depth)`` pair and shared, so large
    radii stay linear in ``n * radius`` instead of exponential.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return _view_builder(graph, counting)(node, radius)


def view_classes(graph: Graph, radius: int, counting: bool = True) -> dict[tuple, frozenset[Node]]:
    """Group nodes by their radius-``radius`` local view.

    All views are built through one shared memo, so common subtrees across
    different root nodes are constructed once.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    build = _view_builder(graph, counting)
    groups: dict[tuple, set[Node]] = {}
    for node in graph.nodes:
        groups.setdefault(build(node, radius), set()).add(node)
    return {view: frozenset(nodes) for view, nodes in groups.items()}
