"""Matchings, 1-factors and exact vertex covers.

Lemma 15 of the paper relies on the classical fact that the edge set of a
``k``-regular bipartite graph decomposes into ``k`` disjoint perfect matchings
(1-factors); Lemma 16 and Theorem 17 rely on regular graphs *without* a
1-factor.  This module provides the matching machinery for both, plus an exact
minimum vertex cover used to measure approximation ratios in experiment E11.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from repro.graphs.graph import Graph, Node

Matching = frozenset[frozenset[Node]]


def _to_edge_set(edges: Iterable[tuple[Node, Node]]) -> Matching:
    return frozenset(frozenset(edge) for edge in edges)


def maximum_matching(graph: Graph) -> Matching:
    """A maximum-cardinality matching (as a set of 2-element frozensets)."""
    import networkx as nx

    nx_graph = graph.to_networkx()
    matching = nx.max_weight_matching(nx_graph, maxcardinality=True)
    return _to_edge_set(matching)


def maximal_matching(graph: Graph) -> Matching:
    """A (greedy, deterministic) maximal matching -- not necessarily maximum."""
    matched: set[Node] = set()
    edges = []
    for u, v in graph.edges:
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            edges.append((u, v))
    return _to_edge_set(edges)


def is_matching(graph: Graph, edges: Iterable[frozenset[Node]]) -> bool:
    """Whether ``edges`` is a matching of ``graph`` (disjoint graph edges)."""
    seen: set[Node] = set()
    for edge in edges:
        endpoints = tuple(edge)
        if len(endpoints) != 2:
            return False
        u, v = endpoints
        if not graph.has_edge(u, v):
            return False
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True


def is_perfect_matching(graph: Graph, edges: Iterable[frozenset[Node]]) -> bool:
    """Whether ``edges`` is a 1-factor of ``graph`` (covers every node exactly once)."""
    edges = list(edges)
    if not is_matching(graph, edges):
        return False
    covered = {node for edge in edges for node in edge}
    return covered == set(graph.nodes)


def has_perfect_matching(graph: Graph) -> bool:
    """Whether ``graph`` has a 1-factor.

    The Figure 9 graph is the paper's canonical example of a connected
    3-regular graph for which this returns ``False``.
    """
    if graph.number_of_nodes % 2 != 0:
        return False
    return len(maximum_matching(graph)) * 2 == graph.number_of_nodes


def perfect_matching(graph: Graph) -> Matching:
    """A 1-factor of ``graph``; raises :class:`ValueError` if none exists."""
    matching = maximum_matching(graph)
    if len(matching) * 2 != graph.number_of_nodes:
        raise ValueError("graph has no perfect matching")
    return matching


def one_factorisation(graph: Graph) -> list[Matching]:
    """Decompose a regular bipartite graph into disjoint 1-factors.

    By König's edge-colouring theorem (a corollary of Hall's marriage theorem,
    as invoked in Lemma 15), the edge set of every ``k``-regular bipartite
    graph is the union of ``k`` mutually disjoint perfect matchings.  The
    decomposition is computed by repeatedly extracting a perfect matching with
    Hopcroft-Karp and deleting it.

    Raises
    ------
    ValueError
        If the graph is not bipartite or not regular.
    """
    import networkx as nx

    if not graph.is_regular():
        raise ValueError("one_factorisation requires a regular graph")
    bipartition = graph.bipartition()
    if bipartition is None:
        raise ValueError("one_factorisation requires a bipartite graph")
    if not graph.nodes:
        return []
    k = graph.degree(graph.nodes[0])
    left, _right = bipartition
    factors: list[Matching] = []
    remaining = graph
    for _ in range(k):
        nx_graph = remaining.to_networkx()
        matching = nx.bipartite.hopcroft_karp_matching(nx_graph, top_nodes=set(left))
        factor = _to_edge_set(
            (u, v) for u, v in matching.items() if u in left
        )
        if len(factor) * 2 != graph.number_of_nodes:
            raise ValueError("graph is not regular bipartite; 1-factor extraction failed")
        factors.append(factor)
        remaining = remaining.remove_edges(tuple(edge) for edge in factor)
    if remaining.number_of_edges != 0:
        raise ValueError("leftover edges after extracting all 1-factors")
    return factors


# ---------------------------------------------------------------------- #
# Injections along an allowed relation (Hall's marriage theorem)
# ---------------------------------------------------------------------- #


def _hopcroft_karp_size(adjacency: list[list[int]], num_targets: int) -> int:
    """Size of a maximum matching of the bipartite graph ``adjacency``.

    ``adjacency[i]`` lists the target indices reachable from source ``i``.
    Pure-python Hopcroft-Karp: BFS builds layers from free sources, DFS
    augments along vertex-disjoint shortest paths, ``O(E * sqrt(V))`` total.
    """
    num_sources = len(adjacency)
    INF = num_sources + num_targets + 1
    match_source = [-1] * num_sources
    match_target = [-1] * num_targets
    distance = [0] * num_sources
    matched = 0
    while True:
        queue = []
        for i in range(num_sources):
            if match_source[i] == -1:
                distance[i] = 0
                queue.append(i)
            else:
                distance[i] = INF
        found_free_target = False
        head = 0
        while head < len(queue):
            i = queue[head]
            head += 1
            for j in adjacency[i]:
                partner = match_target[j]
                if partner == -1:
                    found_free_target = True
                elif distance[partner] == INF:
                    distance[partner] = distance[i] + 1
                    queue.append(partner)
        if not found_free_target:
            return matched

        def augment(root: int) -> bool:
            # Iterative DFS along the BFS layers (augmenting paths can be as
            # long as the vertex count, so recursion would overflow the
            # interpreter stack on large instances).  ``choices[k]`` is the
            # edge taken from stack level ``k`` into level ``k + 1``.
            stack = [(root, iter(adjacency[root]))]
            choices: list[tuple[int, int]] = []
            while stack:
                i, targets_iter = stack[-1]
                for j in targets_iter:
                    partner = match_target[j]
                    if partner == -1:
                        # Free target: flip every edge along the path.
                        match_source[i] = j
                        match_target[j] = i
                        for path_source, path_target in choices:
                            match_source[path_source] = path_target
                            match_target[path_target] = path_source
                        return True
                    if distance[partner] == distance[i] + 1:
                        choices.append((i, j))
                        stack.append((partner, iter(adjacency[partner])))
                        break
                else:
                    distance[i] = INF
                    stack.pop()
                    if choices:
                        choices.pop()
            return False

        for i in range(num_sources):
            if match_source[i] == -1 and augment(i):
                matched += 1


def injection_exists(
    sources: Iterable,
    targets: Iterable,
    allowed: "set[tuple]",
) -> bool:
    """Whether every source can be matched to a *distinct* allowed target.

    By Hall's marriage theorem this decides conditions B2*/B3* of graded
    bisimulations (Section 4.2): the subsets-of-successors quantifier holds
    iff the sources inject into the targets along the ``allowed`` relation.
    A greedy first-fit pass handles the common case where ``allowed``
    already pairs each source with a distinct target; only on a greedy
    conflict does the full Hopcroft-Karp matching run.
    """
    source_list = list(sources)
    target_list = list(targets)
    if len(source_list) > len(target_list):
        return False
    if not source_list:
        return True
    adjacency: list[list[int]] = []
    for source in source_list:
        row = [j for j, target in enumerate(target_list) if (source, target) in allowed]
        if not row:
            return False
        adjacency.append(row)
    # Greedy early exit: assign each source the first unused allowed target.
    used: set[int] = set()
    for row in adjacency:
        for j in row:
            if j not in used:
                used.add(j)
                break
        else:
            break
    else:
        return True
    return _hopcroft_karp_size(adjacency, len(target_list)) == len(adjacency)


# ---------------------------------------------------------------------- #
# Vertex covers
# ---------------------------------------------------------------------- #


def is_vertex_cover(graph: Graph, cover: Iterable[Node]) -> bool:
    """Whether ``cover`` touches every edge of ``graph``."""
    cover_set = set(cover)
    return all(u in cover_set or v in cover_set for u, v in graph.edges)


def minimum_vertex_cover(graph: Graph) -> frozenset[Node]:
    """An exact minimum vertex cover.

    Uses a bounded search over subsets seeded by the maximum-matching lower
    bound; intended for the small graphs of experiment E11 (tens of nodes with
    few edges), not for large instances.
    """
    if graph.number_of_edges == 0:
        return frozenset()
    lower_bound = len(maximum_matching(graph))
    # Only nodes incident to at least one edge can usefully appear in a cover.
    candidates = sorted(
        (node for node in graph.nodes if graph.degree(node) > 0),
        key=lambda node: -graph.degree(node),
    )
    for size in range(lower_bound, len(candidates) + 1):
        for subset in itertools.combinations(candidates, size):
            if is_vertex_cover(graph, subset):
                return frozenset(subset)
    raise RuntimeError("unreachable: the full candidate set is always a cover")


def vertex_cover_from_matching(graph: Graph, matching: Iterable[frozenset[Node]]) -> frozenset[Node]:
    """The vertex cover consisting of both endpoints of every matching edge.

    For a *maximal* matching this is the classical centralised 2-approximation
    of minimum vertex cover; the distributed variants of Section 3.3 emulate
    this bound in weak models.
    """
    return frozenset(node for edge in matching for node in edge)
