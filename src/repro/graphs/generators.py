"""Graph generators for the families used throughout the paper.

Besides the standard families (paths, cycles, stars, complete graphs, grids,
hypercubes, random regular graphs) this module builds the two bespoke witness
constructions of the paper:

* :func:`figure9_graph` -- the connected 3-regular graph with no perfect
  matching of Figure 9 (Bondy & Murty, Figure 5.10), used in Theorem 17 to
  separate VV from VVc.
* :func:`odd_odd_gadget_pair` -- a graph whose two distinguished "white" nodes
  are bisimilar in the K-,- encoding yet must produce different outputs for the
  odd-odd-neighbours problem, used in Theorem 13 to separate SB from MB.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Any

from repro.graphs.graph import Graph, Node


def path_graph(n: int) -> Graph:
    """The path on ``n`` nodes ``0 - 1 - ... - (n-1)``."""
    if n < 0:
        raise ValueError("number of nodes must be non-negative")
    return Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("a cycle needs at least three nodes")
    return Graph(nodes=range(n), edges=[(i, (i + 1) % n) for i in range(n)])


def star_graph(leaves: int) -> Graph:
    """The star ``K_{1,leaves}``: node ``0`` is the centre, ``1..leaves`` are leaves.

    Theorem 11 separates VB from SV with the problem of electing a single leaf
    in such a star.
    """
    if leaves < 1:
        raise ValueError("a star needs at least one leaf")
    return Graph(nodes=range(leaves + 1), edges=[(0, i) for i in range(1, leaves + 1)])


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    if n < 1:
        raise ValueError("a complete graph needs at least one node")
    return Graph(nodes=range(n), edges=[(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_bipartite_graph(m: int, n: int) -> Graph:
    """The complete bipartite graph ``K_{m,n}``; left nodes ``('L', i)``, right ``('R', j)``."""
    if m < 1 or n < 1:
        raise ValueError("both sides of a complete bipartite graph must be non-empty")
    left = [("L", i) for i in range(m)]
    right = [("R", j) for j in range(n)]
    return Graph(nodes=left + right, edges=[(u, v) for u in left for v in right])


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid graph with nodes ``(r, c)``."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
    return Graph(nodes=nodes, edges=edges)


def circulant_graph(n: int, jumps: Sequence[int] = (1,)) -> Graph:
    """The circulant graph ``C_n(jumps)``: node ``i`` is adjacent to ``i ± j (mod n)``.

    Every jump must satisfy ``1 <= j <= n // 2``; the graph is
    ``2k``-regular for ``k`` distinct jumps (one edge less per node for the
    jump ``n/2`` when ``n`` is even).  ``C_n(1)`` is the cycle, ``C_n(1..n//2)``
    the complete graph.
    """
    if n < 3:
        raise ValueError("a circulant graph needs at least three nodes")
    jump_set = sorted(set(jumps))
    if not jump_set:
        raise ValueError("a circulant graph needs at least one jump")
    if any(j < 1 or j > n // 2 for j in jump_set):
        raise ValueError(f"jumps must lie in [1, {n // 2}] for n={n}; got {jump_set}")
    edges: set[frozenset[int]] = set()
    for i in range(n):
        for j in jump_set:
            edges.add(frozenset((i, (i + j) % n)))
    return Graph(nodes=range(n), edges=[tuple(sorted(edge)) for edge in edges])


def torus_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` torus (wraparound grid) with nodes ``(r, c)``.

    Both dimensions must be at least 3 so that the wraparound edges do not
    collapse into parallel edges; the result is 4-regular and vertex-transitive.
    """
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3 (smaller wraps collapse edges)")
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append(((r, c), ((r + 1) % rows, c)))
            edges.append(((r, c), (r, (c + 1) % cols)))
    return Graph(nodes=nodes, edges=edges)


def random_tree(n: int, seed: int | None = None) -> Graph:
    """A uniformly random labelled tree on ``n`` nodes (via a Prüfer sequence).

    Seed-deterministic: the same ``(n, seed)`` always yields the same tree.
    """
    if n < 1:
        raise ValueError("a tree needs at least one node")
    if n == 1:
        return Graph(nodes=[0])
    if n == 2:
        return Graph(nodes=[0, 1], edges=[(0, 1)])
    rng = random.Random(seed)
    pruefer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for node in pruefer:
        degree[node] += 1
    edges: list[tuple[int, int]] = []
    # Standard Prüfer decoding: repeatedly join the smallest leaf to the next
    # sequence entry.  A heap keeps the leaf choice deterministic.
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for node in pruefer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, node))
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return Graph(nodes=range(n), edges=edges)


def double_cover_graph(graph: Graph) -> Graph:
    """The bipartite double cover of ``graph`` (Lemma 15 / Figure 8).

    Thin wrapper over :func:`repro.graphs.covers.bipartite_double_cover` so
    the construction is available from the generator namespace (and the
    campaign graph-family registry) alongside the base families.  Nodes are
    ``(v, 1)`` / ``(v, 2)``; degrees are preserved.
    """
    from repro.graphs.covers import bipartite_double_cover

    return bipartite_double_cover(graph)


def random_lift(graph: Graph, k: int, seed: int | None = None) -> Graph:
    """A uniformly random ``k``-lift (``k``-fold covering graph) of ``graph``.

    Every node ``v`` becomes the fibre ``(v, 0), ..., (v, k-1)``; every edge
    ``{u, v}`` becomes the perfect matching ``(u, i) - (v, pi(i))`` for a
    permutation ``pi`` drawn independently per edge.  Degrees are preserved
    (the projection onto ``graph`` is a covering map), which is what makes
    lifts interesting scenario fodder: anonymous algorithms cannot tell a
    graph from its lifts.  Seed-deterministic; ``k = 2`` with the identity
    permutations replaced by swaps recovers double covers.
    """
    if k < 1:
        raise ValueError("a lift needs at least one sheet")
    rng = random.Random(seed)
    nodes = [(v, i) for v in graph.nodes for i in range(k)]
    edges = []
    for u, v in graph.edges:
        permutation = list(range(k))
        rng.shuffle(permutation)
        edges.extend(((u, i), (v, permutation[i])) for i in range(k))
    return Graph(nodes=nodes, edges=edges)


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube; nodes are bit tuples."""
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    nodes = [tuple((i >> b) & 1 for b in range(dimension)) for i in range(2**dimension)]
    edges = []
    for node in nodes:
        for b in range(dimension):
            other = tuple(bit ^ 1 if pos == b else bit for pos, bit in enumerate(node))
            if node < other:
                edges.append((node, other))
    return Graph(nodes=nodes, edges=edges)


def random_regular_graph(degree: int, n: int, seed: int | None = None) -> Graph:
    """A uniformly random simple ``degree``-regular graph on ``n`` nodes.

    Delegates to :func:`networkx.random_regular_graph`; ``degree * n`` must be
    even and ``degree < n``.
    """
    import networkx as nx

    nx_graph = nx.random_regular_graph(degree, n, seed=seed)
    return Graph(nodes=nx_graph.nodes(), edges=nx_graph.edges())


def random_graph(n: int, probability: float, seed: int | None = None) -> Graph:
    """An Erdos-Renyi ``G(n, p)`` graph."""
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < probability
    ]
    return Graph(nodes=range(n), edges=edges)


def random_bounded_degree_graph(n: int, max_degree: int, seed: int | None = None) -> Graph:
    """A random graph on ``n`` nodes whose maximum degree is at most ``max_degree``.

    Edges are inserted in a random order and kept whenever neither endpoint has
    reached the degree bound, so the output is a member of ``F(max_degree)``.
    """
    rng = random.Random(seed)
    candidates = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(candidates)
    degree = {i: 0 for i in range(n)}
    edges = []
    for u, v in candidates:
        if degree[u] < max_degree and degree[v] < max_degree:
            edges.append((u, v))
            degree[u] += 1
            degree[v] += 1
    return Graph(nodes=range(n), edges=edges)


def from_networkx(nx_graph: Any) -> Graph:
    """Convert a :class:`networkx.Graph` into a :class:`Graph`."""
    return Graph.from_networkx(nx_graph)


# ---------------------------------------------------------------------- #
# Paper-specific witness constructions
# ---------------------------------------------------------------------- #


def _matchless_gadget(tag: str) -> tuple[list[Node], list[tuple[Node, Node]], Node]:
    """One of the three 5-node gadgets of the Figure 9 graph.

    The gadget is ``K_4`` on ``{b, c, d, e}`` minus the edge ``b-c``, plus a
    connector node ``a`` adjacent to ``b`` and ``c``.  Inside the gadget the
    connector has degree 2 and every other node has degree 3, so attaching the
    connector to the central node makes the whole graph 3-regular.
    """
    a, b, c, d, e = ((tag, label) for label in "abcde")
    nodes = [a, b, c, d, e]
    edges = [(a, b), (a, c), (b, d), (b, e), (c, d), (c, e), (d, e)]
    return nodes, edges, a


def figure9_graph() -> Graph:
    """The 3-regular connected graph with no perfect matching of Figure 9.

    A central node ``'z'`` is joined to the connector of three identical
    5-node gadgets.  Removing ``'z'`` leaves three odd components, so by
    Tutte's theorem the graph has no 1-factor; it is the witness used in
    Theorem 17 to separate VV from VVc.
    """
    nodes: list[Node] = ["z"]
    edges: list[tuple[Node, Node]] = []
    for tag in ("g1", "g2", "g3"):
        gadget_nodes, gadget_edges, connector = _matchless_gadget(tag)
        nodes.extend(gadget_nodes)
        edges.extend(gadget_edges)
        edges.append(("z", connector))
    return Graph(nodes=nodes, edges=edges)


def matchless_regular_graph(copies: int = 3) -> Graph:
    """A generalisation of :func:`figure9_graph` with ``copies`` gadgets.

    For odd ``copies >= 3`` the construction yields a connected graph in which
    the central node has degree ``copies``; for ``copies == 3`` it is 3-regular
    and matchless.  Larger odd values give non-regular matchless graphs useful
    for stress-testing the matching substrate.
    """
    if copies < 3 or copies % 2 == 0:
        raise ValueError("copies must be an odd integer >= 3")
    nodes: list[Node] = ["z"]
    edges: list[tuple[Node, Node]] = []
    for index in range(copies):
        gadget_nodes, gadget_edges, connector = _matchless_gadget(f"g{index + 1}")
        nodes.extend(gadget_nodes)
        edges.extend(gadget_edges)
        edges.append(("z", connector))
    return Graph(nodes=nodes, edges=edges)


def odd_odd_gadget_pair() -> tuple[Graph, Node, Node]:
    """The Theorem 13 witness: a graph and two bisimilar nodes with different answers.

    Returns ``(graph, w1, w2)`` where

    * ``w1`` has exactly one odd-degree neighbour (so the odd-odd-neighbours
      problem demands output 1), and
    * ``w2`` has exactly two odd-degree neighbours (output 0),

    yet ``w1`` and ``w2`` are bisimilar in the K-,- encoding of the graph for
    every port numbering, because plain (non-graded) bisimulation cannot count
    successors.  The two nodes live in different connected components of the
    same graph, matching the paper's side-by-side illustration.
    """
    # Component A: w1 - one leaf neighbour (odd degree) and two degree-2 neighbours.
    component_a_edges = [
        (("A", "w"), ("A", "x1")),
        (("A", "w"), ("A", "y1")),
        (("A", "w"), ("A", "y2")),
        (("A", "y1"), ("A", "z1")),
        (("A", "y2"), ("A", "z2")),
    ]
    # Component B: w2 - two leaf neighbours (odd degree) and one degree-2 neighbour.
    component_b_edges = [
        (("B", "w"), ("B", "x1")),
        (("B", "w"), ("B", "x2")),
        (("B", "w"), ("B", "y1")),
        (("B", "y1"), ("B", "z1")),
    ]
    graph = Graph(edges=component_a_edges + component_b_edges)
    return graph, ("A", "w"), ("B", "w")


def all_graphs_with_max_degree(n: int, max_degree: int) -> list[Graph]:
    """Every simple graph on nodes ``0..n-1`` with maximum degree at most ``max_degree``.

    Exhaustive (``2**(n(n-1)/2)`` candidate edge sets), intended for ``n <= 5``
    in adversarial tests.
    """
    import itertools

    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    graphs = []
    for bits in itertools.product((False, True), repeat=len(pairs)):
        edges = [pair for pair, keep in zip(pairs, bits) if keep]
        graph = Graph(nodes=range(n), edges=edges)
        if graph.max_degree() <= max_degree:
            graphs.append(graph)
    return graphs
