"""Port numberings (Section 1.2 of the paper).

A *port* of a graph ``G`` is a pair ``(v, i)`` with ``i in [deg(v)]``.  A port
numbering is a bijection ``p`` on the set of ports such that the induced
relation ``A(p)`` equals the adjacency relation of ``G``: if node ``v`` sends a
message to its port ``(v, i)`` and ``p((v, i)) = (u, j)``, the message is
received by the neighbour ``u`` through its port ``(u, j)``.

Equivalently (and this is the representation used here) a port numbering is a
pair of families of bijections, one per node:

* ``outgoing[v]`` -- which neighbour each *output* port of ``v`` leads to, and
* ``incoming[v]`` -- which neighbour each *input* port of ``v`` listens to.

A port numbering is *consistent* when ``p`` is an involution
(``p(p((v, i))) = (v, i)``), i.e. output port ``i`` and input port ``i`` of a
node are attached to the same neighbour on both ends (Figure 2).
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator, Mapping, Sequence

from repro.graphs.graph import Graph, Node

Port = tuple[Node, int]


class PortNumbering:
    """A port numbering of a graph.

    Parameters
    ----------
    graph:
        The underlying graph.
    outgoing:
        For every node ``v``, a sequence of its neighbours; position ``i - 1``
        holds the neighbour reached through output port ``i``.
    incoming:
        For every node ``v``, a sequence of its neighbours; position ``j - 1``
        holds the neighbour whose messages arrive through input port ``j``.
        When omitted, ``incoming`` defaults to ``outgoing``, which yields a
        consistent port numbering.
    """

    # ``_compiled_instance`` is a cache slot owned by the execution engine
    # (repro.execution.engine): compiling a numbering into flat delivery
    # arrays is pure, so the result can live with the numbering itself.
    __slots__ = ("_graph", "_outgoing", "_incoming", "_incoming_index", "_compiled_instance")

    def __init__(
        self,
        graph: Graph,
        outgoing: Mapping[Node, Sequence[Node]],
        incoming: Mapping[Node, Sequence[Node]] | None = None,
    ) -> None:
        self._graph = graph
        self._outgoing = {node: tuple(outgoing.get(node, ())) for node in graph.nodes}
        if incoming is None:
            self._incoming = dict(self._outgoing)
        else:
            self._incoming = {node: tuple(incoming.get(node, ())) for node in graph.nodes}
        self._validate()
        self._compiled_instance = None
        self._incoming_index = {
            node: {neighbour: j + 1 for j, neighbour in enumerate(self._incoming[node])}
            for node in graph.nodes
        }

    def _validate(self) -> None:
        for node in self._graph.nodes:
            neighbours = set(self._graph.neighbors(node))
            for label, family in (("outgoing", self._outgoing), ("incoming", self._incoming)):
                assignment = family.get(node)
                if not assignment and neighbours:
                    raise ValueError(f"node {node!r} has no {label} port assignment")
                if len(assignment) != len(neighbours) or set(assignment) != neighbours:
                    raise ValueError(
                        f"{label} ports of node {node!r} must enumerate its neighbours "
                        f"exactly once; got {assignment!r}"
                    )

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        return self._graph

    def ports(self) -> list[Port]:
        """All ports ``(v, i)`` of the graph, in deterministic order."""
        return [
            (node, i)
            for node in self._graph.nodes
            for i in range(1, self._graph.degree(node) + 1)
        ]

    def apply(self, node: Node, out_port: int) -> Port:
        """``p((node, out_port))``: the input port that receives from this output port."""
        target = self._outgoing[node][out_port - 1]
        return target, self._incoming_index[target][node]

    def inverse(self, node: Node, in_port: int) -> Port:
        """``p^{-1}((node, in_port))``: the output port whose messages arrive here."""
        source = self._incoming[node][in_port - 1]
        out_port = self._outgoing[source].index(node) + 1
        return source, out_port

    def __call__(self, port: Port) -> Port:
        node, out_port = port
        return self.apply(node, out_port)

    def outgoing_neighbor(self, node: Node, out_port: int) -> Node:
        """The neighbour reached through output port ``out_port`` of ``node``."""
        return self._outgoing[node][out_port - 1]

    def incoming_neighbor(self, node: Node, in_port: int) -> Node:
        """The neighbour heard through input port ``in_port`` of ``node``."""
        return self._incoming[node][in_port - 1]

    def outgoing_port(self, node: Node, neighbour: Node) -> int:
        """``pi(node, neighbour)``: the output port of ``node`` leading to ``neighbour``."""
        return self._outgoing[node].index(neighbour) + 1

    def incoming_port(self, node: Node, neighbour: Node) -> int:
        """The input port of ``node`` through which ``neighbour``'s messages arrive."""
        return self._incoming_index[node][neighbour]

    # ------------------------------------------------------------------ #
    # Structural properties
    # ------------------------------------------------------------------ #

    def is_consistent(self) -> bool:
        """Whether ``p`` is an involution (Section 1.2)."""
        for port in self.ports():
            if self(self(port)) != port:
                return False
        return True

    def as_mapping(self) -> dict[Port, Port]:
        """The port numbering as an explicit mapping ``{(v, i): p((v, i))}``."""
        return {port: self(port) for port in self.ports()}

    def with_incoming(self, incoming: Mapping[Node, Sequence[Node]]) -> "PortNumbering":
        """A copy with the same output ports but different input ports."""
        return PortNumbering(self._graph, self._outgoing, incoming)

    def outgoing_assignment(self) -> dict[Node, tuple[Node, ...]]:
        """The per-node output-port assignment (copy)."""
        return dict(self._outgoing)

    def incoming_assignment(self) -> dict[Node, tuple[Node, ...]]:
        """The per-node input-port assignment (copy)."""
        return dict(self._incoming)

    def __getstate__(self) -> dict:
        # The engine's compiled-instance cache is process-local; keep pickled
        # payloads lean and rebuild the derived index on the other side.
        return {
            "_graph": self._graph,
            "_outgoing": self._outgoing,
            "_incoming": self._incoming,
        }

    def __setstate__(self, state: dict) -> None:
        self._graph = state["_graph"]
        self._outgoing = state["_outgoing"]
        self._incoming = state["_incoming"]
        self._compiled_instance = None
        self._incoming_index = {
            node: {neighbour: j + 1 for j, neighbour in enumerate(self._incoming[node])}
            for node in self._graph.nodes
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortNumbering):
            return NotImplemented
        return (
            self._graph == other._graph
            and self._outgoing == other._outgoing
            and self._incoming == other._incoming
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._graph,
                tuple(sorted(self._outgoing.items(), key=lambda item: repr(item[0]))),
                tuple(sorted(self._incoming.items(), key=lambda item: repr(item[0]))),
            )
        )

    def __repr__(self) -> str:
        kind = "consistent" if self.is_consistent() else "general"
        return f"PortNumbering({kind}, nodes={self._graph.number_of_nodes})"


# ---------------------------------------------------------------------- #
# Constructors
# ---------------------------------------------------------------------- #


def consistent_port_numbering(graph: Graph) -> PortNumbering:
    """The canonical consistent port numbering of ``graph``.

    Output and input port ``i`` of every node are both attached to the node's
    ``i``-th neighbour in the graph's deterministic neighbour order, which
    makes the resulting ``p`` an involution.
    """
    assignment = {node: graph.neighbors(node) for node in graph.nodes}
    return PortNumbering(graph, assignment)


def random_port_numbering(
    graph: Graph,
    rng: random.Random | None = None,
    consistent: bool = False,
) -> PortNumbering:
    """A uniformly random port numbering of ``graph``.

    With ``consistent=True`` the input assignment mirrors the output
    assignment, which yields a consistent port numbering.
    """
    rng = rng or random.Random()
    outgoing: dict[Node, list[Node]] = {}
    incoming: dict[Node, list[Node]] = {}
    for node in graph.nodes:
        neighbours = list(graph.neighbors(node))
        out_order = list(neighbours)
        rng.shuffle(out_order)
        outgoing[node] = out_order
        if consistent:
            incoming[node] = out_order
        else:
            in_order = list(neighbours)
            rng.shuffle(in_order)
            incoming[node] = in_order
    return PortNumbering(graph, outgoing, incoming)


def all_port_numberings(graph: Graph, consistent_only: bool = False) -> Iterator[PortNumbering]:
    """Enumerate every port numbering of ``graph``.

    The number of port numberings is ``prod_v deg(v)!`` for consistent-only
    enumeration and ``prod_v (deg(v)!)**2`` in general, so this is intended for
    small witness graphs (adversarial verification, Section 1.4).
    """
    nodes = graph.nodes
    out_choices = [list(itertools.permutations(graph.neighbors(node))) for node in nodes]
    for out_combo in itertools.product(*out_choices):
        outgoing = dict(zip(nodes, out_combo))
        if consistent_only:
            yield PortNumbering(graph, outgoing)
            continue
        in_choices = [list(itertools.permutations(graph.neighbors(node))) for node in nodes]
        for in_combo in itertools.product(*in_choices):
            incoming = dict(zip(nodes, in_combo))
            yield PortNumbering(graph, outgoing, incoming)


def count_port_numberings(graph: Graph, consistent_only: bool = False) -> int:
    """The number of port numberings of ``graph`` (without enumerating them)."""
    import math

    total = 1
    for node in graph.nodes:
        factorial = math.factorial(graph.degree(node))
        total *= factorial if consistent_only else factorial * factorial
    return total


# ---------------------------------------------------------------------- #
# Local types (Theorem 17)
# ---------------------------------------------------------------------- #


def local_type(numbering: PortNumbering, node: Node, delta: int | None = None) -> tuple[int, ...]:
    """The local type ``t(v)`` of a node under a port numbering.

    ``t(v) = (j_1, ..., j_Delta)`` where ``j_i`` is the input-port number at the
    other end of output port ``i`` of ``v`` (``p((v, i)) = (u, j_i)``), padded
    with zeros beyond ``deg(v)``.  Theorem 17 uses local types under consistent
    port numberings to break symmetry in the class VVc(1).
    """
    graph = numbering.graph
    if delta is None:
        delta = graph.max_degree()
    degree = graph.degree(node)
    entries = [numbering.apply(node, i)[1] for i in range(1, degree + 1)]
    entries.extend(0 for _ in range(delta - degree))
    return tuple(entries)
