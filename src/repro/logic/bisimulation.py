"""Bisimulation and graded bisimulation (Section 4.2).

Two tools are provided:

* **Partition refinement** computes the coarsest (graded) bisimilarity
  equivalence on a finite model: worlds start grouped by their propositional
  label and are repeatedly split according to which blocks (for plain
  bisimilarity) or how many successors in each block (for graded
  bisimilarity) they can reach through each relation.  The bounded variant
  stops after ``k`` refinement rounds and corresponds to ``k``-round
  indistinguishability, i.e. to formulas of modal depth at most ``k``.

* **Certificate checking** verifies that an explicitly given relation ``Z`` is
  a bisimulation (conditions B1-B3) or a graded bisimulation (B1, B2*, B3*).
  Conditions B2*/B3* quantify over all subsets of the successor sets; by
  Hall's marriage theorem they are equivalent to the existence of an injection
  of ``R(v)`` into ``R'(v')`` along ``Z`` (and vice versa), which is what the
  checker computes via bipartite matching.

Fact 1 of the paper -- bisimilar worlds satisfy the same ML/MML formulas and
g-bisimilar worlds the same GML/GMML formulas -- is exercised as a
property-based test of this module.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable

from repro.logic.kripke import Index, KripkeModel, World

Partition = dict[World, int]


def _initial_partition(model: KripkeModel) -> Partition:
    labels: dict[frozenset[Hashable], int] = {}
    partition: Partition = {}
    for world in sorted(model.worlds, key=repr):
        label = model.label(world)
        if label not in labels:
            labels[label] = len(labels)
        partition[world] = labels[label]
    return partition


def _refine_once(model: KripkeModel, partition: Partition, graded: bool) -> Partition:
    indices = sorted(model.indices, key=repr)
    signatures: dict[World, tuple] = {}
    for world in model.worlds:
        per_index = []
        for index in indices:
            successor_blocks = [partition[successor] for successor in model.successors(world, index)]
            if graded:
                per_index.append(tuple(sorted(Counter(successor_blocks).items())))
            else:
                per_index.append(tuple(sorted(set(successor_blocks))))
        signatures[world] = (partition[world], tuple(per_index))
    blocks: dict[tuple, int] = {}
    refined: Partition = {}
    for world in sorted(model.worlds, key=repr):
        signature = signatures[world]
        if signature not in blocks:
            blocks[signature] = len(blocks)
        refined[world] = blocks[signature]
    return refined


def _partition_sizes(partition: Partition) -> int:
    return len(set(partition.values()))


def bisimilarity_partition(model: KripkeModel, graded: bool = False) -> Partition:
    """The coarsest (graded) bisimilarity equivalence, as a world-to-block map."""
    partition = _initial_partition(model)
    while True:
        refined = _refine_once(model, partition, graded)
        if _partition_sizes(refined) == _partition_sizes(partition):
            return refined
        partition = refined


def bounded_bisimilarity_partition(
    model: KripkeModel, rounds: int, graded: bool = False
) -> Partition:
    """The ``rounds``-round (graded) bisimilarity equivalence.

    Worlds in the same block cannot be separated by any formula of modal depth
    at most ``rounds`` (of the matching logic), hence by any local algorithm of
    the matching class running for at most ``rounds`` rounds (Theorem 2).
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    partition = _initial_partition(model)
    for _ in range(rounds):
        partition = _refine_once(model, partition, graded)
    return partition


def bisimilarity_classes(model: KripkeModel, graded: bool = False) -> list[frozenset[World]]:
    """The (graded) bisimilarity equivalence classes."""
    partition = bisimilarity_partition(model, graded=graded)
    blocks: dict[int, set[World]] = {}
    for world, block in partition.items():
        blocks.setdefault(block, set()).add(world)
    return [frozenset(worlds) for _, worlds in sorted(blocks.items())]


def bisimilar_within(model: KripkeModel, worlds: Iterable[World], graded: bool = False) -> bool:
    """Whether all the given worlds of one model are pairwise (graded) bisimilar."""
    worlds = list(worlds)
    if len(worlds) <= 1:
        return True
    partition = bisimilarity_partition(model, graded=graded)
    return len({partition[world] for world in worlds}) == 1


def are_bisimilar(
    first_model: KripkeModel,
    first_world: World,
    second_model: KripkeModel,
    second_world: World,
    graded: bool = False,
) -> bool:
    """Whether two pointed models are (graded) bisimilar.

    The two models are combined into their disjoint union and the coarsest
    bisimilarity partition of the union is consulted.
    """
    union = first_model.disjoint_union(second_model)
    partition = bisimilarity_partition(union, graded=graded)
    return partition[(0, first_world)] == partition[(1, second_world)]


# ---------------------------------------------------------------------- #
# Certificate checking
# ---------------------------------------------------------------------- #


def _atoms_agree(
    first_model: KripkeModel, first_world: World, second_model: KripkeModel, second_world: World
) -> bool:
    propositions = first_model.propositions | second_model.propositions
    return all(
        first_model.holds(prop, first_world) == second_model.holds(prop, second_world)
        for prop in propositions
    )


def is_bisimulation(
    first_model: KripkeModel,
    second_model: KripkeModel,
    relation: Iterable[tuple[World, World]],
) -> bool:
    """Whether ``relation`` is a bisimulation between the two models (B1-B3)."""
    pairs = set(relation)
    if not pairs:
        return False
    indices = first_model.indices | second_model.indices
    for v, v_prime in pairs:
        if not _atoms_agree(first_model, v, second_model, v_prime):
            return False
        for index in indices:
            # (B2) forth
            for w in first_model.successors(v, index):
                if not any(
                    (w, w_prime) in pairs for w_prime in second_model.successors(v_prime, index)
                ):
                    return False
            # (B3) back
            for w_prime in second_model.successors(v_prime, index):
                if not any((w, w_prime) in pairs for w in first_model.successors(v, index)):
                    return False
    return True


def _has_injection(
    sources: tuple[World, ...],
    targets: tuple[World, ...],
    allowed: set[tuple[World, World]],
) -> bool:
    """Whether every source can be matched to a distinct allowed target (Hall)."""
    import networkx as nx

    if len(sources) > len(targets):
        return False
    if not sources:
        return True
    graph = nx.Graph()
    source_labels = [("s", i) for i in range(len(sources))]
    target_labels = [("t", j) for j in range(len(targets))]
    graph.add_nodes_from(source_labels, bipartite=0)
    graph.add_nodes_from(target_labels, bipartite=1)
    for i, source in enumerate(sources):
        for j, target in enumerate(targets):
            if (source, target) in allowed:
                graph.add_edge(("s", i), ("t", j))
    matching = nx.bipartite.maximum_matching(graph, top_nodes=source_labels)
    matched_sources = sum(1 for node in matching if node in set(source_labels))
    return matched_sources == len(sources)


def is_graded_bisimulation(
    first_model: KripkeModel,
    second_model: KripkeModel,
    relation: Iterable[tuple[World, World]],
) -> bool:
    """Whether ``relation`` is a graded bisimulation (B1, B2*, B3*).

    Conditions B2* and B3* require, for every related pair ``(v, v')`` and
    every subset ``X`` of ``R(v)``, a same-size subset of ``R'(v')`` covered by
    ``Z``-partners of ``X`` (and symmetrically).  By Hall's marriage theorem
    this holds if and only if ``R(v)`` injects into ``R'(v')`` along ``Z`` and
    ``R'(v')`` injects into ``R(v)`` along ``Z^{-1}``; the checker verifies the
    two injections with bipartite matching.
    """
    pairs = set(relation)
    if not pairs:
        return False
    inverse_pairs = {(b, a) for a, b in pairs}
    indices = first_model.indices | second_model.indices
    for v, v_prime in pairs:
        if not _atoms_agree(first_model, v, second_model, v_prime):
            return False
        for index in indices:
            forward = first_model.successors(v, index)
            backward = second_model.successors(v_prime, index)
            if not _has_injection(forward, backward, pairs):
                return False
            if not _has_injection(backward, forward, inverse_pairs):
                return False
    return True
