"""Bisimulation and graded bisimulation (Section 4.2).

Two tools are provided:

* **Partition refinement** computes the coarsest (graded) bisimilarity
  equivalence on a finite model: worlds start grouped by their propositional
  label and are repeatedly split according to which blocks (for plain
  bisimilarity) or how many successors in each block (for graded
  bisimilarity) they can reach through each relation.  The bounded variant
  stops after ``k`` refinement rounds and corresponds to ``k``-round
  indistinguishability, i.e. to formulas of modal depth at most ``k``.

* **Certificate checking** verifies that an explicitly given relation ``Z`` is
  a bisimulation (conditions B1-B3) or a graded bisimulation (B1, B2*, B3*).
  Conditions B2*/B3* quantify over all subsets of the successor sets; by
  Hall's marriage theorem they are equivalent to the existence of an injection
  of ``R(v)`` into ``R'(v')`` along ``Z`` (and vice versa), which the checker
  decides with :func:`repro.graphs.matching.injection_exists`.

The public refinement functions are thin wrappers over the signature-hash
engine of :mod:`repro.logic.engine` (``engine="compiled"``, the default) and
reproduce the seed implementation's block numbering exactly; the seed
refinement loop is preserved as :func:`reference_bisimilarity_partition` /
:func:`reference_bounded_bisimilarity_partition` and serves as the
differential-testing oracle.

Fact 1 of the paper -- bisimilar worlds satisfy the same ML/MML formulas and
g-bisimilar worlds the same GML/GMML formulas -- is exercised as a
property-based test of this module.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable

from repro.graphs.matching import injection_exists
from repro.logic.engine import check_engine, compile_kripke
from repro.logic.kripke import KripkeModel, World

Partition = dict[World, int]


# ---------------------------------------------------------------------- #
# Reference partition refinement (seed implementation, differential oracle)
# ---------------------------------------------------------------------- #


def _initial_partition(model: KripkeModel) -> Partition:
    labels: dict[frozenset[Hashable], int] = {}
    partition: Partition = {}
    for world in sorted(model.worlds, key=repr):
        label = model.label(world)
        if label not in labels:
            labels[label] = len(labels)
        partition[world] = labels[label]
    return partition


def _refine_once(model: KripkeModel, partition: Partition, graded: bool) -> Partition:
    indices = sorted(model.indices, key=repr)
    signatures: dict[World, tuple] = {}
    for world in model.worlds:
        per_index = []
        for index in indices:
            successor_blocks = [partition[successor] for successor in model.successors(world, index)]
            if graded:
                per_index.append(tuple(sorted(Counter(successor_blocks).items())))
            else:
                per_index.append(tuple(sorted(set(successor_blocks))))
        signatures[world] = (partition[world], tuple(per_index))
    blocks: dict[tuple, int] = {}
    refined: Partition = {}
    for world in sorted(model.worlds, key=repr):
        signature = signatures[world]
        if signature not in blocks:
            blocks[signature] = len(blocks)
        refined[world] = blocks[signature]
    return refined


def _partition_sizes(partition: Partition) -> int:
    return len(set(partition.values()))


def reference_bisimilarity_partition(model: KripkeModel, graded: bool = False) -> Partition:
    """The seed fixpoint refinement loop, kept as the differential oracle."""
    partition = _initial_partition(model)
    while True:
        refined = _refine_once(model, partition, graded)
        if _partition_sizes(refined) == _partition_sizes(partition):
            return refined
        partition = refined


def reference_bounded_bisimilarity_partition(
    model: KripkeModel, rounds: int, graded: bool = False
) -> Partition:
    """The seed ``rounds``-round refinement, kept as the differential oracle."""
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    partition = _initial_partition(model)
    for _ in range(rounds):
        partition = _refine_once(model, partition, graded)
    return partition


# ---------------------------------------------------------------------- #
# Public refinement API (engine-backed)
# ---------------------------------------------------------------------- #


def bisimilarity_partition(
    model: KripkeModel, graded: bool = False, engine: str = "compiled"
) -> Partition:
    """The coarsest (graded) bisimilarity equivalence, as a world-to-block map.

    ``engine="vector"`` shares the compiled signature-hash refinement:
    partition refinement renumbers blocks by first occurrence, which is an
    inherently sequential scan with no array form, and the compiled engine
    is already identical to the reference oracle.
    """
    engine = check_engine(engine, "bisimilarity_partition")
    if engine == "reference":
        return reference_bisimilarity_partition(model, graded=graded)
    return compile_kripke(model).bisimilarity_partition(graded=graded)


def bounded_bisimilarity_partition(
    model: KripkeModel, rounds: int, graded: bool = False, engine: str = "compiled"
) -> Partition:
    """The ``rounds``-round (graded) bisimilarity equivalence.

    Worlds in the same block cannot be separated by any formula of modal depth
    at most ``rounds`` (of the matching logic), hence by any local algorithm of
    the matching class running for at most ``rounds`` rounds (Theorem 2).
    """
    engine = check_engine(engine, "bounded_bisimilarity_partition")
    if engine == "reference":
        return reference_bounded_bisimilarity_partition(model, rounds, graded=graded)
    return compile_kripke(model).bisimilarity_partition(graded=graded, rounds=rounds)


def bisimilarity_classes(
    model: KripkeModel, graded: bool = False, engine: str = "compiled"
) -> list[frozenset[World]]:
    """The (graded) bisimilarity equivalence classes."""
    partition = bisimilarity_partition(model, graded=graded, engine=engine)
    blocks: dict[int, set[World]] = {}
    for world, block in partition.items():
        blocks.setdefault(block, set()).add(world)
    return [frozenset(worlds) for _, worlds in sorted(blocks.items())]


def bisimilar_within(
    model: KripkeModel,
    worlds: Iterable[World],
    graded: bool = False,
    engine: str = "compiled",
) -> bool:
    """Whether all the given worlds of one model are pairwise (graded) bisimilar."""
    worlds = list(worlds)
    if len(worlds) <= 1:
        return True
    partition = bisimilarity_partition(model, graded=graded, engine=engine)
    return len({partition[world] for world in worlds}) == 1


def are_bisimilar(
    first_model: KripkeModel,
    first_world: World,
    second_model: KripkeModel,
    second_world: World,
    graded: bool = False,
    engine: str = "compiled",
) -> bool:
    """Whether two pointed models are (graded) bisimilar.

    The two models are combined into their disjoint union and the coarsest
    bisimilarity partition of the union is consulted.
    """
    union = first_model.disjoint_union(second_model)
    partition = bisimilarity_partition(union, graded=graded, engine=engine)
    return partition[(0, first_world)] == partition[(1, second_world)]


# ---------------------------------------------------------------------- #
# Certificate checking
# ---------------------------------------------------------------------- #


def _atoms_agree(
    first_model: KripkeModel, first_world: World, second_model: KripkeModel, second_world: World
) -> bool:
    propositions = first_model.propositions | second_model.propositions
    return all(
        first_model.holds(prop, first_world) == second_model.holds(prop, second_world)
        for prop in propositions
    )


def is_bisimulation(
    first_model: KripkeModel,
    second_model: KripkeModel,
    relation: Iterable[tuple[World, World]],
) -> bool:
    """Whether ``relation`` is a bisimulation between the two models (B1-B3)."""
    pairs = set(relation)
    if not pairs:
        return False
    indices = first_model.indices | second_model.indices
    for v, v_prime in pairs:
        if not _atoms_agree(first_model, v, second_model, v_prime):
            return False
        for index in indices:
            # (B2) forth
            for w in first_model.successors(v, index):
                if not any(
                    (w, w_prime) in pairs for w_prime in second_model.successors(v_prime, index)
                ):
                    return False
            # (B3) back
            for w_prime in second_model.successors(v_prime, index):
                if not any((w, w_prime) in pairs for w in first_model.successors(v, index)):
                    return False
    return True


def is_graded_bisimulation(
    first_model: KripkeModel,
    second_model: KripkeModel,
    relation: Iterable[tuple[World, World]],
) -> bool:
    """Whether ``relation`` is a graded bisimulation (B1, B2*, B3*).

    Conditions B2* and B3* require, for every related pair ``(v, v')`` and
    every subset ``X`` of ``R(v)``, a same-size subset of ``R'(v')`` covered by
    ``Z``-partners of ``X`` (and symmetrically).  By Hall's marriage theorem
    this holds if and only if ``R(v)`` injects into ``R'(v')`` along ``Z`` and
    ``R'(v')`` injects into ``R(v)`` along ``Z^{-1}``; the checker verifies the
    two injections with the shared bipartite-matching helper (greedy early
    exit, then Hopcroft-Karp).
    """
    pairs = set(relation)
    if not pairs:
        return False
    inverse_pairs = {(b, a) for a, b in pairs}
    indices = first_model.indices | second_model.indices
    for v, v_prime in pairs:
        if not _atoms_agree(first_model, v, second_model, v_prime):
            return False
        for index in indices:
            forward = first_model.successors(v, index)
            backward = second_model.successors(v_prime, index)
            if not injection_exists(forward, backward, pairs):
                return False
            if not injection_exists(backward, forward, inverse_pairs):
                return False
    return True
