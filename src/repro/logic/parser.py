"""A concrete text syntax for formulas.

The grammar (closely mirroring how :func:`str` prints formulas)::

    formula     := implication
    implication := disjunction ('->' implication)?
    disjunction := conjunction ('|' conjunction)*
    conjunction := unary ('&' unary)*
    unary       := '~' unary | diamond | box | atom
    diamond     := '<' index? '>' ('>=' INT)? unary
    box         := '[' index? ']' unary
    atom        := 'true' | 'false' | IDENT | '(' formula ')'
    index       := part (',' part)*      part := INT | '*' | IDENT

Examples::

    parse_formula("deg1 & <>(deg2 | ~deg3)")
    parse_formula("<2,1> deg3")          # multimodal diamond with index (2, 1)
    parse_formula("<*,*>>=2 odd")        # graded diamond, grade 2

Because the constructors hash-cons into the shared formula pool
(:mod:`repro.logic.syntax`), parsing is pool-stable: parsing the same text
twice -- or parsing ``str(phi)`` of an already-built formula whose indices
are ints/``'*'``/identifiers -- returns the *identical* interned object, so
parsed formulas share compiled-engine caches with programmatically built
ones.  A small text-level memo additionally skips re-tokenising repeated
inputs (campaign formula sets parse the same strings per scenario).
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any

from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    Formula,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
)

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<arrow>->)|(?P<geq>>=)|(?P<punct>[()\[\]<>,&|~*])|"
    r"(?P<int>\d+)|(?P<ident>[A-Za-z_][A-Za-z0-9_]*))"
)


class FormulaParseError(ValueError):
    """Raised when a formula string cannot be parsed."""


def _tokenise(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise FormulaParseError(f"unexpected character at {text[position:]!r}")
        token = next(group for group in match.groups() if group is not None)
        tokens.append(token)
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._position = 0

    def peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise FormulaParseError("unexpected end of formula")
        self._position += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.advance()
        if token != expected:
            raise FormulaParseError(f"expected {expected!r} but found {token!r}")

    # -------------------------------------------------------------- #

    def parse_formula(self) -> Formula:
        formula = self.parse_implication()
        if self.peek() is not None:
            raise FormulaParseError(f"trailing tokens starting at {self.peek()!r}")
        return formula

    def parse_implication(self) -> Formula:
        left = self.parse_disjunction()
        if self.peek() == "->":
            self.advance()
            right = self.parse_implication()
            return Implies(left, right)
        return left

    def parse_disjunction(self) -> Formula:
        result = self.parse_conjunction()
        while self.peek() == "|":
            self.advance()
            result = Or(result, self.parse_conjunction())
        return result

    def parse_conjunction(self) -> Formula:
        result = self.parse_unary()
        while self.peek() == "&":
            self.advance()
            result = And(result, self.parse_unary())
        return result

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token == "~":
            self.advance()
            return Not(self.parse_unary())
        if token == "<":
            return self.parse_diamond()
        if token == "[":
            return self.parse_box()
        return self.parse_atom()

    def parse_index(self, closing: str) -> Any:
        parts: list[Any] = []
        while self.peek() != closing:
            token = self.advance()
            if token == ",":
                continue
            if token == "*":
                parts.append("*")
            elif token.isdigit():
                parts.append(int(token))
            else:
                parts.append(token)
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return tuple(parts)

    def parse_diamond(self) -> Formula:
        self.expect("<")
        index = self.parse_index(">")
        self.expect(">")
        if self.peek() == ">=":
            self.advance()
            grade_token = self.advance()
            if not grade_token.isdigit():
                raise FormulaParseError(f"expected a grade after '>=', found {grade_token!r}")
            return GradedDiamond(self.parse_unary(), grade=int(grade_token), index=index)
        return Diamond(self.parse_unary(), index=index)

    def parse_box(self) -> Formula:
        self.expect("[")
        index = self.parse_index("]")
        self.expect("]")
        return Box(self.parse_unary(), index=index)

    def parse_atom(self) -> Formula:
        token = self.advance()
        if token == "(":
            inner = self.parse_implication()
            self.expect(")")
            return inner
        if token == "true":
            return Top()
        if token == "false":
            return Bottom()
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            return Prop(token)
        raise FormulaParseError(f"unexpected token {token!r}")


@lru_cache(maxsize=4096)
def parse_formula(text: str) -> Formula:
    """Parse a formula from its text representation.

    Memoised: formulas are immutable interned values, so returning the
    cached object for a repeated text is indistinguishable from reparsing.
    """
    return _Parser(_tokenise(text)).parse_formula()
