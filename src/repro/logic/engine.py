"""Compiled logic engine: bitset model checking and hash-based refinement.

The reference implementations of Section 4.1/4.2
(:func:`repro.logic.semantics.reference_extension`,
:func:`repro.logic.bisimulation.reference_bisimilarity_partition`) manipulate
``frozenset``-of-worlds extensions and re-sort the world set by ``repr`` on
every refinement round.  Impossibility sweeps -- the E4 correspondence checks,
the E12 invariance survey, every ``witness_bisimilar`` call behind the
separation certificates -- evaluate thousands of formulas and refinement
rounds over the same Kripke models, so that representation overhead dominates.

This module gives the logic layer the same compiled-vs-reference treatment the
execution layer got in :mod:`repro.execution.engine`:

* :class:`CompiledKripke` interns the worlds of a model to dense integers
  (in the reference implementation's deterministic ``repr`` order), stores
  each accessibility relation as CSR-style flat successor arrays plus
  per-world successor/predecessor bitmasks, and represents every valuation --
  and every computed extension -- as a Python-int *bitset* (bit ``i`` set iff
  world ``i`` is in the set);
* the model checker evaluates the hash-consed formula DAG
  (:mod:`repro.logic.syntax`) in one ascending pass over pool node ids
  (children-before-parents by construction) with a flat ``{node_id:
  bitset}`` table -- no recursion, shared subformulas evaluated once:
  Boolean connectives are single big-int operations, ``<a>phi`` is a union
  of predecessor masks over the set bits of ``||phi||``, ``[a]phi`` is its
  De Morgan dual and graded diamonds count ``mask & bits`` with
  ``int.bit_count``; :meth:`CompiledKripke.check_many` batches many formulas
  over one model with a shared per-node cache and :func:`check_sweep`
  batches many models;
* (graded/bounded) bisimilarity runs as signature-hash partition refinement
  over the flat arrays: each round maps every world to a hashable signature
  ``(block, per-index successor-block sets/multisets)`` and renumbers blocks
  by first occurrence in the interned world order, which reproduces the
  reference implementation's block numbering exactly -- differential tests
  compare partitions with ``==``;
* :meth:`CompiledKripke.satisfies` answers single-world queries top-down with
  short-circuiting and memoisation instead of computing the full extension.

The compiled form is cached on the model instance (``KripkeModel._compiled``,
mirroring ``Graph._default_compiled`` in the execution engine), so adversarial
sweeps that revisit one encoding compile it once.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from itertools import chain, compress

from repro.logic.kripke import Index, KripkeModel, World
from repro.logic.syntax import (
    KIND_AND,
    KIND_BOTTOM,
    KIND_BOX,
    KIND_DIAMOND,
    KIND_IMPLIES,
    KIND_NOT,
    KIND_OR,
    KIND_PROP,
    KIND_TOP,
    Formula,
    formula_pool,
)

from repro.engines.registry import engine_names, resolve_engine
from repro.obs import metrics as _metrics

#: Logic-engine backends selectable by wrappers, benchmarks and A/B tests,
#: in registry order: the compiled bitset engine, the seed reference
#: oracles, and the packed-uint64 NumPy kernel (:mod:`repro.logic.vector`).
ENGINES = engine_names(requires={"logic"})


def check_engine(engine: str, operation: str = "logic evaluation") -> str:
    """Validate a logic ``engine=`` knob value; returns the engine name.

    Resolution happens in the engine registry
    (:func:`repro.engines.resolve_engine`), so an execution-only engine --
    ``engine="sweep"`` handed to a logic entry point -- raises a capability
    error naming the engine and the operation here, at the public boundary,
    instead of failing deep inside dispatch.
    """
    return resolve_engine(engine, requires={"logic"}, operation=operation).name


#: Set-bit offsets of every byte value: the decode table behind all
#: bitset-to-indices conversions (one Python iteration per byte, not per bit).
_BYTE_BITS = tuple(
    tuple(offset for offset in range(8) if value >> offset & 1) for value in range(256)
)

#: Per-byte selector flags for :func:`itertools.compress`-based decoding.
_BYTE_FLAGS = tuple(
    tuple(value >> offset & 1 for offset in range(8)) for value in range(256)
)

#: Sentinel for "the model is not unimodal" -- distinct from every legal
#: modality index (``None`` itself is a legal index value).
_NOT_UNIMODAL = object()


def _iter_bits(bits: int):
    """Yield the indices of the set bits of ``bits`` (lowest first)."""
    if not bits:
        return
    data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
    for base, byte in enumerate(data):
        if byte:
            for offset in _BYTE_BITS[byte]:
                yield (base << 3) + offset


class CompiledKripke:
    """A :class:`~repro.logic.kripke.KripkeModel` compiled to flat arrays.

    Worlds are interned to ``0 .. n-1`` in the deterministic ``repr`` order
    the reference implementations use, so block numberings and world
    enumerations agree between the engines.  For every modality index the
    relation is stored three ways, each serving one hot loop:

    * ``csr[index] = (offsets, targets)`` -- flat successor lists for the
      refinement signatures and the top-down single-world checker;
    * ``succ_masks[index][i]`` -- bitset of the successors of world ``i``,
      for graded counting (``(mask & bits).bit_count()``) and ``[a]phi``;
    * ``pred_masks[index][j]`` -- bitset of the predecessors of world ``j``,
      so ``<a>phi`` is a union of predecessor masks over the set bits of
      ``||phi||`` (linear in the extension, not in ``n * m``).
    """

    __slots__ = (
        "model",
        "worlds",
        "world_index",
        "n",
        "all_mask",
        "indices",
        "csr",
        "succ_lists",
        "succ_masks",
        "pred_masks",
        "prop_bits",
        "label_keys",
        "_unique_index",
        "_block_bits",
        "_vector",
    )

    def __init__(self, model: KripkeModel) -> None:
        self.model = model
        worlds = tuple(sorted(model.worlds, key=repr))
        self.worlds = worlds
        index_of = {world: i for i, world in enumerate(worlds)}
        self.world_index = index_of
        n = len(worlds)
        self.n = n
        self.all_mask = (1 << n) - 1

        self.indices: tuple[Index, ...] = tuple(sorted(model.indices, key=repr))
        self._unique_index: Index = (
            self.indices[0] if len(self.indices) == 1 else _NOT_UNIMODAL
        )
        csr: dict[Index, tuple[list[int], list[int]]] = {}
        succ_masks: dict[Index, list[int]] = {}
        pred_masks: dict[Index, list[int]] = {}
        for rel_index in self.indices:
            offsets = [0] * (n + 1)
            targets: list[int] = []
            s_masks = [0] * n
            p_masks = [0] * n
            for i, world in enumerate(worlds):
                offsets[i] = len(targets)
                for successor in model.successors(world, rel_index):
                    j = index_of[successor]
                    targets.append(j)
                    s_masks[i] |= 1 << j
                    p_masks[j] |= 1 << i
            offsets[n] = len(targets)
            csr[rel_index] = (offsets, targets)
            succ_masks[rel_index] = s_masks
            pred_masks[rel_index] = p_masks
        self.csr = csr
        self.succ_masks = succ_masks
        self.pred_masks = pred_masks
        # Per-world successor lists (views into the CSR data), so the
        # refinement rounds and the top-down checker index without slicing.
        self.succ_lists = {
            rel_index: [
                targets[offsets[i] : offsets[i + 1]] for i in range(n)
            ]
            for rel_index, (offsets, targets) in csr.items()
        }

        self.prop_bits: dict[Hashable, int] = {}
        for prop in model.propositions:
            bits = 0
            for world in model.valuation_of(prop):
                bits |= 1 << index_of[world]
            self.prop_bits[prop] = bits
        # Initial-partition keys: one int per world whose bits record which
        # propositions (in deterministic order) hold there.
        props = sorted(self.prop_bits, key=repr)
        label_keys = [0] * n
        for position, prop in enumerate(props):
            bits = self.prop_bits[prop]
            for i in _iter_bits(bits):
                label_keys[i] |= 1 << position
        self.label_keys = label_keys
        self._block_bits: list[int] | None = None
        # Packed-uint64 twin (:mod:`repro.logic.vector`), built on first use.
        self._vector = None

    # ------------------------------------------------------------------ #
    # Bitset helpers
    # ------------------------------------------------------------------ #

    def to_worlds(self, bits: int) -> frozenset[World]:
        """Decode a bitset into the corresponding set of worlds.

        Runs entirely at C level: the bitset becomes a little-endian byte
        string, each byte expands to its 8 selector flags through a lookup
        table, and :func:`itertools.compress` filters the world tuple.
        """
        if not bits:
            return frozenset()
        data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
        return frozenset(
            compress(self.worlds, chain.from_iterable(map(_BYTE_FLAGS.__getitem__, data)))
        )

    def to_bits(self, worlds: Iterable[World]) -> int:
        """Encode a set of worlds as a bitset."""
        index_of = self.world_index
        bits = 0
        for world in worlds:
            bits |= 1 << index_of[world]
        return bits

    def _resolve_index(self, index: Index) -> Index:
        if index is not None:
            return index
        unique = self._unique_index
        if unique is _NOT_UNIMODAL:
            raise ValueError(
                "a plain (unindexed) modality can only be evaluated on a unimodal "
                f"model; this model has indices {list(self.indices)!r}"
            )
        return unique

    def _predecessors_of(self, index: Index, bits: int) -> int:
        """The worlds with at least one ``index``-successor inside ``bits``.

        Computed as the union of predecessor masks over the set bits of
        ``bits``, walking the bitset one byte at a time.
        """
        preds = self.pred_masks.get(index)
        if preds is None or not bits:
            return 0
        data = bits.to_bytes((bits.bit_length() + 7) >> 3, "little")
        byte_bits = _BYTE_BITS
        result = 0
        for base, byte in enumerate(data):
            if byte:
                start = base << 3
                for offset in byte_bits[byte]:
                    result |= preds[start + offset]
        return result

    # ------------------------------------------------------------------ #
    # Bitset model checker (Section 4.1)
    # ------------------------------------------------------------------ #

    def extension_bits(self, formula: Formula, cache: dict[int, int] | None = None) -> int:
        """The extension ``||formula||`` as a bitset, memoised per pool node.

        The formula is a node of the hash-consed DAG
        (:mod:`repro.logic.syntax`), so evaluation is one ascending pass
        over the reachable pool ids -- children-before-parents by
        construction -- with a flat ``{node_id: bitset}`` table instead of
        the seed's recursion over formula objects.  Shared subformulas
        (Table 4/5 emit them combinatorially) are evaluated once, and no
        recursion limit applies however deep the formula is.
        """
        if not isinstance(formula, Formula):
            raise TypeError(f"unknown formula type: {formula!r}")
        if cache is None:
            cache = {}
        root = formula.node_id
        hit = cache.get(root)
        if hit is not None:
            if _metrics.enabled():
                _metrics.counter("logic.extension.cache_hits").inc()
            return hit
        pool = formula_pool()
        kinds, kids_of, payloads = pool.kinds, pool.children, pool.payloads
        # Collect the uncached ids reachable from the root, pruning the
        # traversal at already-cached nodes (shared caches across check_many
        # batches skip whole subdags).
        needed = {root}
        stack = [root]
        while stack:
            for child in kids_of[stack.pop()]:
                if child not in needed and child not in cache:
                    needed.add(child)
                    stack.append(child)
        all_mask = self.all_mask
        for node in sorted(needed):
            kind = kinds[node]
            kids = kids_of[node]
            if kind == KIND_PROP:
                bits = self.prop_bits.get(payloads[node][0], 0)
            elif kind == KIND_TOP:
                bits = all_mask
            elif kind == KIND_BOTTOM:
                bits = 0
            elif kind == KIND_NOT:
                bits = all_mask ^ cache[kids[0]]
            elif kind == KIND_AND:
                bits = cache[kids[0]] & cache[kids[1]]
            elif kind == KIND_OR:
                bits = cache[kids[0]] | cache[kids[1]]
            elif kind == KIND_IMPLIES:
                bits = (all_mask ^ cache[kids[0]]) | cache[kids[1]]
            elif kind == KIND_DIAMOND:
                index = self._resolve_index(payloads[node][0])
                bits = self._predecessors_of(index, cache[kids[0]])
            elif kind == KIND_BOX:
                # [a]phi = ~<a>~phi: worlds with no successor outside ||phi||.
                index = self._resolve_index(payloads[node][0])
                bits = all_mask ^ self._predecessors_of(index, all_mask ^ cache[kids[0]])
            else:  # KIND_GRADED
                grade, raw_index = payloads[node]
                index = self._resolve_index(raw_index)
                inner = cache[kids[0]]
                if grade == 0:
                    bits = all_mask
                elif grade == 1:
                    bits = self._predecessors_of(index, inner)
                else:
                    masks = self.succ_masks.get(index)
                    bits = 0
                    if masks is not None and inner:
                        # One C-level big-int AND per world; hits accumulate
                        # in a bytearray (small-int bit ops, no big-int
                        # reallocation per set bit).
                        out = bytearray((self.n + 7) >> 3)
                        for i, overlap in enumerate(map(inner.__and__, masks)):
                            if overlap and overlap.bit_count() >= grade:
                                out[i >> 3] |= 1 << (i & 7)
                        bits = int.from_bytes(out, "little")
            cache[node] = bits
        if _metrics.enabled():
            _metrics.counter("logic.extension.nodes_evaluated").inc(len(needed))
        return cache[root]

    def extension(self, formula: Formula, cache: dict[int, int] | None = None) -> frozenset[World]:
        """The extension ``||formula||`` as a set of worlds."""
        return self.to_worlds(self.extension_bits(formula, cache))

    def check_many(self, formulas: Iterable[Formula]) -> list[frozenset[World]]:
        """Extensions of many formulas with one shared per-node bitset cache."""
        cache: dict[int, int] = {}
        return [self.to_worlds(self.extension_bits(formula, cache)) for formula in formulas]

    def satisfies(
        self,
        world: World,
        formula: Formula,
        _trace: list | None = None,
    ) -> bool:
        """Whether ``model, world |= formula``, evaluated top-down.

        Unlike the reference checker, this never computes the full extension
        of any subformula: Boolean connectives short-circuit, graded diamonds
        stop counting at the grade, and only worlds reachable from ``world``
        within the modal depth are ever visited.  ``_trace``, if given,
        collects the evaluated ``(formula, world)`` pairs (used by the
        regression test guarding against full-extension evaluation).
        """
        if not isinstance(formula, Formula):
            raise TypeError(f"unknown formula type: {formula!r}")
        succ_lists = self.succ_lists
        pool = formula_pool()
        nodes = pool.nodes
        cache: dict[tuple[int, int], bool] = {}

        def holds(phi: Formula, i: int) -> bool:
            key = (phi.node_id, i)
            cached = cache.get(key)
            if cached is not None:
                return cached
            if _trace is not None:
                _trace.append((phi, self.worlds[i]))
            kind = pool.kinds[phi.node_id]
            kids = pool.children[phi.node_id]
            if kind == KIND_PROP:
                value = bool(self.prop_bits.get(pool.payloads[phi.node_id][0], 0) >> i & 1)
            elif kind == KIND_TOP:
                value = True
            elif kind == KIND_BOTTOM:
                value = False
            elif kind == KIND_NOT:
                value = not holds(nodes[kids[0]], i)
            elif kind == KIND_AND:
                value = holds(nodes[kids[0]], i) and holds(nodes[kids[1]], i)
            elif kind == KIND_OR:
                value = holds(nodes[kids[0]], i) or holds(nodes[kids[1]], i)
            elif kind == KIND_IMPLIES:
                value = (not holds(nodes[kids[0]], i)) or holds(nodes[kids[1]], i)
            else:
                payload = pool.payloads[phi.node_id]
                index = self._resolve_index(payload[-1])
                entry = succ_lists.get(index)
                successors: Sequence[int] = entry[i] if entry is not None else ()
                operand = nodes[kids[0]]
                if kind == KIND_DIAMOND:
                    value = any(holds(operand, j) for j in successors)
                elif kind == KIND_BOX:
                    value = all(holds(operand, j) for j in successors)
                else:
                    grade = payload[0]
                    count = 0
                    value = grade == 0
                    for j in successors:
                        if holds(operand, j):
                            count += 1
                            if count >= grade:
                                value = True
                                break
            cache[key] = value
            return value

        return holds(formula, self.world_index[world])

    # ------------------------------------------------------------------ #
    # Signature-hash partition refinement (Section 4.2)
    # ------------------------------------------------------------------ #

    def initial_blocks(self) -> list[int]:
        """Per-world block ids of the propositional-label partition."""
        seen: dict[int, int] = {}
        blocks = [0] * self.n
        for i, key in enumerate(self.label_keys):
            block = seen.get(key)
            if block is None:
                block = seen[key] = len(seen)
            blocks[i] = block
        return blocks

    def refine_blocks(self, blocks: list[int], graded: bool) -> tuple[list[int], int]:
        """One refinement round; returns the new blocks and their count.

        The signature of a world is its current block plus, per modality
        index, the set (plain) or sorted multiset (graded) of the blocks of
        its successors -- a sorted-with-multiplicity tuple encodes the
        multiset just as faithfully as the reference implementation's
        ``Counter`` items.  New block ids are assigned by first occurrence
        in the interned world order, matching the reference implementation.
        """
        n = self.n
        seen: dict[tuple, int] = {}
        refined = [0] * n
        seen_get = seen.get
        # The *set* of successor blocks is the plain signature; encoded as a
        # bitmask over block ids it needs no sort and hashes in C.  Block
        # ids are bounded by n, so the one-shift-per-id table is built once.
        bit_of = self._block_bits
        if bit_of is None:
            bit_of = self._block_bits = [1 << k for k in range(n)]
        if len(self.indices) == 1:
            # Unimodal fast path (every Kripke encoding of the K-,- variant):
            # one fused pass builds the signature and numbers it.
            succ = self.succ_lists[self.indices[0]]
            if graded:
                for i, row in enumerate(succ):
                    successor_blocks = [blocks[t] for t in row]
                    successor_blocks.sort()
                    signature = (blocks[i], tuple(successor_blocks))
                    block = seen_get(signature)
                    if block is None:
                        block = seen[signature] = len(seen)
                    refined[i] = block
            else:
                for i, row in enumerate(succ):
                    mask = 0
                    for t in row:
                        mask |= bit_of[blocks[t]]
                    signature = (blocks[i], mask)
                    block = seen_get(signature)
                    if block is None:
                        block = seen[signature] = len(seen)
                    refined[i] = block
            return refined, len(seen)
        per_index = [self.succ_lists[rel_index] for rel_index in self.indices]
        for i in range(n):
            parts: list = [blocks[i]]
            for succ in per_index:
                if graded:
                    successor_blocks = [blocks[t] for t in succ[i]]
                    successor_blocks.sort()
                    parts.append(tuple(successor_blocks))
                else:
                    mask = 0
                    for t in succ[i]:
                        mask |= bit_of[blocks[t]]
                    parts.append(mask)
            signature = tuple(parts)
            block = seen_get(signature)
            if block is None:
                block = seen[signature] = len(seen)
            refined[i] = block
        return refined, len(seen)

    def bisimilarity_blocks(self, graded: bool = False, rounds: int | None = None) -> list[int]:
        """Block ids of the (bounded) (graded) bisimilarity equivalence.

        ``rounds=None`` refines to the coarsest fixpoint; otherwise exactly
        ``rounds`` refinement rounds are applied (Theorem 2's ``k``-round
        indistinguishability).
        """
        blocks = self.initial_blocks()
        if rounds is not None:
            if rounds < 0:
                raise ValueError("rounds must be non-negative")
            for _ in range(rounds):
                blocks, _count = self.refine_blocks(blocks, graded)
            return blocks
        count = len(set(blocks))
        while True:
            refined, refined_count = self.refine_blocks(blocks, graded)
            if refined_count == count:
                return refined
            blocks, count = refined, refined_count

    def bisimilarity_partition(
        self, graded: bool = False, rounds: int | None = None
    ) -> dict[World, int]:
        """World-to-block mapping of :meth:`bisimilarity_blocks`."""
        blocks = self.bisimilarity_blocks(graded=graded, rounds=rounds)
        return dict(zip(self.worlds, blocks))

    def __repr__(self) -> str:
        return (
            f"CompiledKripke(worlds={self.n}, indices={len(self.indices)}, "
            f"propositions={len(self.prop_bits)})"
        )


# ---------------------------------------------------------------------- #
# Compilation cache
# ---------------------------------------------------------------------- #


def compile_kripke(model: KripkeModel) -> CompiledKripke:
    """The compiled form of ``model``, cached on the model instance."""
    compiled = model._compiled
    if compiled is None:
        compiled = model._compiled = CompiledKripke(model)
    return compiled


# ---------------------------------------------------------------------- #
# Batch APIs
# ---------------------------------------------------------------------- #


def check_many(
    model: KripkeModel,
    formulas: Iterable[Formula],
    *,
    engine: str = "compiled",
    workers: int | None = None,
) -> list[frozenset[World]]:
    """Extensions of many formulas over one model, in input order.

    With ``engine="compiled"`` all formulas share one bitset subformula
    cache; ``engine="vector"`` evaluates the whole batch layer by layer as
    packed-uint64 array ops (:mod:`repro.logic.vector`; requires NumPy);
    ``engine="reference"`` uses the seed checker (one shared cache as
    well), for differential testing and benchmarks.  ``workers`` matches
    the unified batch signature of
    :func:`repro.execution.engine.run_many`; the logic engines share
    per-model caches and always evaluate in-process, so it is accepted and
    ignored.
    """
    engine = check_engine(engine, "check_many")
    formulas = list(formulas)
    if _metrics.enabled():
        _metrics.counter("logic.check_many.calls").inc()
        _metrics.histogram(
            "logic.check_many.batch_size",
            buckets=_metrics.DEFAULT_SIZE_BUCKETS,
        ).observe(len(formulas))
    if engine == "reference":
        from repro.logic.semantics import reference_extension

        cache: dict = {}
        return [reference_extension(model, formula, cache) for formula in formulas]
    if engine == "vector":
        from repro.logic.vector import vector_check_many

        return vector_check_many(model, formulas)
    return compile_kripke(model).check_many(formulas)


def check_sweep(
    models: Iterable[KripkeModel],
    formulas: Sequence[Formula],
    *,
    engine: str = "compiled",
    workers: int | None = None,
) -> list[list[frozenset[World]]]:
    """Extensions of many formulas over many models (one cache per model)."""
    engine = check_engine(engine, "check_sweep")
    return [check_many(model, formulas, engine=engine) for model in models]
