"""The model checker: Kripke semantics for ML, GML, MML and GMML.

The truth definition follows Section 4.1 of the paper.  The public entry
points (:func:`extension`, :func:`satisfies`, :func:`equivalent_on`) are thin
wrappers over the compiled bitset engine (:mod:`repro.logic.engine`); the
original seed checker is preserved as :func:`reference_extension` and serves
as the differential-testing oracle (mirroring
:mod:`repro.execution.legacy` on the execution side).  Every wrapper takes an
``engine="compiled" | "reference"`` knob for A/B tests and benchmarks.

The reference checker computes the *extension* ``||phi||_K`` of a formula
(the set of worlds where it holds) bottom-up over subformulas, memoising
intermediate extensions, so evaluating a formula of size ``s`` over a model
with ``n`` worlds and ``m`` relation pairs costs ``O(s * (n + m))``.

A shared ``_cache`` dictionary may be passed to amortise subformula
extensions across calls *on the same model*.  Caches are owned by the first
model they are used with: reusing one cache across two different models used
to silently return the first model's extensions and now raises
:class:`ValueError`.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.logic.engine import check_engine, compile_kripke
from repro.logic.kripke import KripkeModel, World
from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    Formula,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
)

#: Cache key under which a shared ``_cache`` records the model it belongs to.
_CACHE_OWNER = object()
#: Cache key under which the compiled engine keeps its bitset subformula cache.
_CACHE_BITS = object()
#: Cache key under which the vector engine keeps its packed-row cache.
_CACHE_ROWS = object()


def _claim_cache(model: KripkeModel, cache: dict) -> None:
    """Bind a shared extension cache to its model, rejecting foreign reuse."""
    owner = cache.get(_CACHE_OWNER)
    if owner is None:
        cache[_CACHE_OWNER] = model
    elif owner is not model and owner != model:
        raise ValueError(
            "the extension cache is owned by a different model; "
            "use one cache per model (cached extensions are model-specific)"
        )


def _resolve_index(model: KripkeModel, index: Hashable) -> Hashable:
    """Resolve a ``None`` modality index to the model's unique relation index."""
    if index is not None:
        return index
    indices = model.indices
    if len(indices) != 1:
        raise ValueError(
            "a plain (unindexed) modality can only be evaluated on a unimodal model; "
            f"this model has indices {sorted(indices, key=repr)!r}"
        )
    return next(iter(indices))


def reference_extension(
    model: KripkeModel, formula: Formula, _cache: dict | None = None
) -> frozenset[World]:
    """The seed model checker, kept verbatim as the differential oracle."""
    if _cache is not None:
        _claim_cache(model, _cache)
    cache: dict[Formula, frozenset[World]] = _cache if _cache is not None else {}

    def evaluate(phi: Formula) -> frozenset[World]:
        if phi in cache:
            return cache[phi]
        result: frozenset[World]
        if isinstance(phi, Prop):
            result = model.valuation_of(phi.name)
        elif isinstance(phi, Top):
            result = model.worlds
        elif isinstance(phi, Bottom):
            result = frozenset()
        elif isinstance(phi, Not):
            result = model.worlds - evaluate(phi.operand)
        elif isinstance(phi, And):
            result = evaluate(phi.left) & evaluate(phi.right)
        elif isinstance(phi, Or):
            result = evaluate(phi.left) | evaluate(phi.right)
        elif isinstance(phi, Implies):
            result = (model.worlds - evaluate(phi.left)) | evaluate(phi.right)
        elif isinstance(phi, Diamond):
            index = _resolve_index(model, phi.index)
            inner = evaluate(phi.operand)
            result = frozenset(
                world
                for world in model.worlds
                if any(successor in inner for successor in model.successors(world, index))
            )
        elif isinstance(phi, Box):
            index = _resolve_index(model, phi.index)
            inner = evaluate(phi.operand)
            result = frozenset(
                world
                for world in model.worlds
                if all(successor in inner for successor in model.successors(world, index))
            )
        elif isinstance(phi, GradedDiamond):
            index = _resolve_index(model, phi.index)
            inner = evaluate(phi.operand)
            result = frozenset(
                world
                for world in model.worlds
                if sum(1 for successor in model.successors(world, index) if successor in inner)
                >= phi.grade
            )
        else:
            raise TypeError(f"unknown formula type: {phi!r}")
        cache[phi] = result
        return result

    return evaluate(formula)


def extension(
    model: KripkeModel,
    formula: Formula,
    _cache: dict | None = None,
    engine: str = "compiled",
) -> frozenset[World]:
    """The set ``||formula||_model`` of worlds where the formula is true.

    ``engine`` selects the compiled bitset checker (default), the
    packed-uint64 NumPy kernel (``"vector"``) or the seed oracle
    (``"reference"``); resolution and capability checks live in
    :func:`repro.engines.resolve_engine`.
    """
    engine = check_engine(engine, "extension")
    if engine == "reference":
        return reference_extension(model, formula, _cache)
    if engine == "vector":
        from repro.logic.vector import vector_kripke

        vector = vector_kripke(model)
        if _cache is None:
            return vector.extension(formula)
        _claim_cache(model, _cache)
        cached = _cache.get(formula)
        if cached is not None:
            return cached
        row_cache = _cache.get(_CACHE_ROWS)
        if row_cache is None:
            row_cache = _cache[_CACHE_ROWS] = {}
        result = vector.extension(formula, row_cache)
        _cache[formula] = result
        return result
    compiled = compile_kripke(model)
    if _cache is None:
        return compiled.extension(formula)
    _claim_cache(model, _cache)
    cached = _cache.get(formula)
    if cached is not None:
        return cached
    bits_cache = _cache.get(_CACHE_BITS)
    if bits_cache is None:
        bits_cache = _cache[_CACHE_BITS] = {}
    result = compiled.to_worlds(compiled.extension_bits(formula, bits_cache))
    _cache[formula] = result
    return result


def satisfies(
    model: KripkeModel, world: World, formula: Formula, engine: str = "compiled"
) -> bool:
    """Whether ``model, world |= formula``.

    The compiled engine answers the single-world query top-down with
    short-circuiting and memoisation; it does not compute the full extension
    of the formula over all worlds (which is what the reference checker, and
    the seed implementation of this function, do).  ``engine="vector"``
    shares the compiled top-down checker: a single-world query has no batch
    to vectorize, and the two engines are extension-identical by the
    differential suite.
    """
    if world not in model.worlds:
        raise ValueError(f"{world!r} is not a world of the model")
    engine = check_engine(engine, "satisfies")
    if engine == "reference":
        return world in reference_extension(model, formula)
    return compile_kripke(model).satisfies(world, formula)


def equivalent_on(
    model: KripkeModel, first: Formula, second: Formula, engine: str = "compiled"
) -> bool:
    """Whether two formulas have the same extension on ``model``.

    Both formulas are evaluated with one shared subformula cache, so common
    subformulas are checked once (the seed implementation evaluated the two
    formulas with separate caches).
    """
    engine = check_engine(engine, "equivalent_on")
    if engine == "reference":
        cache: dict = {}
        return reference_extension(model, first, cache) == reference_extension(
            model, second, cache
        )
    if engine == "vector":
        from repro.logic.vector import vector_kripke

        vector = vector_kripke(model)
        row_cache: dict = {}
        return vector.extension_bits(first, row_cache) == vector.extension_bits(
            second, row_cache
        )
    compiled = compile_kripke(model)
    bits_cache: dict[Formula, int] = {}
    return compiled.extension_bits(first, bits_cache) == compiled.extension_bits(
        second, bits_cache
    )
