"""The model checker: Kripke semantics for ML, GML, MML and GMML.

The truth definition follows Section 4.1 of the paper.  The checker computes
the *extension* ``||phi||_K`` of a formula (the set of worlds where it holds)
bottom-up over subformulas, memoising intermediate extensions, so evaluating a
formula of size ``s`` over a model with ``n`` worlds and ``m`` relation pairs
costs ``O(s * (n + m))``.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Any

from repro.logic.kripke import KripkeModel, World
from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    Formula,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
)


def _resolve_index(model: KripkeModel, index: Hashable) -> Hashable:
    """Resolve a ``None`` modality index to the model's unique relation index."""
    if index is not None:
        return index
    indices = model.indices
    if len(indices) != 1:
        raise ValueError(
            "a plain (unindexed) modality can only be evaluated on a unimodal model; "
            f"this model has indices {sorted(indices, key=repr)!r}"
        )
    return next(iter(indices))


def extension(model: KripkeModel, formula: Formula, _cache: dict | None = None) -> frozenset[World]:
    """The set ``||formula||_model`` of worlds where the formula is true."""
    cache: dict[Formula, frozenset[World]] = _cache if _cache is not None else {}

    def evaluate(phi: Formula) -> frozenset[World]:
        if phi in cache:
            return cache[phi]
        result: frozenset[World]
        if isinstance(phi, Prop):
            result = model.valuation_of(phi.name)
        elif isinstance(phi, Top):
            result = model.worlds
        elif isinstance(phi, Bottom):
            result = frozenset()
        elif isinstance(phi, Not):
            result = model.worlds - evaluate(phi.operand)
        elif isinstance(phi, And):
            result = evaluate(phi.left) & evaluate(phi.right)
        elif isinstance(phi, Or):
            result = evaluate(phi.left) | evaluate(phi.right)
        elif isinstance(phi, Implies):
            result = (model.worlds - evaluate(phi.left)) | evaluate(phi.right)
        elif isinstance(phi, Diamond):
            index = _resolve_index(model, phi.index)
            inner = evaluate(phi.operand)
            result = frozenset(
                world
                for world in model.worlds
                if any(successor in inner for successor in model.successors(world, index))
            )
        elif isinstance(phi, Box):
            index = _resolve_index(model, phi.index)
            inner = evaluate(phi.operand)
            result = frozenset(
                world
                for world in model.worlds
                if all(successor in inner for successor in model.successors(world, index))
            )
        elif isinstance(phi, GradedDiamond):
            index = _resolve_index(model, phi.index)
            inner = evaluate(phi.operand)
            result = frozenset(
                world
                for world in model.worlds
                if sum(1 for successor in model.successors(world, index) if successor in inner)
                >= phi.grade
            )
        else:
            raise TypeError(f"unknown formula type: {phi!r}")
        cache[phi] = result
        return result

    return evaluate(formula)


def satisfies(model: KripkeModel, world: World, formula: Formula) -> bool:
    """Whether ``model, world |= formula``."""
    if world not in model.worlds:
        raise ValueError(f"{world!r} is not a world of the model")
    return world in extension(model, formula)


def equivalent_on(model: KripkeModel, first: Formula, second: Formula) -> bool:
    """Whether two formulas have the same extension on ``model``."""
    return extension(model, first) == extension(model, second)
