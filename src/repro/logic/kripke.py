"""Finite Kripke models (Section 4.1).

A Kripke model for a set of proposition symbols is a tuple
``K = (W, (R_alpha)_{alpha in I}, tau)``: a set of worlds, a family of binary
accessibility relations indexed by ``I`` and a valuation assigning to each
proposition the set of worlds where it holds.  In the paper's re-reading of
distributed computing, the worlds are processors and the accessibility
relations are communication channels (Table 3).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Any

World = Hashable
Index = Hashable


class KripkeModel:
    """An immutable finite Kripke model.

    Parameters
    ----------
    worlds:
        The set of worlds ``W`` (must be non-empty).
    relations:
        Mapping from modality index ``alpha`` to an iterable of pairs
        ``(v, w)`` meaning ``(v, w) in R_alpha``.
    valuation:
        Mapping from proposition symbol to the set of worlds where it is true.
        Propositions absent from the mapping are false everywhere.
    """

    # ``_compiled`` caches the flat-array form built by
    # :func:`repro.logic.engine.compile_kripke` (owned by the logic engine),
    # mirroring ``Graph._default_compiled`` in the execution engine; its
    # lifetime is exactly the model's.
    __slots__ = ("_worlds", "_relations", "_successors", "_valuation", "_compiled")

    def __init__(
        self,
        worlds: Iterable[World],
        relations: Mapping[Index, Iterable[tuple[World, World]]],
        valuation: Mapping[Hashable, Iterable[World]] | None = None,
    ) -> None:
        self._worlds: frozenset[World] = frozenset(worlds)
        if not self._worlds:
            raise ValueError("a Kripke model needs at least one world")
        rel: dict[Index, frozenset[tuple[World, World]]] = {}
        successors: dict[Index, dict[World, tuple[World, ...]]] = {}
        for index, pairs in relations.items():
            pair_set = frozenset((v, w) for v, w in pairs)
            for v, w in pair_set:
                if v not in self._worlds or w not in self._worlds:
                    raise ValueError(f"relation {index!r} mentions unknown world in ({v!r}, {w!r})")
            rel[index] = pair_set
            per_world: dict[World, list[World]] = {}
            for v, w in pair_set:
                per_world.setdefault(v, []).append(w)
            successors[index] = {
                v: tuple(sorted(ws, key=repr)) for v, ws in per_world.items()
            }
        self._relations = rel
        self._successors = successors
        val: dict[Hashable, frozenset[World]] = {}
        if valuation:
            for prop, extent in valuation.items():
                extent_set = frozenset(extent)
                unknown = extent_set - self._worlds
                if unknown:
                    raise ValueError(f"valuation of {prop!r} mentions unknown worlds {unknown!r}")
                val[prop] = extent_set
        self._valuation = val
        self._compiled: Any = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def worlds(self) -> frozenset[World]:
        return self._worlds

    @property
    def indices(self) -> frozenset[Index]:
        """The modality indices ``I`` of the model."""
        return frozenset(self._relations)

    @property
    def propositions(self) -> frozenset[Hashable]:
        """The proposition symbols with a non-trivial valuation."""
        return frozenset(self._valuation)

    def relation(self, index: Index) -> frozenset[tuple[World, World]]:
        """The accessibility relation ``R_alpha`` (empty if the index is unknown)."""
        return self._relations.get(index, frozenset())

    def successors(self, world: World, index: Index) -> tuple[World, ...]:
        """The ``alpha``-successors of a world, in deterministic order."""
        return self._successors.get(index, {}).get(world, ())

    def holds(self, prop: Hashable, world: World) -> bool:
        """Whether proposition ``prop`` is true at ``world``."""
        return world in self._valuation.get(prop, frozenset())

    def valuation_of(self, prop: Hashable) -> frozenset[World]:
        """The set of worlds where ``prop`` holds."""
        return self._valuation.get(prop, frozenset())

    def label(self, world: World) -> frozenset[Hashable]:
        """The set of propositions true at ``world``."""
        return frozenset(prop for prop in self._valuation if self.holds(prop, world))

    # ------------------------------------------------------------------ #
    # Constructions
    # ------------------------------------------------------------------ #

    def disjoint_union(self, other: "KripkeModel") -> "KripkeModel":
        """The disjoint union of two models; worlds are tagged with 0 and 1.

        Used to decide bisimilarity of worlds living in different models.
        """
        worlds = [(0, w) for w in self._worlds] + [(1, w) for w in other._worlds]
        relations: dict[Index, list[tuple[World, World]]] = {}
        for index in self.indices | other.indices:
            pairs: list[tuple[World, World]] = []
            pairs.extend(((0, v), (0, w)) for v, w in self.relation(index))
            pairs.extend(((1, v), (1, w)) for v, w in other.relation(index))
            relations[index] = pairs
        valuation: dict[Hashable, list[World]] = {}
        for prop in self.propositions | other.propositions:
            extent: list[World] = []
            extent.extend((0, w) for w in self.valuation_of(prop))
            extent.extend((1, w) for w in other.valuation_of(prop))
            valuation[prop] = extent
        return KripkeModel(worlds, relations, valuation)

    def restrict_indices(self, keep: Iterable[Index]) -> "KripkeModel":
        """A copy keeping only the relations whose index is in ``keep``."""
        keep_set = set(keep)
        relations = {index: pairs for index, pairs in self._relations.items() if index in keep_set}
        return KripkeModel(self._worlds, relations, self._valuation)

    # ------------------------------------------------------------------ #
    # Value-object protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KripkeModel):
            return NotImplemented
        return (
            self._worlds == other._worlds
            and self._relations == other._relations
            and self._valuation == other._valuation
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._worlds,
                frozenset(self._relations.items()),
                frozenset(self._valuation.items()),
            )
        )

    def __repr__(self) -> str:
        return (
            f"KripkeModel(worlds={len(self._worlds)}, "
            f"relations={len(self._relations)}, propositions={len(self._valuation)})"
        )
