"""NumPy vector logic kernel: packed-uint64 batched model checking.

The compiled bitset checker (:mod:`repro.logic.engine`) represents every
extension as one Python big int, which makes Boolean connectives single
C-level operations -- but the modal operators still loop in Python:
``<a>phi`` walks the set bits of ``||phi||`` one predecessor mask at a time,
and graded diamonds AND the successor mask of *every* world against the
operand extension in a Python ``for`` loop.  On a 10^4-world sweep model
those per-world loops dominate.

This module stores each relation as a packed bit *matrix* -- an
``(n, words)`` uint64 array whose row ``i`` is the successor bitset of world
``i`` -- and evaluates whole batches of formulas layer by layer over the
hash-consed DAG with array ops:

* extensions are ``(words,)`` uint64 rows; Boolean connectives are
  elementwise ``& | ^``;
* for sparse relations (fewer edges than dense words) the modal operators
  run over a CSR adjacency: one ``gather + cumsum`` pass yields the
  per-world count of successors inside ``||phi||``, from which
  ``<a>phi`` (``counts > 0``), ``[a]phi`` (``counts == degree``) and
  ``<a>^k phi`` (``counts >= k``) all fall out in O(edges);
* dense relations fall back to the packed matrix: ``<a>phi`` is
  ``(S & x).any(axis=1)`` -- one fused pass, no per-world Python -- with
  ``[a]phi`` as its De Morgan dual and graded diamonds counted via
  ``np.bitwise_count`` (a portable per-byte popcount table stands in on
  older NumPy);
* a :meth:`VectorKripke.check_many` batch first collects every reachable
  pool node of every formula, then evaluates the union **once** in
  ascending pool-id order (children before parents by hash-consing), so
  shared subformulas across the batch cost one array pass total.

Results are bit-for-bit the compiled engine's: the packed rows decode to
the same Python bitsets, and ``tests/test_vector_logic.py`` checks the
identity on random Kripke models (including models crossing the 64-bit
word boundary).  The vector form is cached on the
:class:`~repro.logic.engine.CompiledKripke` it was built from (``_vector``
slot), mirroring how the compiled form is cached on the model.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.logic.engine import CompiledKripke, compile_kripke
from repro.logic.kripke import KripkeModel, World
from repro.logic.syntax import (
    KIND_AND,
    KIND_BOTTOM,
    KIND_BOX,
    KIND_DIAMOND,
    KIND_IMPLIES,
    KIND_NOT,
    KIND_OR,
    KIND_PROP,
    KIND_TOP,
    Formula,
    formula_pool,
)

__all__ = ["VectorKripke", "vector_check_many", "vector_kripke"]


def _popcount(np: Any, words: Any) -> Any:
    """Per-element popcount of a uint64 array, portable across NumPy versions."""
    counter = getattr(np, "bitwise_count", None)
    if counter is not None:
        return counter(words)
    table = _BYTE_POPCOUNT.get(id(np))
    if table is None:
        table = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)
        _BYTE_POPCOUNT[id(np)] = table
    return table[words.view(np.uint8)].reshape(*words.shape, 8).sum(axis=-1, dtype=np.int64)


_BYTE_POPCOUNT: dict[int, Any] = {}

#: Distinct sentinel: ``None`` in the CSR cache means "relation is dense,
#: use the packed matrix", absence means "not probed yet".
_CSR_UNBUILT = object()


class VectorKripke:
    """Packed-uint64 twin of a :class:`~repro.logic.engine.CompiledKripke`.

    ``succ[index]`` is the ``(n, words)`` successor bit matrix of a relation
    and ``all_row`` the ``(words,)`` row with the low ``n`` bits set; every
    extension computed by :meth:`extension_row` is a ``(words,)`` uint64
    row in the same layout, decodable through the compiled form's
    ``to_worlds``.
    """

    __slots__ = ("np", "base", "n", "words", "all_row", "succ", "prop_rows", "_csr_cache")

    def __init__(self, np: Any, base: CompiledKripke) -> None:
        self.np = np
        self.base = base
        n = base.n
        self.n = n
        words = max(1, (n + 63) >> 6)
        self.words = words
        self.all_row = self._row_of(base.all_mask)
        self.succ = {
            index: self._matrix_of(masks)
            for index, masks in base.succ_masks.items()
        }
        self.prop_rows = {
            prop: self._row_of(bits) for prop, bits in base.prop_bits.items()
        }
        self._csr_cache: dict[Any, Any] = {}

    def _row_of(self, bits: int) -> Any:
        """Pack one Python-int bitset into a ``(words,)`` uint64 row."""
        np = self.np
        return np.frombuffer(bits.to_bytes(self.words * 8, "little"), dtype=np.uint64)

    def _matrix_of(self, masks: list[int]) -> Any:
        """Pack per-world bitsets into an ``(n, words)`` uint64 matrix."""
        np = self.np
        span = self.words * 8
        data = b"".join(mask.to_bytes(span, "little") for mask in masks)
        if not data:
            return np.zeros((0, self.words), dtype=np.uint64)
        return np.frombuffer(data, dtype=np.uint64).reshape(self.n, self.words)

    def _pack_bool(self, flags: Any) -> Any:
        """Pack an ``(n,)`` bool array into a ``(words,)`` uint64 row."""
        np = self.np
        packed = np.packbits(flags, bitorder="little")
        row = np.zeros(self.words * 8, dtype=np.uint8)
        row[: len(packed)] = packed
        return row.view(np.uint64)

    def _unpack_bool(self, row: Any) -> Any:
        """Unpack a ``(words,)`` uint64 row into an ``(n,)`` 0/1 uint8 array."""
        np = self.np
        return np.unpackbits(row.view(np.uint8), count=self.n, bitorder="little")

    def _csr(self, index: Any) -> Any:
        """CSR adjacency ``(indptr, cols, deg)`` of a relation, or ``None``.

        Returns ``None`` for relations dense enough that the packed-matrix
        pass (``n * words`` word ops) beats the O(edges) gather.  Built
        lazily from the packed matrix in bounded row chunks and cached.
        """
        entry = self._csr_cache.get(index, _CSR_UNBUILT)
        if entry is not _CSR_UNBUILT:
            return entry
        np = self.np
        matrix = self.succ[index]
        edges = int(_popcount(np, matrix).sum())
        if edges > self.n * self.words:
            entry = None
        else:
            row_chunks, col_chunks = [], []
            for start in range(0, self.n, 2048):
                chunk = matrix[start : start + 2048]
                bits = np.unpackbits(chunk.view(np.uint8), axis=1, bitorder="little")
                rows, cols = np.nonzero(bits[:, : self.n])
                row_chunks.append(rows.astype(np.int64) + start)
                col_chunks.append(cols.astype(np.int64))
            rows = np.concatenate(row_chunks) if row_chunks else np.zeros(0, np.int64)
            cols = np.concatenate(col_chunks) if col_chunks else np.zeros(0, np.int64)
            deg = np.bincount(rows, minlength=self.n).astype(np.int64)
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(deg, out=indptr[1:])
            entry = (indptr, cols, deg)
        self._csr_cache[index] = entry
        return entry

    def _csr_counts(self, csr: Any, operand_row: Any) -> Any:
        """Per-world count of successors inside the operand extension."""
        np = self.np
        indptr, cols, _deg = csr
        inside = self._unpack_bool(operand_row)
        prefix = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum(inside[cols], dtype=np.int64, out=prefix[1:])
        return prefix[indptr[1:]] - prefix[indptr[:-1]]

    def row_to_bits(self, row: Any) -> int:
        """Decode a packed row back into a Python-int bitset."""
        return int.from_bytes(row.tobytes(), "little")

    def to_worlds(self, row: Any) -> frozenset[World]:
        """Decode a packed row into the corresponding set of worlds."""
        return self.base.to_worlds(self.row_to_bits(row))

    # ------------------------------------------------------------------ #
    # Batched ascending DAG pass
    # ------------------------------------------------------------------ #

    def extension_row(self, formula: Formula, cache: dict[int, Any] | None = None) -> Any:
        """``||formula||`` as a packed uint64 row, memoised per pool node."""
        if not isinstance(formula, Formula):
            raise TypeError(f"unknown formula type: {formula!r}")
        if cache is None:
            cache = {}
        self._evaluate_batch((formula,), cache)
        return cache[formula.node_id]

    def extension_bits(self, formula: Formula, cache: dict[int, Any] | None = None) -> int:
        """``||formula||`` as a Python-int bitset (compiled-engine layout)."""
        return self.row_to_bits(self.extension_row(formula, cache))

    def extension(self, formula: Formula, cache: dict[int, Any] | None = None) -> frozenset[World]:
        """``||formula||`` as a set of worlds."""
        return self.to_worlds(self.extension_row(formula, cache))

    def check_many(self, formulas: Iterable[Formula]) -> list[frozenset[World]]:
        """Extensions of many formulas, evaluated layer by layer as a batch.

        The reachable pool nodes of *all* the formulas are collected first
        and evaluated in one ascending pass (children before parents by
        hash-consed construction), so a subformula shared anywhere in the
        batch costs one array pass total.
        """
        formulas = tuple(formulas)
        for formula in formulas:
            if not isinstance(formula, Formula):
                raise TypeError(f"unknown formula type: {formula!r}")
        cache: dict[int, Any] = {}
        self._evaluate_batch(formulas, cache)
        return [self.to_worlds(cache[formula.node_id]) for formula in formulas]

    def _evaluate_batch(self, formulas: tuple[Formula, ...], cache: dict[int, Any]) -> None:
        np = self.np
        pool = formula_pool()
        kinds, kids_of, payloads = pool.kinds, pool.children, pool.payloads
        # Collect the uncached ids reachable from every root, pruning at
        # already-cached nodes (shared caches skip whole subdags).
        needed: set[int] = set()
        stack = [f.node_id for f in formulas if f.node_id not in cache]
        needed.update(stack)
        while stack:
            for child in kids_of[stack.pop()]:
                if child not in needed and child not in cache:
                    needed.add(child)
                    stack.append(child)
        all_row = self.all_row
        base = self.base
        for node in sorted(needed):
            kind = kinds[node]
            kids = kids_of[node]
            if kind == KIND_PROP:
                row = self.prop_rows.get(payloads[node][0])
                if row is None:
                    row = np.zeros(self.words, dtype=np.uint64)
            elif kind == KIND_TOP:
                row = all_row
            elif kind == KIND_BOTTOM:
                row = np.zeros(self.words, dtype=np.uint64)
            elif kind == KIND_NOT:
                row = all_row ^ cache[kids[0]]
            elif kind == KIND_AND:
                row = cache[kids[0]] & cache[kids[1]]
            elif kind == KIND_OR:
                row = cache[kids[0]] | cache[kids[1]]
            elif kind == KIND_IMPLIES:
                row = (all_row ^ cache[kids[0]]) | cache[kids[1]]
            elif kind == KIND_DIAMOND:
                index = base._resolve_index(payloads[node][0])
                matrix = self.succ.get(index)
                if matrix is None or self.n == 0:
                    row = np.zeros(self.words, dtype=np.uint64)
                else:
                    csr = self._csr(index)
                    if csr is not None:
                        row = self._pack_bool(self._csr_counts(csr, cache[kids[0]]) > 0)
                    else:
                        row = self._pack_bool((matrix & cache[kids[0]]).any(axis=1))
            elif kind == KIND_BOX:
                # [a]phi: no successor outside ||phi||.
                index = base._resolve_index(payloads[node][0])
                matrix = self.succ.get(index)
                if matrix is None or self.n == 0:
                    row = all_row
                else:
                    csr = self._csr(index)
                    if csr is not None:
                        counts = self._csr_counts(csr, cache[kids[0]])
                        row = self._pack_bool(counts == csr[2])
                    else:
                        outside = all_row ^ cache[kids[0]]
                        row = self._pack_bool(~(matrix & outside).any(axis=1))
            else:  # KIND_GRADED
                grade, raw_index = payloads[node]
                index = base._resolve_index(raw_index)
                matrix = self.succ.get(index)
                if grade == 0:
                    row = all_row
                elif matrix is None or self.n == 0:
                    row = np.zeros(self.words, dtype=np.uint64)
                else:
                    csr = self._csr(index)
                    if csr is not None:
                        row = self._pack_bool(self._csr_counts(csr, cache[kids[0]]) >= grade)
                    elif grade == 1:
                        row = self._pack_bool((matrix & cache[kids[0]]).any(axis=1))
                    else:
                        counts = _popcount(np, matrix & cache[kids[0]]).sum(axis=1)
                        row = self._pack_bool(counts >= grade)
            cache[node] = row


def vector_kripke(model: KripkeModel | CompiledKripke) -> VectorKripke:
    """The packed-matrix form of a model, cached on its compiled form."""
    from repro.engines.registry import numpy_or_none, resolve_engine

    resolve_engine("vector", requires={"logic"}, operation="vector model checking")
    compiled = model if isinstance(model, CompiledKripke) else compile_kripke(model)
    vector = compiled._vector
    if vector is None:
        vector = compiled._vector = VectorKripke(numpy_or_none(), compiled)
    return vector


def vector_check_many(model: KripkeModel, formulas: Iterable[Formula]) -> list[frozenset[World]]:
    """Batched vector extensions of many formulas over one model."""
    return vector_kripke(model).check_many(formulas)
