"""Formula syntax for ML, GML, MML and GMML (Section 4.1) -- hash-consed.

Formulas are immutable values built from propositions, Boolean connectives
and (possibly graded, possibly indexed) diamonds.  The same AST serves all
four logics; :func:`logic_of` reports the smallest logic a given formula
lives in, and :func:`modal_depth` computes the nesting depth of modalities,
which by Theorem 2 corresponds to the running time of the matching local
algorithm.

Every constructor is *interned* into a process-wide :class:`FormulaPool`:
structurally equal formulas are one object, so a formula is a rooted node of
a shared DAG rather than a tree.  Construction assigns dense integer
``node_id``\\s in children-before-parents order (arguments are built before
the enclosing formula), which gives every consumer a topological order for
free: the compiled model checker evaluates a formula in one ascending pass
over ids, and the Theorem 2 construction of Tables 4-5 -- whose
``phi_{z,t}`` / ``theta_{m,j,t}`` subterms repeat combinatorially -- costs
one pool node per *distinct* subterm instead of one tree node per
occurrence.  :func:`dag_size` (distinct reachable nodes), :func:`tree_size`
(fully expanded size, an ``O(1)`` pool lookup maintained incrementally) and
:func:`modal_depth` (also ``O(1)``) quantify the sharing.

The modality index ``alpha`` is an arbitrary hashable value.  The Kripke
encodings of Section 4.3 use pairs such as ``(2, 1)``, ``(2, '*')``,
``('*', 1)`` and ``('*', '*')``; plain ML/GML formulas may leave the index
as ``None``, which the model checker resolves to the unique relation of a
unimodal model.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

# ---------------------------------------------------------------------- #
# Node kinds (pool-level codes; dense small ints so engines dispatch on them)
# ---------------------------------------------------------------------- #

KIND_PROP = 0
KIND_TOP = 1
KIND_BOTTOM = 2
KIND_NOT = 3
KIND_AND = 4
KIND_OR = 5
KIND_IMPLIES = 6
KIND_DIAMOND = 7
KIND_BOX = 8
KIND_GRADED = 9

#: Kinds that bind a modality (contribute to the modal depth).
MODAL_KINDS = frozenset({KIND_DIAMOND, KIND_BOX, KIND_GRADED})


class FormulaPool:
    """The process-wide hash-consing pool behind all formula constructors.

    Per node id (dense ints, assigned in construction = topological order):

    * ``nodes[i]`` -- the unique :class:`Formula` object,
    * ``kinds[i]`` -- one of the ``KIND_*`` codes,
    * ``children[i]`` -- the ids of the immediate subformulas,
    * ``payloads[i]`` -- the non-formula data (``(name,)`` for propositions,
      ``(index,)`` for diamonds/boxes, ``(grade, index)`` for graded
      diamonds, ``()`` otherwise),
    * ``tree_sizes[i]`` / ``modal_depths[i]`` -- incremental DP values
      (children are registered first, so both are one addition/max at
      registration; tree sizes are exact big ints even when the expanded
      tree would have billions of nodes).

    The pool only ever grows: node ids stay valid for the lifetime of the
    process, which is what lets compiled engines key caches by id.
    """

    __slots__ = ("_intern", "nodes", "kinds", "children", "payloads",
                 "tree_sizes", "modal_depths")

    def __init__(self) -> None:
        self._intern: dict[tuple, "Formula"] = {}
        self.nodes: list[Formula] = []
        self.kinds: list[int] = []
        self.children: list[tuple[int, ...]] = []
        self.payloads: list[tuple] = []
        self.tree_sizes: list[int] = []
        self.modal_depths: list[int] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def _register(
        self, cls: type, key: tuple, kind: int, child_ids: tuple[int, ...],
        payload: tuple, attrs: tuple[tuple[str, Any], ...],
    ) -> "Formula":
        """Intern-or-create the node described by ``key``."""
        existing = self._intern.get(key)
        if existing is not None:
            return existing
        formula = object.__new__(cls)
        for name, value in attrs:
            object.__setattr__(formula, name, value)
        node_id = len(self.nodes)
        object.__setattr__(formula, "node_id", node_id)
        self._intern[key] = formula
        self.nodes.append(formula)
        self.kinds.append(kind)
        self.children.append(child_ids)
        self.payloads.append(payload)
        tree = 1
        depth = 0
        for child in child_ids:
            tree += self.tree_sizes[child]
            child_depth = self.modal_depths[child]
            if child_depth > depth:
                depth = child_depth
        if kind in MODAL_KINDS:
            depth += 1
        self.tree_sizes.append(tree)
        self.modal_depths.append(depth)
        return formula

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def reachable_ids(self, root: int) -> list[int]:
        """The ids reachable from ``root``, ascending (= children first)."""
        seen = {root}
        stack = [root]
        children = self.children
        while stack:
            for child in children[stack.pop()]:
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return sorted(seen)

    def dag_size(self, root: int) -> int:
        """The number of distinct subformulas (shared nodes counted once)."""
        return len(self.reachable_ids(root))

    def stats(self) -> dict[str, int]:
        """Pool-wide counters (size, interning table size)."""
        return {"nodes": len(self.nodes), "interned": len(self._intern)}


#: The process-wide pool.  One pool per process: node ids are only
#: meaningful within it, and multiprocessing workers each grow their own.
_POOL = FormulaPool()


def formula_pool() -> FormulaPool:
    """The process-wide hash-consing pool."""
    return _POOL


class Formula:
    """Base class of all formulas.

    Instances are immutable, hashable and *interned*: structurally equal
    formulas constructed anywhere in the process are the same object, so
    equality is identity and ``node_id`` addresses the unique pool node.
    """

    __slots__ = ("node_id",)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)


class Prop(Formula):
    """A proposition symbol ``q``."""

    __slots__ = ("name",)

    def __new__(cls, name: Hashable) -> "Prop":
        return _POOL._register(  # type: ignore[return-value]
            cls, (KIND_PROP, (), name), KIND_PROP, (), (name,), (("name", name),)
        )

    def __repr__(self) -> str:
        return f"Prop(name={self.name!r})"

    def __str__(self) -> str:
        return str(self.name)

    def __reduce__(self):
        return (Prop, (self.name,))


class Top(Formula):
    """The constant true."""

    __slots__ = ()

    def __new__(cls) -> "Top":
        return _POOL._register(cls, (KIND_TOP,), KIND_TOP, (), (), ())  # type: ignore

    def __repr__(self) -> str:
        return "Top()"

    def __str__(self) -> str:
        return "true"

    def __reduce__(self):
        return (Top, ())


class Bottom(Formula):
    """The constant false."""

    __slots__ = ()

    def __new__(cls) -> "Bottom":
        return _POOL._register(cls, (KIND_BOTTOM,), KIND_BOTTOM, (), (), ())  # type: ignore

    def __repr__(self) -> str:
        return "Bottom()"

    def __str__(self) -> str:
        return "false"

    def __reduce__(self):
        return (Bottom, ())


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __new__(cls, operand: Formula) -> "Not":
        return _POOL._register(  # type: ignore[return-value]
            cls, (KIND_NOT, (operand.node_id,)), KIND_NOT, (operand.node_id,),
            (), (("operand", operand),)
        )

    def __repr__(self) -> str:
        return f"Not(operand={self.operand!r})"

    def __str__(self) -> str:
        return f"~{self.operand}"

    def __reduce__(self):
        return (Not, (self.operand,))


class _Binary(Formula):
    """Shared machinery of the binary connectives."""

    __slots__ = ("left", "right")
    _kind: int = -1
    _symbol: str = "?"

    def __new__(cls, left: Formula, right: Formula) -> "_Binary":
        return _POOL._register(  # type: ignore[return-value]
            cls,
            (cls._kind, (left.node_id, right.node_id)),
            cls._kind,
            (left.node_id, right.node_id),
            (),
            (("left", left), ("right", right)),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(left={self.left!r}, right={self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self._symbol} {self.right})"

    def __reduce__(self):
        return (type(self), (self.left, self.right))


class And(_Binary):
    """Conjunction."""

    __slots__ = ()
    _kind = KIND_AND
    _symbol = "&"


class Or(_Binary):
    """Disjunction (definable as ``~(~a & ~b)``; kept primitive for readability)."""

    __slots__ = ()
    _kind = KIND_OR
    _symbol = "|"


class Implies(_Binary):
    """Implication (definable; kept primitive for readability)."""

    __slots__ = ()
    _kind = KIND_IMPLIES
    _symbol = "->"


class Diamond(Formula):
    """``<alpha> phi``: some ``alpha``-successor satisfies ``phi``."""

    __slots__ = ("operand", "index")

    def __new__(cls, operand: Formula, index: Hashable = None) -> "Diamond":
        return _POOL._register(  # type: ignore[return-value]
            cls, (KIND_DIAMOND, (operand.node_id,), index), KIND_DIAMOND,
            (operand.node_id,), (index,), (("operand", operand), ("index", index))
        )

    def __repr__(self) -> str:
        return f"Diamond(operand={self.operand!r}, index={self.index!r})"

    def __str__(self) -> str:
        label = "" if self.index is None else _index_str(self.index)
        return f"<{label}>{self.operand}"

    def __reduce__(self):
        return (Diamond, (self.operand, self.index))


class Box(Formula):
    """``[alpha] phi``: every ``alpha``-successor satisfies ``phi``."""

    __slots__ = ("operand", "index")

    def __new__(cls, operand: Formula, index: Hashable = None) -> "Box":
        return _POOL._register(  # type: ignore[return-value]
            cls, (KIND_BOX, (operand.node_id,), index), KIND_BOX,
            (operand.node_id,), (index,), (("operand", operand), ("index", index))
        )

    def __repr__(self) -> str:
        return f"Box(operand={self.operand!r}, index={self.index!r})"

    def __str__(self) -> str:
        label = "" if self.index is None else _index_str(self.index)
        return f"[{label}]{self.operand}"

    def __reduce__(self):
        return (Box, (self.operand, self.index))


class GradedDiamond(Formula):
    """``<alpha>_{>=k} phi``: at least ``k`` ``alpha``-successors satisfy ``phi``."""

    __slots__ = ("operand", "grade", "index")

    def __new__(
        cls, operand: Formula, grade: int, index: Hashable = None
    ) -> "GradedDiamond":
        if grade < 0:
            raise ValueError("the grade of a graded diamond must be non-negative")
        return _POOL._register(  # type: ignore[return-value]
            cls, (KIND_GRADED, (operand.node_id,), grade, index), KIND_GRADED,
            (operand.node_id,), (grade, index),
            (("operand", operand), ("grade", grade), ("index", index))
        )

    def __repr__(self) -> str:
        return (
            f"GradedDiamond(operand={self.operand!r}, grade={self.grade!r}, "
            f"index={self.index!r})"
        )

    def __str__(self) -> str:
        label = "" if self.index is None else _index_str(self.index)
        return f"<{label}>>={self.grade} {self.operand}"

    def __reduce__(self):
        return (GradedDiamond, (self.operand, self.grade, self.index))


def _index_str(index: Any) -> str:
    if isinstance(index, tuple):
        return ",".join(str(part) for part in index)
    return str(index)


# ---------------------------------------------------------------------- #
# Builders
# ---------------------------------------------------------------------- #


def conjunction(formulas: Iterable[Formula]) -> Formula:
    """The conjunction of the given formulas (``Top()`` for an empty family)."""
    result: Formula | None = None
    for formula in formulas:
        result = formula if result is None else And(result, formula)
    return result if result is not None else Top()


def disjunction(formulas: Iterable[Formula]) -> Formula:
    """The disjunction of the given formulas (``Bottom()`` for an empty family)."""
    result: Formula | None = None
    for formula in formulas:
        result = formula if result is None else Or(result, formula)
    return result if result is not None else Bottom()


# ---------------------------------------------------------------------- #
# Structural queries (pool-backed: O(dag) or O(1), never O(tree))
# ---------------------------------------------------------------------- #


def _require_formula(formula: Formula) -> int:
    if not isinstance(formula, Formula):
        raise TypeError(f"unknown formula type: {formula!r}")
    return formula.node_id


def children(formula: Formula) -> tuple[Formula, ...]:
    """The immediate subformulas."""
    node_id = _require_formula(formula)
    nodes = _POOL.nodes
    return tuple(nodes[child] for child in _POOL.children[node_id])


def subformulas(formula: Formula) -> frozenset[Formula]:
    """All *distinct* subformulas of ``formula``, including itself."""
    node_id = _require_formula(formula)
    nodes = _POOL.nodes
    return frozenset(nodes[i] for i in _POOL.reachable_ids(node_id))


def topological_ids(formula: Formula) -> list[int]:
    """Pool ids of all subformulas, children strictly before parents.

    This is the evaluation order of the compiled engines: one ascending
    pass resolves every node after its children.
    """
    return _POOL.reachable_ids(_require_formula(formula))


def dag_size(formula: Formula) -> int:
    """The number of distinct subformulas -- the size of the shared DAG."""
    return _POOL.dag_size(_require_formula(formula))


def tree_size(formula: Formula) -> int:
    """The size of the fully expanded formula tree (an O(1) pool lookup).

    For the Table 4/5 formulas this can exceed any feasible memory while
    :func:`dag_size` stays small; the exact big-int value is maintained
    incrementally at construction.
    """
    return _POOL.tree_sizes[_require_formula(formula)]


def modal_depth(formula: Formula) -> int:
    """The modal depth ``md(phi)`` of Section 4.1 (an O(1) pool lookup)."""
    return _POOL.modal_depths[_require_formula(formula)]


def propositions(formula: Formula) -> frozenset[Hashable]:
    """The proposition symbols occurring in ``formula``."""
    node_id = _require_formula(formula)
    kinds, payloads = _POOL.kinds, _POOL.payloads
    return frozenset(
        payloads[i][0] for i in _POOL.reachable_ids(node_id) if kinds[i] == KIND_PROP
    )


def modal_indices(formula: Formula) -> frozenset[Hashable]:
    """The modality indices occurring in ``formula`` (``None`` for plain diamonds)."""
    node_id = _require_formula(formula)
    kinds, payloads = _POOL.kinds, _POOL.payloads
    return frozenset(
        payloads[i][-1] for i in _POOL.reachable_ids(node_id) if kinds[i] in MODAL_KINDS
    )


def is_graded(formula: Formula) -> bool:
    """Whether ``formula`` uses a graded diamond."""
    node_id = _require_formula(formula)
    kinds = _POOL.kinds
    return any(kinds[i] == KIND_GRADED for i in _POOL.reachable_ids(node_id))


def logic_of(formula: Formula) -> str:
    """The smallest of ML, GML, MML, GMML containing ``formula``.

    A formula is multimodal when it uses more than one modality index (or any
    explicit index besides ``None``), and graded when it uses a graded
    diamond.
    """
    indices = modal_indices(formula) - {None}
    multimodal = len(indices) > 1 or (len(indices) == 1 and None in modal_indices(formula))
    if len(indices) == 1 and None not in modal_indices(formula):
        # A single explicit index can be read as plain ML/GML over that relation,
        # but we classify it as multimodal because the index is named.
        multimodal = True
    graded = is_graded(formula)
    if multimodal and graded:
        return "GMML"
    if multimodal:
        return "MML"
    if graded:
        return "GML"
    return "ML"
