"""Formula syntax for ML, GML, MML and GMML (Section 4.1).

Formulas are immutable trees built from propositions, Boolean connectives and
(possibly graded, possibly indexed) diamonds.  The same AST serves all four
logics; :func:`logic_of` reports the smallest logic a given formula lives in,
and :func:`modal_depth` computes the nesting depth of modalities, which by
Theorem 2 corresponds to the running time of the matching local algorithm.

The modality index ``alpha`` is an arbitrary hashable value.  The Kripke
encodings of Section 4.3 use pairs such as ``(2, 1)``, ``(2, '*')``,
``('*', 1)`` and ``('*', '*')``; plain ML/GML formulas may leave the index as
``None``, which the model checker resolves to the unique relation of a
unimodal model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Hashable, Iterable


class Formula:
    """Base class of all formulas.  Instances are immutable and hashable."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)


@dataclass(frozen=True)
class Prop(Formula):
    """A proposition symbol ``q``."""

    name: Hashable

    def __str__(self) -> str:
        return str(self.name)


@dataclass(frozen=True)
class Top(Formula):
    """The constant true."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom(Formula):
    """The constant false."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def __str__(self) -> str:
        return f"~{_wrap(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction (definable as ``~(~a & ~b)``; kept primitive for readability)."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication (definable; kept primitive for readability)."""

    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Diamond(Formula):
    """``<alpha> phi``: some ``alpha``-successor satisfies ``phi``."""

    operand: Formula
    index: Hashable = None

    def __str__(self) -> str:
        label = "" if self.index is None else _index_str(self.index)
        return f"<{label}>{_wrap(self.operand)}"


@dataclass(frozen=True)
class Box(Formula):
    """``[alpha] phi``: every ``alpha``-successor satisfies ``phi``."""

    operand: Formula
    index: Hashable = None

    def __str__(self) -> str:
        label = "" if self.index is None else _index_str(self.index)
        return f"[{label}]{_wrap(self.operand)}"


@dataclass(frozen=True)
class GradedDiamond(Formula):
    """``<alpha>_{>=k} phi``: at least ``k`` ``alpha``-successors satisfy ``phi``."""

    operand: Formula
    grade: int
    index: Hashable = None

    def __post_init__(self) -> None:
        if self.grade < 0:
            raise ValueError("the grade of a graded diamond must be non-negative")

    def __str__(self) -> str:
        label = "" if self.index is None else _index_str(self.index)
        return f"<{label}>>={self.grade} {_wrap(self.operand)}"


def _wrap(formula: Formula) -> str:
    text = str(formula)
    if isinstance(formula, (Prop, Top, Bottom, Not, Diamond, Box, GradedDiamond)):
        return text
    return text


def _index_str(index: Any) -> str:
    if isinstance(index, tuple):
        return ",".join(str(part) for part in index)
    return str(index)


# ---------------------------------------------------------------------- #
# Builders
# ---------------------------------------------------------------------- #


def conjunction(formulas: Iterable[Formula]) -> Formula:
    """The conjunction of the given formulas (``Top()`` for an empty family)."""
    result: Formula | None = None
    for formula in formulas:
        result = formula if result is None else And(result, formula)
    return result if result is not None else Top()


def disjunction(formulas: Iterable[Formula]) -> Formula:
    """The disjunction of the given formulas (``Bottom()`` for an empty family)."""
    result: Formula | None = None
    for formula in formulas:
        result = formula if result is None else Or(result, formula)
    return result if result is not None else Bottom()


# ---------------------------------------------------------------------- #
# Structural queries
# ---------------------------------------------------------------------- #


def children(formula: Formula) -> tuple[Formula, ...]:
    """The immediate subformulas."""
    if isinstance(formula, (Prop, Top, Bottom)):
        return ()
    if isinstance(formula, (Not, Diamond, Box, GradedDiamond)):
        return (formula.operand,)
    if isinstance(formula, (And, Or, Implies)):
        return (formula.left, formula.right)
    raise TypeError(f"unknown formula type: {formula!r}")


def subformulas(formula: Formula) -> frozenset[Formula]:
    """All subformulas of ``formula``, including itself."""
    result: set[Formula] = set()
    stack = [formula]
    while stack:
        current = stack.pop()
        if current in result:
            continue
        result.add(current)
        stack.extend(children(current))
    return frozenset(result)


def modal_depth(formula: Formula) -> int:
    """The modal depth ``md(phi)`` of Section 4.1."""
    if isinstance(formula, (Prop, Top, Bottom)):
        return 0
    if isinstance(formula, Not):
        return modal_depth(formula.operand)
    if isinstance(formula, (And, Or, Implies)):
        return max(modal_depth(formula.left), modal_depth(formula.right))
    if isinstance(formula, (Diamond, Box, GradedDiamond)):
        return modal_depth(formula.operand) + 1
    raise TypeError(f"unknown formula type: {formula!r}")


def propositions(formula: Formula) -> frozenset[Hashable]:
    """The proposition symbols occurring in ``formula``."""
    return frozenset(sub.name for sub in subformulas(formula) if isinstance(sub, Prop))


def modal_indices(formula: Formula) -> frozenset[Hashable]:
    """The modality indices occurring in ``formula`` (``None`` for plain diamonds)."""
    return frozenset(
        sub.index
        for sub in subformulas(formula)
        if isinstance(sub, (Diamond, Box, GradedDiamond))
    )


def is_graded(formula: Formula) -> bool:
    """Whether ``formula`` uses a graded diamond."""
    return any(isinstance(sub, GradedDiamond) for sub in subformulas(formula))


def logic_of(formula: Formula) -> str:
    """The smallest of ML, GML, MML, GMML containing ``formula``.

    A formula is multimodal when it uses more than one modality index (or any
    explicit index besides ``None``), and graded when it uses a graded
    diamond.
    """
    indices = modal_indices(formula) - {None}
    multimodal = len(indices) > 1 or (len(indices) == 1 and None in modal_indices(formula))
    if len(indices) == 1 and None not in modal_indices(formula):
        # A single explicit index can be read as plain ML/GML over that relation,
        # but we classify it as multimodal because the index is named.
        multimodal = True
    graded = is_graded(formula)
    if multimodal and graded:
        return "GMML"
    if multimodal:
        return "MML"
    if graded:
        return "GML"
    return "ML"
