"""Modal logic substrate: syntax, Kripke semantics, parsing and bisimulation.

The paper characterises the constant-time problem classes with four modal
logics (Section 4.1):

* **ML** -- basic modal logic (one diamond),
* **GML** -- graded modal logic (counting diamonds),
* **MML** -- multimodal logic (one diamond per index), and
* **GMML** -- graded multimodal logic.

This subpackage implements all four over a single formula AST
(:mod:`~repro.logic.syntax`), finite Kripke models
(:mod:`~repro.logic.kripke`), a model checker
(:mod:`~repro.logic.semantics`), a concrete text syntax
(:mod:`~repro.logic.parser`) and the (graded) bisimulation machinery of
Section 4.2 (:mod:`~repro.logic.bisimulation`).

The hot paths -- model checking and partition refinement -- run on the
compiled bitset engine (:mod:`~repro.logic.engine`); the seed
implementations are preserved as differential oracles and every public
entry point takes an ``engine="compiled" | "reference"`` knob.
"""

from repro.logic.syntax import (
    And,
    Bottom,
    Box,
    Diamond,
    Formula,
    GradedDiamond,
    Implies,
    Not,
    Or,
    Prop,
    Top,
    conjunction,
    disjunction,
    logic_of,
    modal_depth,
)
from repro.logic.kripke import KripkeModel
from repro.logic.engine import CompiledKripke, check_many, check_sweep, compile_kripke
from repro.logic.semantics import equivalent_on, extension, satisfies
from repro.logic.parser import parse_formula
from repro.logic.bisimulation import (
    are_bisimilar,
    bisimilarity_partition,
    bisimilar_within,
    bounded_bisimilarity_partition,
    is_bisimulation,
    is_graded_bisimulation,
)

__all__ = [
    "And",
    "Bottom",
    "Box",
    "Diamond",
    "Formula",
    "GradedDiamond",
    "Implies",
    "Not",
    "Or",
    "Prop",
    "Top",
    "conjunction",
    "disjunction",
    "logic_of",
    "modal_depth",
    "KripkeModel",
    "CompiledKripke",
    "check_many",
    "check_sweep",
    "compile_kripke",
    "equivalent_on",
    "extension",
    "satisfies",
    "parse_formula",
    "are_bisimilar",
    "bisimilarity_partition",
    "bisimilar_within",
    "bounded_bisimilarity_partition",
    "is_bisimulation",
    "is_graded_bisimulation",
]
