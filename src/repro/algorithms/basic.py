"""Small building-block algorithms.

These algorithms exist mainly to exercise the execution engine and the
simulation constructions: they span all combinations of receive/send modes,
terminate in a known number of rounds, and have easily predictable outputs.
"""

from __future__ import annotations

from typing import Any

from repro.machines.algorithm import (
    BroadcastAlgorithm,
    MultisetAlgorithm,
    MultisetBroadcastAlgorithm,
    Output,
    SetBroadcastAlgorithm,
    VectorAlgorithm,
)
from repro.machines.multiset import FrozenMultiset


class ConstantAlgorithm(SetBroadcastAlgorithm):
    """Every node halts immediately with a fixed output (runs in 0 rounds)."""

    def __init__(self, value: Any = 0) -> None:
        self._value = value

    def initial_state(self, degree: int) -> Any:
        return Output(self._value)

    def broadcast(self, state: Any) -> Any:  # pragma: no cover - never called
        raise AssertionError("a halted algorithm never sends")

    def transition(self, state: Any, received: Any) -> Any:  # pragma: no cover
        raise AssertionError("a halted algorithm never transitions")


class DegreeAlgorithm(SetBroadcastAlgorithm):
    """Every node outputs its own degree (0 rounds; degree is part of the input)."""

    def initial_state(self, degree: int) -> Any:
        return Output(degree)

    def broadcast(self, state: Any) -> Any:  # pragma: no cover - never called
        raise AssertionError("a halted algorithm never sends")

    def transition(self, state: Any, received: Any) -> Any:  # pragma: no cover
        raise AssertionError("a halted algorithm never transitions")


class RoundCounterAlgorithm(MultisetBroadcastAlgorithm):
    """Run for a fixed number of rounds, then output that number.

    Used to test round accounting and the locality of simulations.
    """

    def __init__(self, rounds: int) -> None:
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self._rounds = rounds

    def initial_state(self, degree: int) -> Any:
        if self._rounds == 0:
            return Output(0)
        return 0

    def broadcast(self, state: Any) -> Any:
        return "tick"

    def transition(self, state: Any, received: FrozenMultiset) -> Any:
        elapsed = state + 1
        if elapsed >= self._rounds:
            return Output(elapsed)
        return elapsed


class NeighbourDegreeSumAlgorithm(MultisetBroadcastAlgorithm):
    """Each node outputs the sum of its neighbours' degrees (1 round, MB model)."""

    def initial_state(self, degree: int) -> Any:
        return degree

    def broadcast(self, state: Any) -> Any:
        return state

    def transition(self, state: Any, received: FrozenMultiset) -> Any:
        return Output(sum(received))


class GatherDegreesAlgorithm(MultisetAlgorithm):
    """Each node outputs the multiset of its neighbours' degrees (1 round, MV model).

    The output is reported as a sorted tuple so that it is hashable and easy
    to compare in tests.
    """

    def initial_state(self, degree: int) -> Any:
        return degree

    def send(self, state: Any, port: int) -> Any:
        return state

    def transition(self, state: Any, received: FrozenMultiset) -> Any:
        return Output(tuple(sorted(received)))


class PortEchoAlgorithm(VectorAlgorithm):
    """Each node outputs the vector of port numbers its neighbours used towards it.

    In round 1 every node sends ``i`` to its output port ``i``; the output of a
    node is the tuple of received values in input-port order.  Under a
    consistent port numbering this is exactly the local type ``t(v)`` of
    Theorem 17 (restricted to the node's degree).
    """

    def initial_state(self, degree: int) -> Any:
        return "start"

    def send(self, state: Any, port: int) -> Any:
        return port

    def transition(self, state: Any, received: tuple) -> Any:
        return Output(tuple(received))


class BroadcastMinimumDegreeAlgorithm(BroadcastAlgorithm):
    """Each node outputs the minimum degree in its closed neighbourhood (VB model)."""

    def initial_state(self, degree: int) -> Any:
        return degree

    def broadcast(self, state: Any) -> Any:
        return state

    def transition(self, state: Any, received: tuple) -> Any:
        return Output(min((state, *received)))
