"""Vertex cover via maximal matching of the bipartite double cover.

Section 3.3 motivates the weak models with the vertex-cover problem: a
2-approximation is known even in MB(1) [AstrandSuomela2010].  We implement the
simpler classical construction in the port-numbering model (class VVc): every
node hosts a "white" copy ``(v, 1)`` and a "black" copy ``(v, 2)`` of itself
in the bipartite double cover; white copies propose along their ports in
increasing order, black copies accept the first proposal they see, and a node
joins the cover when either of its copies is matched.  The matching computed
on the double cover is maximal, so the output is always a vertex cover; its
approximation ratio is *measured* (experiment E11), not asserted.

The reply step sends the acceptance back through the same-numbered port, which
reaches the proposer only under a consistent port numbering -- the algorithm
is therefore a VVc algorithm, running in at most ``2 * Delta + 2`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.machines.algorithm import NO_MESSAGE, Output, VectorAlgorithm

_PROPOSE = "propose"
_RESPOND = "respond"


@dataclass(frozen=True)
class _CoverState:
    stage: str
    degree: int
    white_matched: bool = False
    black_matched: bool = False
    white_next_port: int = 1
    white_proposal_port: int | None = None
    black_accepted_port: int | None = None

    @property
    def white_done(self) -> bool:
        return self.white_matched or self.white_next_port > self.degree


class DoubleCoverMatchingVertexCover(VectorAlgorithm):
    """Vertex cover from a maximal matching of the bipartite double cover (VVc)."""

    def initial_state(self, degree: int) -> Any:
        if degree == 0:
            return Output(0)
        return _CoverState(stage=_PROPOSE, degree=degree)

    # ------------------------------------------------------------------ #
    # Messages
    # ------------------------------------------------------------------ #

    def send(self, state: _CoverState, port: int) -> Any:
        if state.stage == _PROPOSE:
            proposing = (
                not state.white_matched
                and state.white_next_port == port
                and port <= state.degree
            )
            return (_PROPOSE, proposing, state.white_done)
        accepting = state.black_accepted_port == port
        return (_RESPOND, accepting, state.white_done)

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #

    def transition(self, state: _CoverState, received: tuple) -> Any:
        if state.stage == _PROPOSE:
            return self._after_propose_round(state, received)
        return self._after_respond_round(state, received)

    def _after_propose_round(self, state: _CoverState, received: tuple) -> Any:
        proposal_port = None
        if not state.white_matched and state.white_next_port <= state.degree:
            proposal_port = state.white_next_port
        accepted = state.black_accepted_port
        if not state.black_matched:
            incoming = [
                port
                for port, message in enumerate(received, start=1)
                if isinstance(message, tuple) and message[0] == _PROPOSE and message[1]
            ]
            if incoming:
                accepted = min(incoming)
        return replace(
            state,
            stage=_RESPOND,
            black_matched=state.black_matched or accepted is not None,
            black_accepted_port=accepted,
            white_proposal_port=proposal_port,
        )

    def _after_respond_round(self, state: _CoverState, received: tuple) -> Any:
        white_matched = state.white_matched
        white_next_port = state.white_next_port
        if state.white_proposal_port is not None:
            answer = received[state.white_proposal_port - 1]
            if isinstance(answer, tuple) and answer[0] == _RESPOND and answer[1]:
                white_matched = True
            else:
                white_next_port += 1
        new_state = replace(
            state,
            stage=_PROPOSE,
            white_matched=white_matched,
            white_next_port=white_next_port,
            white_proposal_port=None,
            black_accepted_port=None,
        )
        neighbours_done = all(
            message == NO_MESSAGE or (isinstance(message, tuple) and message[2])
            for message in received
        )
        if new_state.white_done and neighbours_done:
            in_cover = new_state.white_matched or new_state.black_matched
            return Output(1 if in_cover else 0)
        return new_state


def cover_from_outputs(outputs: dict[Any, int]) -> frozenset[Any]:
    """The vertex set selected by the algorithm's 0/1 outputs."""
    return frozenset(node for node, value in outputs.items() if value == 1)
