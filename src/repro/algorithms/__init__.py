"""Concrete distributed algorithms in the weak models.

These are the executable witnesses used throughout the experiments:

* :mod:`~repro.algorithms.basic` -- toy algorithms (constants, degree output,
  neighbourhood gathering) used by the simulation and correspondence tests.
* :mod:`~repro.algorithms.parity` -- the MB(1) algorithm of Theorem 13 and an
  SB(1) companion.
* :mod:`~repro.algorithms.leaf_election` -- the SV(1) algorithm of Theorem 11.
* :mod:`~repro.algorithms.local_types` -- the VVc(1) symmetry-breaking
  algorithm of Theorem 17.
* :mod:`~repro.algorithms.vertex_cover` -- a vertex-cover algorithm in the
  port-numbering model via maximal matching of the bipartite double cover
  (Section 3.3 motivation).
"""

from repro.algorithms.basic import (
    ConstantAlgorithm,
    DegreeAlgorithm,
    GatherDegreesAlgorithm,
    NeighbourDegreeSumAlgorithm,
    PortEchoAlgorithm,
    RoundCounterAlgorithm,
)
from repro.algorithms.parity import OddOddNeighboursAlgorithm, SomeOddNeighbourAlgorithm
from repro.algorithms.leaf_election import LeafElectionAlgorithm
from repro.algorithms.local_types import LocalTypeSymmetryBreaking
from repro.algorithms.vertex_cover import DoubleCoverMatchingVertexCover

__all__ = [
    "ConstantAlgorithm",
    "DegreeAlgorithm",
    "GatherDegreesAlgorithm",
    "NeighbourDegreeSumAlgorithm",
    "PortEchoAlgorithm",
    "RoundCounterAlgorithm",
    "OddOddNeighboursAlgorithm",
    "SomeOddNeighbourAlgorithm",
    "LeafElectionAlgorithm",
    "LocalTypeSymmetryBreaking",
    "DoubleCoverMatchingVertexCover",
]
