"""Parity algorithms (Theorem 13 and companions).

:class:`OddOddNeighboursAlgorithm` is the paper's MB(1) witness: each node
broadcasts the parity of its degree, counts how many "odd" messages it
receives and outputs that count modulo 2.  Counting is essential -- the same
problem is *not* solvable in SB (Theorem 13), because set-reception collapses
multiplicities.  :class:`SomeOddNeighbourAlgorithm` is the natural SB(1)
relaxation ("is there at least one odd-degree neighbour?"), which *is*
solvable without counting.
"""

from __future__ import annotations

from typing import Any

from repro.machines.algorithm import MultisetBroadcastAlgorithm, Output, SetBroadcastAlgorithm
from repro.machines.multiset import FrozenMultiset

ODD = "odd"
EVEN = "even"


class OddOddNeighboursAlgorithm(MultisetBroadcastAlgorithm):
    """Output 1 iff the node has an odd number of odd-degree neighbours (MB(1))."""

    def initial_state(self, degree: int) -> Any:
        return ODD if degree % 2 == 1 else EVEN

    def broadcast(self, state: Any) -> Any:
        return state

    def transition(self, state: Any, received: FrozenMultiset) -> Any:
        odd_count = received.count(ODD)
        return Output(odd_count % 2)


class SomeOddNeighbourAlgorithm(SetBroadcastAlgorithm):
    """Output 1 iff the node has at least one odd-degree neighbour (SB(1))."""

    def initial_state(self, degree: int) -> Any:
        return ODD if degree % 2 == 1 else EVEN

    def broadcast(self, state: Any) -> Any:
        return state

    def transition(self, state: Any, received: frozenset) -> Any:
        return Output(1 if ODD in received else 0)
