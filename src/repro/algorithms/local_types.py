"""Local-type symmetry breaking (Theorem 17): a VVc(1) algorithm.

Under a *consistent* port numbering, output port ``i`` and input port ``i`` of
a node are attached to the same neighbour, so after one round in which every
node sends its own port numbers, a node learns its *local type*
``t(v) = (j_1, ..., j_deg(v))``: the port number at the far end of each of its
ports.  In a second round the nodes exchange their local types and a node
outputs 1 exactly when its type is maximal among its neighbours.

Theorem 17 shows that on every connected odd-regular graph without a perfect
matching (the family ``G``; e.g. the Figure 9 graph) a consistent port
numbering forces at least two distinct local types, so the output is
non-constant -- while no Vector algorithm can achieve that under *arbitrary*
port numberings, because Lemma 15 provides an inconsistent numbering that
makes all nodes bisimilar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.machines.algorithm import Output, VectorAlgorithm


@dataclass(frozen=True)
class _TypeState:
    """State after round 1: the node's local type."""

    local_type: tuple[int, ...]


class LocalTypeSymmetryBreaking(VectorAlgorithm):
    """Output 1 iff the node's local type is maximal among its neighbours (2 rounds).

    The algorithm is only guaranteed to solve the symmetry-breaking problem of
    Theorem 17 when the port numbering is consistent, i.e. as a member of the
    class VVc(1); it always halts in exactly two rounds regardless.
    """

    def initial_state(self, degree: int) -> Any:
        return ("collect", degree)

    def send(self, state: Any, port: int) -> Any:
        if isinstance(state, tuple) and state[0] == "collect":
            return port
        return state.local_type

    def transition(self, state: Any, received: tuple) -> Any:
        if isinstance(state, tuple) and state[0] == "collect":
            return _TypeState(local_type=tuple(received))
        own = state.local_type
        neighbour_types = list(received)
        is_maximal = all(own >= neighbour for neighbour in neighbour_types)
        return Output(1 if is_maximal else 0)


def local_type_of_output(local_type: tuple[int, ...]) -> tuple[int, ...]:
    """Identity helper kept for symmetry with the paper's notation ``t(v)``."""
    return local_type
