"""Leaf election in stars (Theorem 11): an SV(1) algorithm.

In round 1 every node sends the port number ``i`` through its output port
``i``.  A node outputs 1 exactly when it has degree 1 and the *set* of
messages it received is ``{1}`` -- i.e. its unique neighbour reaches it through
that neighbour's output port 1.  In a ``k``-star the centre has ``k`` distinct
output ports, so exactly one leaf receives the message ``1``; the centre
itself receives the set ``{1}`` but has degree ``k > 1`` and outputs 0.
The algorithm never inspects input-port numbers, so it lies in the class Set,
whereas Theorem 11 shows no Broadcast algorithm can solve the problem.
"""

from __future__ import annotations

from typing import Any

from repro.machines.algorithm import Output, SetAlgorithm


class LeafElectionAlgorithm(SetAlgorithm):
    """The SV(1) leaf-election algorithm of Theorem 11 (one communication round)."""

    def initial_state(self, degree: int) -> Any:
        return degree

    def send(self, state: Any, port: int) -> Any:
        return port

    def transition(self, state: Any, received: frozenset) -> Any:
        degree = state
        elected = degree == 1 and received == frozenset({1})
        return Output(1 if elected else 0)
