"""The three separating problems of Section 5.3.

Each problem is deliberately "easy" in one class and impossible in the class
below it:

* :class:`LeafElectionInStars` (Theorem 11) -- in SV(1) but not in VB;
* :class:`OddOddNeighbours` (Theorem 13) -- in MB(1) but not in SB;
* :class:`SymmetryBreakingInMatchlessRegular` (Theorem 17) -- in VVc(1) but
  not in VV.
"""

from __future__ import annotations

from typing import Any

from repro.graphs.graph import Graph, Node
from repro.graphs.matching import has_perfect_matching
from repro.problems.base import GraphProblem


def is_star(graph: Graph) -> tuple[Node, tuple[Node, ...]] | None:
    """If the graph is a ``k``-star with ``k > 1``, return ``(centre, leaves)``."""
    n = graph.number_of_nodes
    if n < 3:
        return None
    centres = [node for node in graph.nodes if graph.degree(node) == n - 1]
    if len(centres) != 1:
        return None
    centre = centres[0]
    leaves = tuple(node for node in graph.nodes if node != centre)
    if any(graph.degree(leaf) != 1 for leaf in leaves):
        return None
    return centre, leaves


class LeafElectionInStars(GraphProblem):
    """Select exactly one leaf of a star (Theorem 11).

    On a ``k``-star with ``k > 1`` the centre must output 0 and exactly one
    leaf must output 1; on every other graph any 0/1 labelling is admissible.
    """

    outputs = (0, 1)

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        star = is_star(graph)
        if star is None:
            return all(assignment.get(node) in (0, 1) for node in graph.nodes)
        centre, leaves = star
        if assignment.get(centre) != 0:
            return False
        selected = [leaf for leaf in leaves if assignment.get(leaf) == 1]
        others_zero = all(assignment.get(leaf) in (0, 1) for leaf in leaves)
        return len(selected) == 1 and others_zero


class OddOddNeighbours(GraphProblem):
    """Output 1 exactly at nodes with an odd number of odd-degree neighbours (Theorem 13)."""

    outputs = (0, 1)

    @staticmethod
    def expected_output(graph: Graph, node: Node) -> int:
        odd_neighbours = sum(1 for neighbour in graph.neighbors(node) if graph.degree(neighbour) % 2 == 1)
        return odd_neighbours % 2

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        return all(
            assignment.get(node) == self.expected_output(graph, node) for node in graph.nodes
        )


def in_matchless_family(graph: Graph) -> bool:
    """Whether the graph belongs to the family ``G`` of Theorem 17.

    ``G`` consists of the connected ``k``-regular graphs of odd degree ``k``
    that have no perfect matching (no 1-factor).
    """
    if not graph.nodes or not graph.is_connected():
        return False
    if not graph.is_regular():
        return False
    degree = graph.degree(graph.nodes[0])
    if degree % 2 == 0:
        return False
    return not has_perfect_matching(graph)


class SymmetryBreakingInMatchlessRegular(GraphProblem):
    """Produce a non-constant labelling on matchless odd-regular graphs (Theorem 17).

    On graphs in the family ``G`` the labelling must take both values 0 and 1;
    on every other graph any 0/1 labelling is admissible.
    """

    outputs = (0, 1)

    def is_solution(self, graph: Graph, assignment: dict[Node, Any]) -> bool:
        if not all(assignment.get(node) in (0, 1) for node in graph.nodes):
            return False
        if not in_matchless_family(graph):
            return True
        values = {assignment[node] for node in graph.nodes}
        return values == {0, 1}
