"""Adversarial verification: does an algorithm solve a problem? (Section 1.4.)

An algorithm ``A`` solves a problem ``Pi`` when, for *every* graph of the
family and *every* port numbering (only consistent ones if the VVc convention
is used), the execution halts and its output lies in ``Pi(G)``.  These
functions check that condition over a supplied, finite collection of graphs --
exhaustively over port numberings when feasible, by seeded sampling otherwise.

The per-graph sweep over port numberings is executed through the compiled
batch engine (:func:`repro.execution.engine.run_many`): the graph topology is
compiled once and shared by every numbering, and the sweep can be fanned out
over ``workers`` processes for large families.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.execution.adversary import port_numberings_to_check
from repro.execution.engine import run_iter, run_many
from repro.graphs.graph import Graph, Node
from repro.graphs.ports import PortNumbering
from repro.machines.algorithm import Algorithm
from repro.problems.base import GraphProblem


def find_counterexample(
    algorithm: Algorithm,
    problem: GraphProblem,
    graphs: Iterable[Graph],
    consistent_only: bool = False,
    exhaustive_limit: int = 2_000,
    samples: int = 50,
    max_rounds: int = 10_000,
    workers: int | None = None,
    engine: str = "compiled",
    memoize_transitions: bool = True,
) -> tuple[Graph, PortNumbering, dict[Node, Any] | None] | None:
    """The first input on which the algorithm fails, or ``None`` if none is found.

    A failure is either non-termination within ``max_rounds`` (the output slot
    of the returned triple is then ``None``) or an invalid output.
    """
    for graph in graphs:
        numberings = list(
            port_numberings_to_check(
                graph,
                consistent_only=consistent_only,
                exhaustive_limit=exhaustive_limit,
                samples=samples,
            )
        )
        results = run_iter(
            algorithm,
            [(graph, numbering) for numbering in numberings],
            max_rounds=max_rounds,
            require_halt=False,
            workers=workers,
            engine=engine,
            memoize_transitions=memoize_transitions,
        )
        # run_iter is lazy: the sweep short-circuits at the first failure.
        for numbering, result in zip(numberings, results):
            if not result.halted:
                return graph, numbering, None
            if not problem.is_solution(graph, result.outputs):
                return graph, numbering, result.outputs
    return None


def solves(
    algorithm: Algorithm,
    problem: GraphProblem,
    graphs: Iterable[Graph],
    consistent_only: bool = False,
    exhaustive_limit: int = 2_000,
    samples: int = 50,
    max_rounds: int = 10_000,
    workers: int | None = None,
    engine: str = "compiled",
    memoize_transitions: bool = True,
) -> bool:
    """Whether the algorithm solves the problem on every tested input."""
    return (
        find_counterexample(
            algorithm,
            problem,
            graphs,
            consistent_only=consistent_only,
            exhaustive_limit=exhaustive_limit,
            samples=samples,
            max_rounds=max_rounds,
            workers=workers,
            engine=engine,
            memoize_transitions=memoize_transitions,
        )
        is None
    )


def worst_case_running_time(
    algorithm: Algorithm,
    graphs: Iterable[Graph],
    consistent_only: bool = False,
    exhaustive_limit: int = 2_000,
    samples: int = 50,
    max_rounds: int = 10_000,
    workers: int | None = None,
    engine: str = "compiled",
    memoize_transitions: bool = True,
) -> int:
    """The maximum number of rounds over all tested inputs (for locality checks)."""
    worst = 0
    for graph in graphs:
        results = run_many(
            algorithm,
            [
                (graph, numbering)
                for numbering in port_numberings_to_check(
                    graph,
                    consistent_only=consistent_only,
                    exhaustive_limit=exhaustive_limit,
                    samples=samples,
                )
            ],
            max_rounds=max_rounds,
            workers=workers,
            engine=engine,
            memoize_transitions=memoize_transitions,
        )
        for result in results:
            if result.rounds > worst:
                worst = result.rounds
    return worst
